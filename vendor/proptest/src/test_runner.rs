//! The per-case RNG and the case-outcome type threaded through the
//! `prop_assert*` macros.

/// Why a generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// An assertion failed with this message; abort the test.
    Fail(String),
}

/// SplitMix64 — tiny, fast, and plenty for test-input generation.
/// Seeded from the test's module path and case index so every test and
/// every case sees an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
