//! Minimal offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the subset of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro over `name in strategy`
//! arguments, range strategies for the primitive numeric types,
//! [`collection::vec`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics match real proptest where it matters for these tests:
//! each case draws fresh inputs from a deterministic per-case RNG, a
//! rejected assumption discards the case without counting it, and a
//! failed assertion aborts the test with the formatted message. No
//! shrinking is performed — a failing case reports the raw inputs'
//! assertion message only.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (only [`vec`](collection::vec) is provided).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy generating vectors with lengths in `size`,
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Each function body runs for a fixed number of generated cases; the
/// arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                const CASES: u32 = 96;
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < CASES {
                    case += 1;
                    assert!(
                        rejected < CASES * 200,
                        "proptest {}: too many rejected cases ({rejected})",
                        stringify!($name),
                    );
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed (case {case}): {msg}", stringify!($name));
                        }
                    }
                }
            }
        )+
    };
}

/// Discards the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {left:?}\n right: {right:?}",
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {left:?}",
            stringify!($left),
            stringify!($right),
        );
    }};
}
