//! Value-generation strategies: half-open numeric ranges and anything
//! that composes them (see [`crate::collection`]).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of random values of one type.
///
/// Unlike real proptest there is no shrinking tree; a strategy is just a
/// pure generator over the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (*self).generate(rng)
    }
}

// Tuples of strategies generate tuples of values, mirroring real
// proptest's tuple support (the subset the workspace's tests use).
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
