//! Minimal offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per sample it times one batch of
//! iterations with [`std::time::Instant`] and reports the median
//! ns/iteration to stdout. No statistical analysis, plots, or baselines;
//! the point is that `cargo bench` compiles, runs, and prints sane
//! numbers without the real dependency.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]; real criterion's `black_box`
/// predates the std version but has the same contract.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.run(&id, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with the given input, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.0;
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().0;
        self.run(&label, |b| f(b));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
        println!(
            "{}/{label}: median {median:.1} ns/iter ({} samples)",
            self.name,
            samples.len()
        );
    }

    /// Ends the group. (Analysis-free in this stand-in.)
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name` plus a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// A label that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId(s.into())
    }
}

/// Times closures; handed to the benchmark body by `bench_*`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`, keeping its output alive via
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then a small fixed batch per sample: the
        // workspace's benches simulate whole seconds per call, so large
        // adaptive batches would make `cargo bench` take minutes.
        black_box(f());
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Collects benchmark functions into one group runner, mirroring
/// criterion's macro of the same name (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this
            // stand-in has no filtering, so they are ignored.
            $( $group(); )+
        }
    };
}
