#!/usr/bin/env bash
# Smoke the distributed sweep executor and the results service through
# the real CLI and a real HTTP client (curl):
#
#   1. `xp sweep --parallel --jobs 2` must produce stdout and a merged
#      sweep CSV byte-identical to the sequential in-process sweep.
#   2. `xp serve` on an ephemeral port must accept experiments/smoke.spec
#      over POST /submit, run it to completion, and serve back a samples
#      CSV byte-identical to an in-process `xp run` of the same spec.
#   3. Resubmitting the identical spec must be answered entirely from
#      the content-addressed cache: /stats must still report exactly one
#      cell process ever spawned.
#
# Everything runs out of a scratch directory; the checked-in results/
# tree is never touched. Blocking in CI — these are the determinism
# contracts (a cell is a pure function of its canonical spec text) that
# make the whole serve subsystem sound.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p ftgcs-bench --bin xp
root="$PWD"
xp() { "$root/target/release/xp" "$@"; }
spec="$PWD/experiments/smoke.spec"
work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== parallel sweep equivalence =="
mkdir -p "$work/seq" "$work/par"
(cd "$work/seq" && xp sweep "$spec" seed=1,2,3) > "$work/seq.out"
(cd "$work/par" && FTGCS_CACHE_DIR="$work/cache" \
    xp sweep "$spec" seed=1,2,3 --parallel --jobs 2) > "$work/par.out"
diff "$work/seq.out" "$work/par.out"
diff "$work/seq/results/smoke_sweep.csv" "$work/par/results/smoke_sweep.csv"
echo "parallel sweep is byte-identical to sequential"

echo "== xp serve end-to-end =="
mkdir -p "$work/ref" "$work/srv"
(cd "$work/ref" && xp run "$spec" > /dev/null)

(cd "$work/srv" && FTGCS_CACHE_DIR="$work/serve_cache" \
    exec "$root/target/release/xp" serve --addr 127.0.0.1:0 --jobs 1) \
    > "$work/serve.out" 2> "$work/serve.err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$work/serve.out" 2>/dev/null && break
    sleep 0.1
done
base="$(sed -n 's#^xp serve: listening on \(http://[0-9.:]*\)$#\1#p' "$work/serve.out")"
[ -n "$base" ] || { echo "serve never announced its address"; exit 1; }
echo "serve at $base"

job="$(curl -sf -X POST --data-binary @"$spec" "$base/submit" \
      | sed -n 's/.*"job": "\([0-9a-f]\{16\}\)".*/\1/p')"
[ -n "$job" ] || { echo "submit returned no job id"; exit 1; }
echo "job $job"

state=""
for _ in $(seq 1 300); do
    status="$(curl -sf "$base/status/$job")"
    state="$(printf '%s' "$status" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')"
    case "$state" in
        done) break ;;
        failed) echo "job failed: $status"; exit 1 ;;
        *) sleep 0.1 ;;
    esac
done
[ "$state" = done ] || { echo "job never finished (state: $state)"; exit 1; }

curl -sf "$base/result/$job/smoke_samples.csv" > "$work/served_samples.csv"
diff "$work/ref/results/smoke_samples.csv" "$work/served_samples.csv"
curl -sf "$base/result/$job/telemetry.json" | grep -q '"schema": "ftgcs-telemetry-v1"'
echo "served CSV is byte-identical to in-process xp run; telemetry schema ok"

echo "== cache-hit resubmission =="
curl -sf -X POST --data-binary @"$spec" "$base/submit" | grep -q '"state": "done"'
stats="$(curl -sf "$base/stats")"
printf '%s\n' "$stats" | grep -q '"cells_spawned": 1' \
    || { echo "resubmission spawned a new cell: $stats"; exit 1; }
printf '%s\n' "$stats" | grep -q '"cache_hits": 1' \
    || { echo "resubmission missed the cache: $stats"; exit 1; }
echo "resubmission served from cache ($stats)"

curl -sf -X POST "$base/shutdown" > /dev/null
wait "$serve_pid"
serve_pid=""
echo "serve smoke passed"
