#!/usr/bin/env bash
# Regenerate the paper-style figures F1-F5 from the CSVs the `xp`
# driver (or the legacy wrapper binaries) wrote into results/.
#
#   ./scripts/plot.sh            # all figures whose CSV exists
#   ./scripts/plot.sh f1 f3      # just these
#
# Missing CSVs are skipped with a hint (`xp run experiments/<name>.spec`
# regenerates them); missing gnuplot is a hard error. Output: one SVG
# per figure under figures/.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v gnuplot >/dev/null 2>&1; then
    echo "plot.sh: gnuplot not found on PATH — install it to render figures" >&2
    exit 2
fi

figures=(f1_cluster_convergence f2_local_skew_vs_diameter f3_skew_traces \
         f4_attack_matrix f5_gcs_vs_ftgcs)
if [ "$#" -gt 0 ]; then
    selected=()
    for want in "$@"; do
        hit=""
        for f in "${figures[@]}"; do
            case "$f" in "$want"*) selected+=("$f"); hit=1 ;; esac
        done
        if [ -z "$hit" ]; then
            echo "plot.sh: unknown figure '$want' (choose from: ${figures[*]})" >&2
            exit 1
        fi
    done
    figures=("${selected[@]}")
fi

mkdir -p figures
rendered=0
for f in "${figures[@]}"; do
    csv="results/$f.csv"
    if [ ! -f "$csv" ]; then
        echo "skip $f: $csv missing — run: cargo run --release -p ftgcs-bench --bin xp -- run experiments/$f.spec"
        continue
    fi
    gnuplot "scripts/gnuplot/${f%%_*}.gp"
    echo "wrote figures/$f.svg"
    rendered=$((rendered + 1))
done
echo "$rendered figure(s) rendered into figures/"
