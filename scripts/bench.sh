#!/usr/bin/env bash
# Run the shard_scaling criterion bench and record its output as
# BENCH_shard_scaling.json — the checked-in bench trajectory.
#
#   ./scripts/bench.sh                 # release bench run, writes JSON
#   ./scripts/bench.sh --smoke         # CI smoke: compile + one quick run,
#                                      # write the JSON to a temp file only
#
# The vendored criterion stand-in prints one line per benchmark:
#     <group>/<label>: median <ns> ns/iter (<n> samples)
# and the bench itself prints two kinds of deterministic lines:
#     events/<group>/<label>: <n> events
#     balance/<workload>/worker<w>: share <s> (<dealt> of <total> dealt, ...)
# All three are parsed here (awk; no jq dependency) into a single JSON
# file. The event counts and balance shares are machine-independent
# (they record the engine's deterministic dispatch and the coordinator's
# dealt plan, not the steal race); medians are hardware-dependent and
# recorded for trend context. Each result row gains an
# `events_per_sec` field (events x 1e9 / median_ns) — a machine-local
# throughput figure. When the checked-in baseline already carries
# `events_per_sec` entries, a >2x throughput drop on any group fails
# the run.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_shard_scaling.json
baseline=BENCH_shard_scaling.json
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    out=$(mktemp /tmp/bench_shard_scaling.XXXXXX.json)
fi

raw=$(mktemp /tmp/bench_shard_scaling.XXXXXX.raw)
base_eps=$(mktemp /tmp/bench_shard_scaling.XXXXXX.base)
trap 'rm -f "$raw" "$base_eps"' EXIT

# Snapshot the baseline's events_per_sec entries BEFORE the (non-smoke)
# run overwrites the file: `<group>/<label> <events_per_sec>` per line.
if [ -f "$baseline" ]; then
    awk '
    /"group"/ && /"events_per_sec"/ {
        g = $0; sub(/.*"group": "/, "", g);  sub(/".*/, "", g)
        l = $0; sub(/.*"label": "/, "", l);  sub(/".*/, "", l)
        e = $0; sub(/.*"events_per_sec": /, "", e); sub(/[,}].*/, "", e)
        print g "/" l, e
    }
    ' "$baseline" > "$base_eps"
fi

# FTGCS_WORKERS would override every parallel axis (and the pinned
# balance run); benches must see the machine as-is.
unset FTGCS_WORKERS || true

cargo bench -p ftgcs-bench --bench shard_scaling | tee "$raw"

awk -v smoke="$smoke" '
BEGIN {
    nresults = 0
    nbalance = 0
}
# <group>/<label>: median <ns> ns/iter (<n> samples)
/ ns\/iter / {
    split($1, path, "/")
    gsub(":", "", path[2])
    medians_group[nresults] = path[1]
    medians_label[nresults] = path[2]
    medians_ns[nresults] = $3
    medians_n[nresults] = substr($5, 2)
    nresults++
}
# events/<group>/<label>: <n> events
/^events\// {
    split($1, path, "/")
    gsub(":", "", path[3])
    events[path[2] "/" path[3]] = $2
}
# balance/<workload>/worker<w>: share <s> (<dealt> of <total> dealt, ...)
/^balance\// {
    split($1, path, "/")
    gsub(":", "", path[3])
    sub("worker", "", path[3])
    balance_workload[nbalance] = path[2]
    balance_worker[nbalance] = path[3]
    balance_share[nbalance] = $3
    dealt = $4
    sub(/^\(/, "", dealt)
    balance_dealt[nbalance] = dealt
    nbalance++
}
END {
    printf "{\n"
    printf "  \"bench\": \"shard_scaling\",\n"
    printf "  \"smoke\": %s,\n", (smoke ? "true" : "false")
    printf "  \"note\": \"medians and events_per_sec are machine-dependent; event counts and balance shares are deterministic (share < 0.6 per worker, events_per_sec may not drop 2x vs baseline)\",\n"
    printf "  \"results\": [\n"
    for (i = 0; i < nresults; i++) {
        key = medians_group[i] "/" medians_label[i]
        eps = ""
        if (key in events && medians_ns[i] > 0) {
            eps = sprintf(", \"events\": %s, \"events_per_sec\": %.1f", \
                events[key], events[key] * 1e9 / medians_ns[i])
        }
        printf "    {\"group\": \"%s\", \"label\": \"%s\", \"median_ns\": %s, \"samples\": %s%s}%s\n", \
            medians_group[i], medians_label[i], medians_ns[i], medians_n[i], eps, (i < nresults - 1 ? "," : "")
    }
    printf "  ],\n"
    printf "  \"balance\": [\n"
    for (i = 0; i < nbalance; i++) {
        printf "    {\"workload\": \"%s\", \"worker\": %s, \"share\": %s, \"dealt_events\": %s}%s\n", \
            balance_workload[i], balance_worker[i], balance_share[i], balance_dealt[i], (i < nbalance - 1 ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}
' "$raw" > "$out"

# The acceptance bar the balance block must clear: no worker above 60%.
worst=$(awk '/^balance\// { if ($3 > w) w = $3 } END { printf "%s", w }' "$raw")
echo "bench.sh: wrote $out (worst dealt share: ${worst:-n/a})"
if [ -n "$worst" ] && awk -v w="$worst" 'BEGIN { exit !(w >= 0.6) }'; then
    echo "bench.sh: FAIL — a worker was dealt ${worst} >= 0.6 of all events" >&2
    exit 1
fi

# Throughput gate: if the checked-in baseline recorded events_per_sec,
# no group may have dropped to less than half of it. First landings
# (baseline without the field) skip the gate.
if [ -s "$base_eps" ]; then
    awk -v base_file="$base_eps" '
    BEGIN {
        while ((getline line < base_file) > 0) {
            split(line, f, " ")
            base[f[1]] = f[2]
        }
        fails = 0
    }
    /"group"/ && /"events_per_sec"/ {
        g = $0; sub(/.*"group": "/, "", g);  sub(/".*/, "", g)
        l = $0; sub(/.*"label": "/, "", l);  sub(/".*/, "", l)
        e = $0; sub(/.*"events_per_sec": /, "", e); sub(/[,}].*/, "", e)
        key = g "/" l
        if (key in base && base[key] > 0 && e + 0 < base[key] / 2) {
            printf "bench.sh: FAIL — %s throughput %.0f events/s is under half the baseline %.0f\n", \
                key, e, base[key] > "/dev/stderr"
            fails++
        }
    }
    END { exit fails > 0 }
    ' "$out" || exit 1
    echo "bench.sh: throughput within 2x of baseline for every group"
else
    echo "bench.sh: no events_per_sec in baseline — throughput gate skipped"
fi
if [ "$smoke" = 1 ]; then
    echo "bench.sh: smoke mode — JSON left at $out (not checked in)"
fi
