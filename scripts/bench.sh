#!/usr/bin/env bash
# Run the shard_scaling criterion bench and record its output as
# BENCH_shard_scaling.json — the checked-in bench trajectory.
#
#   ./scripts/bench.sh                 # release bench run, writes JSON
#   ./scripts/bench.sh --smoke         # CI smoke: compile + one quick run,
#                                      # write the JSON to a temp file only
#
# The vendored criterion stand-in prints one line per benchmark:
#     <group>/<label>: median <ns> ns/iter (<n> samples)
# and the bench itself prints deterministic load-balance lines:
#     balance/<workload>/worker<w>: share <s> (<dealt> of <total> dealt, ...)
# Both are parsed here (awk; no jq dependency) into a single JSON file.
# The balance shares are machine-independent (they record the
# coordinator's dealt plan, not the steal race), so the JSON's balance
# block is stable across machines; medians are hardware-dependent and
# recorded for trend context only.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_shard_scaling.json
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    out=$(mktemp /tmp/bench_shard_scaling.XXXXXX.json)
fi

raw=$(mktemp /tmp/bench_shard_scaling.XXXXXX.raw)
trap 'rm -f "$raw"' EXIT

# FTGCS_WORKERS would override every parallel axis (and the pinned
# balance run); benches must see the machine as-is.
unset FTGCS_WORKERS || true

cargo bench -p ftgcs-bench --bench shard_scaling | tee "$raw"

awk -v smoke="$smoke" '
BEGIN {
    nresults = 0
    nbalance = 0
}
# <group>/<label>: median <ns> ns/iter (<n> samples)
/ ns\/iter / {
    split($1, path, "/")
    gsub(":", "", path[2])
    medians_group[nresults] = path[1]
    medians_label[nresults] = path[2]
    medians_ns[nresults] = $3
    medians_n[nresults] = substr($5, 2)
    nresults++
}
# balance/<workload>/worker<w>: share <s> (<dealt> of <total> dealt, ...)
/^balance\// {
    split($1, path, "/")
    gsub(":", "", path[3])
    sub("worker", "", path[3])
    balance_workload[nbalance] = path[2]
    balance_worker[nbalance] = path[3]
    balance_share[nbalance] = $3
    dealt = $4
    sub(/^\(/, "", dealt)
    balance_dealt[nbalance] = dealt
    nbalance++
}
END {
    printf "{\n"
    printf "  \"bench\": \"shard_scaling\",\n"
    printf "  \"smoke\": %s,\n", (smoke ? "true" : "false")
    printf "  \"note\": \"medians are machine-dependent; balance shares are the deterministic dealt plan (must stay < 0.6 per worker)\",\n"
    printf "  \"results\": [\n"
    for (i = 0; i < nresults; i++) {
        printf "    {\"group\": \"%s\", \"label\": \"%s\", \"median_ns\": %s, \"samples\": %s}%s\n", \
            medians_group[i], medians_label[i], medians_ns[i], medians_n[i], (i < nresults - 1 ? "," : "")
    }
    printf "  ],\n"
    printf "  \"balance\": [\n"
    for (i = 0; i < nbalance; i++) {
        printf "    {\"workload\": \"%s\", \"worker\": %s, \"share\": %s, \"dealt_events\": %s}%s\n", \
            balance_workload[i], balance_worker[i], balance_share[i], balance_dealt[i], (i < nbalance - 1 ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}
' "$raw" > "$out"

# The acceptance bar the balance block must clear: no worker above 60%.
worst=$(awk '/^balance\// { if ($3 > w) w = $3 } END { printf "%s", w }' "$raw")
echo "bench.sh: wrote $out (worst dealt share: ${worst:-n/a})"
if [ -n "$worst" ] && awk -v w="$worst" 'BEGIN { exit !(w >= 0.6) }'; then
    echo "bench.sh: FAIL — a worker was dealt ${worst} >= 0.6 of all events" >&2
    exit 1
fi
if [ "$smoke" = 1 ]; then
    echo "bench.sh: smoke mode — JSON left at $out (not checked in)"
fi
