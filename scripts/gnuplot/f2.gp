# F2 — worst local skew vs diameter: FTGCS's near-flat O(log D) curve
# against the master/slave tree's linear D·U wavefront and free-running
# clocks, on log-log axes.
set terminal svg size 760,520 font 'Helvetica,12' background rgb 'white'
set output 'figures/f2_local_skew_vs_diameter.svg'
set datafile separator comma
set key autotitle columnhead top left
set title 'F2 — local skew vs diameter under stretch→compress'
set xlabel 'diameter D'
set ylabel 'worst local skew (s)'
set logscale xy
set format y '%.0e'
set grid ytics
plot 'results/f2_local_skew_vs_diameter.csv' \
         using 1:2 with linespoints lw 2 pt 7 title 'FTGCS', \
     '' using 1:3 with lines dashtype 2 lw 1 title 'FTGCS bound (Thm 1.1)', \
     '' using 1:4 with linespoints lw 2 pt 5 title 'master/slave wavefront', \
     '' using 1:5 with lines dashtype 3 lw 1 title 'tree theory D·U', \
     '' using 1:6 with linespoints lw 1 pt 9 title 'free-run'
