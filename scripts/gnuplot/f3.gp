# F3 — the gradient property over time: global skew grows toward its
# Θ(D) ceiling while local skew stays pinned near the logarithmic bound.
set terminal svg size 760,520 font 'Helvetica,12' background rgb 'white'
set output 'figures/f3_skew_traces.svg'
set datafile separator comma
set key autotitle columnhead top right
set title 'F3 — local vs global skew over time (adversarial rate split)'
set xlabel 'simulated time (s)'
set ylabel 'skew (s)'
set logscale y
set format y '%.0e'
set grid ytics
plot 'results/f3_skew_traces.csv' \
         using 1:2 with linespoints lw 2 pt 7 title 'local skew', \
     '' using 1:3 with linespoints lw 2 pt 5 title 'global skew'
