# F1 — pulse-diameter convergence: measured |p(r)| vs the geometric
# theory curve e(r+1) = a*e(r) + b, one pair of curves per fault budget.
set terminal svg size 760,520 font 'Helvetica,12' background rgb 'white'
set output 'figures/f1_cluster_convergence.svg'
set datafile separator comma
set key autotitle columnhead top right
set title 'F1 — single-cluster convergence: pulse diameter per round'
set xlabel 'round r'
set ylabel '‖p(r)‖ (s)'
set logscale y
set format y '%.0e'
set grid ytics
plot for [f=0:2] 'results/f1_cluster_convergence.csv' \
         using 3:($1 == f ? $4 : 1/0) with linespoints lw 2 pt 7 \
         title sprintf('f = %d measured', f), \
     for [f=0:2] '' \
         using 3:($1 == f ? $5 : 1/0) with lines dashtype 2 lw 1 \
         title sprintf('f = %d theory', f)
