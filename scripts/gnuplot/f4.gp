# F4 — attack matrix: intra-cluster and local skew per Byzantine
# strategy (bars), against the paper bounds (points). The final
# over-budget row shows the bounds are not vacuous.
set terminal svg size 900,540 font 'Helvetica,11' background rgb 'white'
set output 'figures/f4_attack_matrix.svg'
set datafile separator comma
set key autotitle columnhead top left
set title 'F4 — skew under every attack strategy × fault budget'
set ylabel 'post-warmup max skew (s)'
set logscale y
set format y '%.0e'
set grid ytics
set style data histogram
set style histogram clustered gap 1
set style fill solid 0.75 border -1
set boxwidth 0.9
set xtics rotate by -35
plot 'results/f4_attack_matrix.csv' \
         using 5:xtic(stringcolumn(3).' f='.stringcolumn(1)) title 'intra-cluster', \
     '' using 7 title 'local', \
     '' using 0:6 with points pt 2 ps 1.2 lc rgb 'black' title 'intra bound', \
     '' using 0:8 with points pt 6 ps 1.2 lc rgb 'black' title 'local bound'
