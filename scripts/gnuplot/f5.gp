# F5 — one Byzantine liar destroys plain GCS (monotone divergence);
# FTGCS with a liar in every cluster stays below its bound.
set terminal svg size 760,520 font 'Helvetica,12' background rgb 'white'
set output 'figures/f5_gcs_vs_ftgcs.svg'
set datafile separator comma
set key autotitle columnhead top left
set title 'F5 — plain GCS vs FTGCS under Byzantine faults'
set xlabel 'simulated time (s)'
set ylabel 'local skew between correct neighbors (s)'
set logscale y
set format y '%.0e'
set grid ytics
plot 'results/f5_gcs_vs_ftgcs.csv' \
         using 1:2 with linespoints lw 2 pt 5 title 'plain GCS (1 liar)', \
     '' using 1:3 with linespoints lw 2 pt 7 title 'FTGCS (1 liar per cluster)', \
     '' using 1:4 with lines dashtype 2 lw 1 title 'FTGCS bound (Thm 1.1)'
