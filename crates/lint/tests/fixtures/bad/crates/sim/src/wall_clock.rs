//! Bad: reads the host clock inside simulation code.

pub fn elapsed_ms() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}
