//! Bad: library code writing to the process streams.

pub fn report(skew: f64) {
    println!("skew = {skew}");
}
