//! Bad: an unsafe block with no SAFETY comment.

pub fn first(xs: &[u32]) -> u32 {
    let p = xs.as_ptr();
    unsafe { *p }
}
