//! Bad: a suppression pragma without the mandatory reason. The pragma
//! itself is reported AND it suppresses nothing, so the underlying
//! violation is reported too.

pub fn now_bits() -> u32 {
    let t = std::time::Instant::now(); // ftgcs-lint: allow(no-wall-clock)
    t.elapsed().subsec_nanos()
}
