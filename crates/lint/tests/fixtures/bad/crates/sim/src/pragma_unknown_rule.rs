//! Bad: a pragma naming a rule that does not exist.

// ftgcs-lint: allow(no-such-rule) -- this rule name is a typo
pub fn fine() -> u32 {
    41 + 1
}
