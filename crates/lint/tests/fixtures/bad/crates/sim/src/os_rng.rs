//! Bad: draws entropy from the OS instead of the run seed.

pub fn jitter() -> u64 {
    let state = std::collections::hash_map::RandomState::new();
    std::hash::BuildHasher::hash_one(&state, 17u8)
}
