//! Bad: phase timing taken inside the dispatch hot path by reading the
//! host clock directly, instead of routing through the telemetry side
//! channel's pragma'd `Stamp`.

pub fn dispatch_event(pending: usize) -> u128 {
    let t0 = std::time::Instant::now();
    let _ = pending;
    t0.elapsed().as_nanos()
}
