//! Bad: a bare allow attribute with no trailing justification.

#[allow(dead_code)]
fn orphan() {}
