//! Bad: a fault-lifecycle transition timed off the host clock —
//! recovery instants must be Newtonian spec times, never wall time.

pub fn next_transition_due(window_end_secs: u64) -> bool {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() >= window_end_secs)
        .unwrap_or(false)
}
