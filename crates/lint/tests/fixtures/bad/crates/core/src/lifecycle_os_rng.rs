//! Bad: a mobile-adversary itinerary drawn from OS entropy — hop
//! placement must derive from the run seed or runs stop replaying.

pub fn pick_next_host(candidates: &[usize]) -> usize {
    let roll = std::collections::hash_map::RandomState::new();
    let i = std::hash::BuildHasher::hash_one(&roll, candidates.len()) as usize;
    candidates[i % candidates.len()]
}
