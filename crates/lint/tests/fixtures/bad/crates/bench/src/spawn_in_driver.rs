//! Bad: the driver crate may not spawn threads — multi-process and
//! multi-thread execution belongs to `crates/serve`'s job pool (and,
//! for simulation fan-out, `crates/sim/src/par.rs`).

pub fn sneaky_background_work() {
    std::thread::spawn(|| {
        let _ = 1 + 1;
    });
}
