//! Bad: spawns a thread outside the parallel executor.

pub fn fire_and_forget() {
    std::thread::spawn(|| {
        let _ = 1 + 1;
    });
}
