//! Good: std hash collections are fine outside the order-sensitive
//! crates (bench never feeds iteration order into a trace).

use std::collections::HashMap;

pub fn index(names: &[String]) -> HashMap<&str, usize> {
    names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect()
}
