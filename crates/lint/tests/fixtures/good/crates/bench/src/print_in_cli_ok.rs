//! Good: the bench/CLI crate prints by design.

pub fn progress(done: usize, total: usize) {
    println!("[{done}/{total}] done");
}
