//! Good: all of `crates/serve` is a sanctioned spawn site — its
//! threads drive OS processes and sockets (the job pool, the results
//! service), never simulated events. It is also allowed to print: the
//! crate is not one of the silent simulation libraries.

pub fn pool_worker() -> std::thread::JoinHandle<()> {
    println!("spawning a pool worker");
    std::thread::Builder::new()
        .name("ftgcs-pool-0".into())
        .spawn(|| {})
        .expect("spawn pool worker")
}
