//! Good: allows carry their justification inline.

#[allow(dead_code)] // proof artifact: exercised only by the proptest suite
fn witness() {}

#[allow(clippy::int_plus_one)] // mirror the paper's k >= 3f+1 form
pub fn quorum_ok(k: usize, f: usize) -> bool {
    k >= 3 * f + 1
}
