//! Good: fault-lifecycle code done right — transition instants are
//! Newtonian times carried by the spec, and the mobile itinerary is
//! derived from the run seed. `SystemTime` and `thread_rng` appear
//! only in prose and strings, which the scanner must ignore.

/// Deterministic hop choice: a seed-derived stream, never OS entropy.
pub struct ItineraryRng(u64);

impl ItineraryRng {
    pub fn derive(seed: u64, adversary: u64) -> Self {
        ItineraryRng(seed ^ adversary.rotate_left(17))
    }

    pub fn index(&mut self, len: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize % len.max(1)
    }
}

/// Transition times come from the spec's fault windows (Newtonian
/// seconds), so replays are exact; no host clock anywhere.
pub fn transitions(windows: &[(f64, f64)]) -> Vec<f64> {
    let mut times: Vec<f64> = windows.iter().flat_map(|&(a, b)| [a, b]).collect();
    times.sort_by(|x, y| x.partial_cmp(y).expect("finite window times"));
    times
}

pub fn banner() -> &'static str {
    "lifecycle code never calls SystemTime::now or thread_rng"
}
