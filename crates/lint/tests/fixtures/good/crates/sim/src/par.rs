//! Good: thread spawning is sanctioned in exactly this file — the
//! parallel executor (mirrors crates/sim/src/par.rs).

pub fn spawn_worker() -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("ftgcs-worker-0".into())
        .spawn(|| {})
        .expect("spawn worker")
}
