//! Good: `Instant::now` appears only in a comment and a string — the
//! scanner must not fire on either.

/// Unlike `Instant::now`, simulated time comes from the engine.
pub fn banner() -> &'static str {
    "never call Instant::now or SystemTime in simulation code"
}
