//! Good: the telemetry side channel confines host-clock reads behind
//! scoped pragmas — every `Instant` site carries an allow with a
//! reason, mirroring the real `crates/sim/src/telemetry.rs`.

/// An opaque wall-clock stamp; callers never name `Instant`.
pub struct Stamp(
    std::time::Instant, // ftgcs-lint: allow(no-wall-clock) -- telemetry side channel: wall time never feeds simulated time
);

impl Stamp {
    /// Takes a reading.
    #[must_use]
    pub fn now() -> Self {
        // ftgcs-lint: allow(no-wall-clock) -- telemetry side channel: measures host elapsed time only
        Stamp(std::time::Instant::now())
    }

    /// Seconds elapsed since the stamp was taken.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}
