//! Good: deterministic, seed-derived randomness.

pub struct SeededRng(u64);

impl SeededRng {
    pub fn from_seed(seed: u64) -> Self {
        SeededRng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}
