//! Good: violations waived by well-formed pragmas, same-line and
//! own-line, each with a reason.

pub fn profile() -> u128 {
    let t0 = std::time::Instant::now(); // ftgcs-lint: allow(no-wall-clock) -- host-side profiling helper, never feeds the trace
    t0.elapsed().as_nanos()
}

pub fn helper() -> std::thread::JoinHandle<()> {
    // ftgcs-lint: allow(no-thread-spawn) -- fixture exercising the own-line pragma form
    std::thread::spawn(|| {})
}
