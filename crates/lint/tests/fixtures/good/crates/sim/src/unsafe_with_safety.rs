//! Good: every unsafe site carries its proof obligation.

pub fn first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    let p = xs.as_ptr();
    // SAFETY: `p` points at element 0 of a non-empty, live slice.
    unsafe { *p }
}

/// Reads one element without a bounds check.
///
/// # Safety
///
/// `idx` must be in bounds for `xs`.
pub unsafe fn get_unchecked(xs: &[u32], idx: usize) -> u32 {
    // SAFETY: in-bounds per this function's caller contract.
    unsafe { *xs.as_ptr().add(idx) }
}
