//! The lint gate, locally: `cargo test` runs `ftgcs-lint` over the
//! real workspace, so a determinism-discipline violation fails the
//! ordinary test suite — not just the CI step that runs the binary.

use std::path::Path;

use ftgcs_lint::check_path;

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found");

    let report = check_path(&root).expect("workspace readable");

    // Guard against a silently broken walker: the workspace has well
    // over 100 first-party Rust files, and the walker must be looking
    // at the real tree (not an empty or wrong directory) for the
    // cleanliness assertion below to mean anything.
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );

    assert!(
        report.is_clean(),
        "determinism-discipline violations in the workspace:\n{}",
        report.render()
    );
}
