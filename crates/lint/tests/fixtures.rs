//! Fixture corpus: one minimal bad file per rule (flagged at exactly
//! the right line) and one good file per rule (clean), including the
//! pragma-suppression and missing-reason cases. The fixtures mirror
//! `crates/<name>/src/…` paths so the walker's positional classifier
//! applies the same per-crate scoping it applies to the real tree.

use std::path::{Path, PathBuf};
use std::process::Command;

use ftgcs_lint::check_path;

fn fixtures(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub)
}

/// Every bad fixture with its exact expected `(line, rule)` findings.
const EXPECTED_BAD: &[(&str, &[(usize, &str)])] = &[
    ("crates/sim/src/wall_clock.rs", &[(4, "no-wall-clock")]),
    (
        "crates/sim/src/telemetry_in_dispatch.rs",
        &[(6, "no-wall-clock")],
    ),
    ("crates/sim/src/os_rng.rs", &[(4, "no-os-rng")]),
    (
        "crates/core/src/hash_order.rs",
        &[
            (3, "no-hash-order"),
            (5, "no-hash-order"),
            (6, "no-hash-order"),
        ],
    ),
    (
        "crates/metrics/src/thread_spawn.rs",
        &[(4, "no-thread-spawn")],
    ),
    (
        "crates/bench/src/spawn_in_driver.rs",
        &[(6, "no-thread-spawn")],
    ),
    ("crates/sim/src/print_in_lib.rs", &[(4, "no-print-in-lib")]),
    (
        "crates/sim/src/unsafe_no_safety.rs",
        &[(5, "unsafe-needs-safety")],
    ),
    (
        "crates/core/src/allow_no_reason.rs",
        &[(3, "allow-needs-reason")],
    ),
    (
        "crates/core/src/lifecycle_wall_clock.rs",
        &[(5, "no-wall-clock")],
    ),
    ("crates/core/src/lifecycle_os_rng.rs", &[(5, "no-os-rng")]),
    (
        "crates/sim/src/pragma_missing_reason.rs",
        &[(6, "bad-pragma"), (6, "no-wall-clock")],
    ),
    (
        "crates/sim/src/pragma_unknown_rule.rs",
        &[(3, "bad-pragma")],
    ),
];

#[test]
fn every_bad_fixture_is_flagged_at_the_right_line() {
    for (rel, expected) in EXPECTED_BAD {
        let path = fixtures("bad").join(rel);
        let report = check_path(&path).expect("fixture readable");
        let got: Vec<(usize, String)> = report
            .files
            .iter()
            .flat_map(|f| f.diagnostics.iter())
            .map(|d| (d.line, d.rule.to_string()))
            .collect();
        let want: Vec<(usize, String)> =
            expected.iter().map(|&(l, r)| (l, r.to_string())).collect();
        assert_eq!(got, want, "findings mismatch for {rel}");
    }
}

#[test]
fn bad_corpus_has_no_stray_files() {
    // Walking the whole bad tree must find exactly the cataloged
    // fixtures — a new bad fixture must register its expectations.
    let report = check_path(&fixtures("bad")).expect("bad corpus readable");
    assert_eq!(report.files_scanned, EXPECTED_BAD.len());
    assert_eq!(
        report.files.len(),
        EXPECTED_BAD.len(),
        "every bad fixture must be dirty"
    );
}

#[test]
fn every_good_fixture_passes() {
    let report = check_path(&fixtures("good")).expect("good corpus readable");
    assert!(
        report.is_clean(),
        "good fixtures must be clean, got:\n{}",
        report.render()
    );
    // All twelve good fixtures were actually visited (one per rule,
    // the bench-scoped hash/print counterexamples, the clean
    // fault-lifecycle file, the pragma'd telemetry side channel, and
    // the serve-crate spawn/print site).
    assert_eq!(report.files_scanned, 12);
}

/// The CLI contract CI relies on: exit 0 on clean trees, exit 1 with
/// `file:line:` diagnostics on violations.
#[test]
fn cli_exit_codes_and_diagnostic_format() {
    let bin = env!("CARGO_BIN_EXE_ftgcs-lint");

    let bad = Command::new(bin)
        .args(["check"])
        .arg(fixtures("bad"))
        .output()
        .expect("run ftgcs-lint");
    assert_eq!(bad.status.code(), Some(1), "bad corpus must fail the gate");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("wall_clock.rs:4: [no-wall-clock]"),
        "diagnostic must carry file:line and rule, got:\n{stdout}"
    );

    let good = Command::new(bin)
        .args(["check"])
        .arg(fixtures("good"))
        .output()
        .expect("run ftgcs-lint");
    assert!(good.status.success(), "good corpus must pass the gate");

    let usage = Command::new(bin).output().expect("run ftgcs-lint");
    assert_eq!(usage.status.code(), Some(2), "no-args is a usage error");
}
