//! File discovery and path → [`FileCtx`] classification.
//!
//! The walker visits every `.rs` file under the check root in sorted
//! order (deterministic output, of course), skipping directories that
//! are not first-party workspace source:
//!
//! * `target` — build products;
//! * `vendor` — vendored third-party stand-ins (criterion legitimately
//!   reads the wall clock; it is not simulation code);
//! * `fixtures` — the lint's own test corpus of deliberate violations;
//! * dot-directories (`.git`, `.github`).
//!
//! Classification is purely positional: the component after the last
//! `crates` component names the crate, and the path inside the crate
//! decides library-target-ness. The fixture corpus exploits this by
//! mirroring `crates/<name>/src/…` under `tests/fixtures/`, so fixture
//! files are classified exactly like the real tree when the walker is
//! pointed at them directly.

use std::path::{Component, Path, PathBuf};

use crate::rules::FileCtx;

/// Crates whose event/iteration order reaches the trace — std hash
/// collections are banned outright here (`no-hash-order`).
const ORDER_SENSITIVE: &[&str] = &["core", "sim", "baselines", "topology"];

/// Crates whose library target must stay silent (`no-print-in-lib`).
/// `bench` is the CLI/driver crate and prints by design; `lint` is this
/// tool, which reports on stderr/stdout by design.
const SILENT_LIBS: &[&str] = &["core", "sim", "metrics", "topology", "baselines"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// Derives the rule context for one file from its path.
pub fn classify(path: &Path) -> FileCtx {
    let comps: Vec<&str> = path
        .components()
        .filter_map(|c| match c {
            Component::Normal(os) => os.to_str(),
            _ => None,
        })
        .collect();

    // The crate name is the component after the last `crates` marker,
    // so mirrored fixture paths classify like the real tree.
    let crate_at = comps.iter().rposition(|c| *c == "crates");
    let crate_name = crate_at.and_then(|at| comps.get(at + 1)).copied();
    let inside: &[&str] = crate_at.map_or(&[], |at| comps.get(at + 2..).unwrap_or(&[]));

    let in_lib_target = inside.first() == Some(&"src") && inside.get(1) != Some(&"bin");
    let order_sensitive = crate_name.is_some_and(|c| ORDER_SENSITIVE.contains(&c));
    let lib_source = in_lib_target && crate_name.is_some_and(|c| SILENT_LIBS.contains(&c));
    // Two sanctioned spawn sites: the parallel shard executor (the one
    // place simulation work may fan out, behind the lookahead barrier)
    // and the whole of `crates/serve` — infrastructure threads that
    // manage OS processes and sockets, never simulated events.
    let spawn_exempt =
        (crate_name == Some("sim") && inside == ["src", "par.rs"]) || crate_name == Some("serve");

    FileCtx {
        crate_name: crate_name.map(str::to_owned),
        order_sensitive,
        lib_source,
        spawn_exempt,
    }
}

/// Collects every `.rs` file under `root` (which may itself be a file),
/// sorted, honoring the skip list for subdirectories.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if root.is_file() {
        out.push(root.to_path_buf());
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !name.starts_with('.') && !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_real_tree_paths() {
        let par = classify(Path::new("crates/sim/src/par.rs"));
        assert!(par.spawn_exempt && par.lib_source && par.order_sensitive);
        assert_eq!(par.crate_name.as_deref(), Some("sim"));

        let engine = classify(Path::new("/root/repo/crates/sim/src/engine.rs"));
        assert!(!engine.spawn_exempt && engine.lib_source && engine.order_sensitive);

        let metrics = classify(Path::new("crates/metrics/src/table.rs"));
        assert!(metrics.lib_source && !metrics.order_sensitive);

        let bench = classify(Path::new("crates/bench/src/driver.rs"));
        assert!(!bench.lib_source && !bench.order_sensitive && !bench.spawn_exempt);

        // All of crates/serve may spawn (process-pool and service
        // threads), but it stays print-allowed and order-insensitive
        // like any other non-simulation crate.
        let serve = classify(Path::new("crates/serve/src/exec.rs"));
        assert!(serve.spawn_exempt && !serve.lib_source && !serve.order_sensitive);
        let serve_svc = classify(Path::new("/root/repo/crates/serve/src/service.rs"));
        assert!(serve_svc.spawn_exempt);

        let bin = classify(Path::new("crates/bench/src/bin/xp.rs"));
        assert!(!bin.lib_source);

        let example = classify(Path::new("crates/core/examples/quickstart.rs"));
        assert!(!example.lib_source && example.order_sensitive);

        let test = classify(Path::new("crates/sim/tests/hot_path_alloc.rs"));
        assert!(!test.lib_source && test.order_sensitive);
    }

    #[test]
    fn classify_mirrored_fixture_paths() {
        let fx = classify(Path::new(
            "crates/lint/tests/fixtures/bad/crates/sim/src/hash_order.rs",
        ));
        assert_eq!(fx.crate_name.as_deref(), Some("sim"));
        assert!(fx.order_sensitive && fx.lib_source);

        let fx_par = classify(Path::new(
            "crates/lint/tests/fixtures/good/crates/sim/src/par.rs",
        ));
        assert!(fx_par.spawn_exempt);
    }

    #[test]
    fn classify_outside_crates() {
        let loose = classify(Path::new("scripts/tool.rs"));
        assert_eq!(loose.crate_name, None);
        assert!(!loose.order_sensitive && !loose.lib_source && !loose.spawn_exempt);
    }
}
