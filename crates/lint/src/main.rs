//! The `ftgcs-lint` binary: the CI gate for the determinism discipline.
//!
//! ```text
//! ftgcs-lint check [PATH]   # exit 0 iff clean (default PATH: .)
//! ftgcs-lint rules          # list rules and their rationale
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            if args.len() > 2 {
                return usage();
            }
            let root = args.get(1).map_or(".", String::as_str);
            check(Path::new(root))
        }
        Some("rules") => {
            for rule in ftgcs_lint::rules::RULES {
                println!("{:<22} {}", rule.name, rule.summary);
            }
            println!(
                "\nsuppress per line with: // ftgcs-lint: allow(<rule>) -- <reason> (reason mandatory)"
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn check(root: &Path) -> ExitCode {
    match ftgcs_lint::check_path(root) {
        Ok(report) => {
            if report.is_clean() {
                println!(
                    "ftgcs-lint: clean — {} file(s) audited under {}",
                    report.files_scanned,
                    root.display()
                );
                ExitCode::SUCCESS
            } else {
                print!("{}", report.render());
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("ftgcs-lint: cannot check {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: ftgcs-lint check [PATH] | ftgcs-lint rules");
    ExitCode::from(2)
}
