//! The rule engine: what the determinism discipline actually checks.
//!
//! Every rule exists to defend one property: **a simulation run is a
//! pure function of `(seed, configuration)`, byte-identical across the
//! serial, sharded, and parallel schedulers at any worker count.** The
//! rules ban the ambient sources of nondeterminism Rust makes easy to
//! reach for — wall clocks, OS-seeded randomness, hash-order iteration,
//! stray threads — and enforce the workspace's unsafety discipline
//! (SAFETY comments, justified `#[allow]`s) so the one sanctioned
//! unsafe region stays auditable.
//!
//! ## Suppression pragmas
//!
//! A finding can be silenced per line, with a mandatory reason:
//!
//! ```text
//! // ftgcs-lint: allow(no-wall-clock) -- progress meter only, never in the trace
//! ```
//!
//! On a line with code, the pragma applies to that line; on a line of
//! its own, it applies to the next line carrying code (intervening
//! comments and attributes are skipped; a blank line cancels it). A
//! pragma without a `-- reason` tail suppresses nothing and is itself
//! reported (`bad-pragma`), as is a pragma naming an unknown rule.

use crate::scan::{scan, Line};

/// Identifier and rationale for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The name used in diagnostics and pragmas.
    pub name: &'static str,
    /// One-line rationale, tied to the byte-identical-trace guarantee.
    pub summary: &'static str,
}

/// The rule set, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-wall-clock",
        summary: "Instant/SystemTime read the host clock; simulated time must come from SimTime so runs are reproducible",
    },
    RuleInfo {
        name: "no-os-rng",
        summary: "thread_rng/RandomState/from_entropy seed from the OS; all randomness must flow from the run's seed (SimRng)",
    },
    RuleInfo {
        name: "no-hash-order",
        summary: "std HashMap/HashSet iteration order is randomized per process; order-sensitive crates must use BTreeMap or sorted Vecs",
    },
    RuleInfo {
        name: "no-thread-spawn",
        summary: "only the parallel executor (sim/src/par.rs) and the serve infrastructure crate may spawn threads; ad-hoc threads bypass the lookahead-barrier protocol",
    },
    RuleInfo {
        name: "no-print-in-lib",
        summary: "library crates must route output through the Observer sink, not stdout/stderr",
    },
    RuleInfo {
        name: "unsafe-needs-safety",
        summary: "every unsafe block/fn/impl must carry a SAFETY: comment stating the proof obligation it discharges",
    },
    RuleInfo {
        name: "allow-needs-reason",
        summary: "every #[allow(...)] must carry a trailing // justification, so suppressions stay auditable",
    },
];

/// The pseudo-rule used for pragma machinery errors. Not suppressible.
pub const BAD_PRAGMA: &str = "bad-pragma";

/// Looks up a rule by name.
pub fn rule_named(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Where a file sits in the workspace — decides which scoped rules
/// apply. Derived from the path by [`crate::walk::classify`]; tests
/// construct it directly to pin rule behavior per context.
#[derive(Debug, Clone, Default)]
pub struct FileCtx {
    /// `crates/<name>/…` → `Some(name)`.
    pub crate_name: Option<String>,
    /// `no-hash-order` applies (crates `core`, `sim`, `baselines`,
    /// `topology` — the ones whose iteration order reaches the trace).
    pub order_sensitive: bool,
    /// `no-print-in-lib` applies: library-target source (`src/`, not
    /// `src/bin/`) of a library crate. The `bench` CLI crate and the
    /// example/test/bench targets of every crate print legitimately.
    pub lib_source: bool,
    /// `no-thread-spawn` is waived: exactly `crates/sim/src/par.rs`
    /// (simulation fan-out behind the lookahead barrier) and all of
    /// `crates/serve` (infrastructure threads over OS processes and
    /// sockets, which never touch simulated state).
    pub spawn_exempt: bool,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based source line.
    pub line: usize,
    /// Rule name (or [`BAD_PRAGMA`]).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// A parsed suppression pragma (the `allow(...) -- reason` form).
struct Pragma {
    /// Known rules it suppresses (empty if malformed or reason-less).
    rules: Vec<&'static str>,
    /// Machinery errors to report at the pragma's line.
    errors: Vec<String>,
}

/// Parses the pragma out of a line's comment text, if any.
fn parse_pragma(comment: &str) -> Option<Pragma> {
    let marker = "ftgcs-lint:";
    let at = comment.find(marker)?;
    let rest = comment[at + marker.len()..].trim_start();
    let mut pragma = Pragma {
        rules: Vec::new(),
        errors: Vec::new(),
    };
    let Some(args) = rest.strip_prefix("allow").map(str::trim_start) else {
        pragma
            .errors
            .push("malformed pragma: expected `ftgcs-lint: allow(<rule>) -- <reason>`".into());
        return Some(pragma);
    };
    let Some(open) = args.strip_prefix('(') else {
        pragma
            .errors
            .push("malformed pragma: expected `(` after `allow`".into());
        return Some(pragma);
    };
    let Some(close) = open.find(')') else {
        pragma
            .errors
            .push("malformed pragma: unclosed rule list".into());
        return Some(pragma);
    };
    let (list, tail) = open.split_at(close);
    let tail = &tail[1..]; // drop `)`

    let mut named = Vec::new();
    for raw in list.split(',') {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        match rule_named(name) {
            Some(info) => named.push(info.name),
            None => pragma
                .errors
                .push(format!("pragma names unknown rule `{name}`")),
        }
    }
    if named.is_empty() && pragma.errors.is_empty() {
        pragma.errors.push("pragma suppresses no rules".into());
    }

    // The reason is mandatory: `-- <non-empty text>`. A reason-less
    // pragma reports and suppresses nothing — silent suppressions are
    // exactly what this tool exists to prevent.
    let reason_ok = tail
        .trim_start()
        .strip_prefix("--")
        .is_some_and(|r| !r.trim().is_empty());
    if reason_ok {
        pragma.rules = named;
    } else {
        pragma
            .errors
            .push("suppression needs a reason: `-- <why this line is exempt>`".into());
    }
    Some(pragma)
}

/// A word-boundary substring hit: `needle` occurs in `hay` with no
/// identifier character on either side.
fn word_hit(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = hay[..start]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = hay[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// A macro invocation hit: word-boundary `name` immediately followed
/// by `!` (allowing whitespace before the bang is unnecessary — rustfmt
/// never inserts any).
fn macro_hit(hay: &str, name: &str) -> bool {
    let bang = format!("{name}!");
    word_hit(hay, &bang[..bang.len() - 1]) && hay.contains(&bang)
}

/// Patterns for the three "ambient nondeterminism" rules.
const WALL_CLOCK: &[&str] = &["Instant", "SystemTime"];
const OS_RNG: &[&str] = &[
    "thread_rng",
    "RandomState",
    "from_entropy",
    "OsRng",
    "getrandom",
];
const HASH_ORDER: &[&str] = &["HashMap", "HashSet"];
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Runs every applicable rule over one file's source.
pub fn check_source(source: &str, ctx: &FileCtx) -> Vec<Diagnostic> {
    let lines = scan(source);
    let mut diags = Vec::new();

    // Pass 1: pragmas. `suppressed[i]` is the set of rule names waived
    // on line i; `pending` carries an own-line pragma forward to the
    // next code-bearing line.
    let mut suppressed: Vec<Vec<&'static str>> = vec![Vec::new(); lines.len()];
    let mut pending: Vec<&'static str> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(pragma) = parse_pragma(&line.comment) {
            for err in &pragma.errors {
                diags.push(Diagnostic {
                    line: i + 1,
                    rule: BAD_PRAGMA,
                    message: err.clone(),
                });
            }
            if line.is_code_free() {
                pending.extend(pragma.rules.iter().copied());
                continue; // comment-only pragma line: nothing to match on
            }
            suppressed[i].extend(pragma.rules.iter().copied());
        }
        if line.is_blank() {
            pending.clear(); // a blank line detaches an own-line pragma
        } else if !line.is_code_free() && !pending.is_empty() {
            // The pragma lands on the next code line; attributes both
            // receive it (so `allow-needs-reason` can be waived) and
            // pass it through to the item they decorate.
            suppressed[i].extend(pending.iter().copied());
            if !line.is_attribute_only() {
                pending.clear();
            }
        }
    }

    // Pass 2: the rules themselves.
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let mut hits: Vec<(&'static str, String)> = Vec::new();

        for pat in WALL_CLOCK {
            if word_hit(code, pat) {
                hits.push((
                    "no-wall-clock",
                    format!("`{pat}` reads the host clock; use SimTime/SimDuration"),
                ));
                break;
            }
        }
        for pat in OS_RNG {
            if word_hit(code, pat) {
                hits.push((
                    "no-os-rng",
                    format!("`{pat}` draws OS entropy; all randomness must derive from the run seed (SimRng)"),
                ));
                break;
            }
        }
        if ctx.order_sensitive {
            for pat in HASH_ORDER {
                if word_hit(code, pat) {
                    hits.push((
                        "no-hash-order",
                        format!(
                            "std `{pat}` has randomized iteration order; use BTreeMap/BTreeSet or a sorted Vec in order-sensitive crates"
                        ),
                    ));
                    break;
                }
            }
        }
        if !ctx.spawn_exempt && (code.contains("thread::spawn") || code.contains("thread::Builder"))
        {
            hits.push((
                "no-thread-spawn",
                "threads may only be spawned by the parallel executor (crates/sim/src/par.rs) or the serve infrastructure crate (crates/serve)"
                    .into(),
            ));
        }
        if ctx.lib_source {
            for pat in PRINT_MACROS {
                if macro_hit(code, pat) {
                    hits.push((
                        "no-print-in-lib",
                        format!("`{pat}!` writes to the process streams; library code must emit through the Observer sink"),
                    ));
                    break;
                }
            }
        }
        if word_hit(code, "unsafe") && !safety_covered(&lines, i) {
            hits.push((
                "unsafe-needs-safety",
                "unsafe site without a `// SAFETY:` comment stating the discharged proof obligation"
                    .into(),
            ));
        }
        if (code.contains("#[allow(") || code.contains("#![allow("))
            && line.comment.trim().is_empty()
        {
            hits.push((
                "allow-needs-reason",
                "#[allow(...)] without a trailing `// <why>` justification".into(),
            ));
        }

        for (rule, message) in hits {
            if !suppressed[i].contains(&rule) {
                diags.push(Diagnostic {
                    line: i + 1,
                    rule,
                    message,
                });
            }
        }
    }
    diags.sort_by_key(|d| d.line);
    diags
}

/// True if the `unsafe` on line `i` is covered by a SAFETY comment: on
/// the same line, or in the contiguous block of comment-only /
/// attribute lines immediately above it. Doc-comment `# Safety`
/// sections count for `unsafe fn` declarations.
fn safety_covered(lines: &[Line], i: usize) -> bool {
    let marks = |c: &str| c.contains("SAFETY:") || c.contains("# Safety");
    if marks(&lines[i].comment) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let above = &lines[j];
        if above.is_code_free() && !above.is_blank() {
            // Comment-only line: readable, keep walking.
        } else if above.is_attribute_only() {
            // Attributes sit between a comment and its item; transparent.
        } else {
            return false;
        }
        if marks(&above.comment) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileCtx {
        FileCtx {
            crate_name: Some("sim".into()),
            order_sensitive: true,
            lib_source: true,
            spawn_exempt: false,
        }
    }

    fn names(diags: &[Diagnostic]) -> Vec<(usize, &'static str)> {
        diags.iter().map(|d| (d.line, d.rule)).collect()
    }

    #[test]
    fn wall_clock_flagged_in_code_not_comments_or_strings() {
        let src = "// Instant::now is banned\nlet s = \"Instant\";\nlet t = Instant::now();\n";
        let d = check_source(src, &lib_ctx());
        assert_eq!(names(&d), vec![(3, "no-wall-clock")]);
    }

    #[test]
    fn hash_order_only_in_order_sensitive_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check_source(src, &lib_ctx()).len(), 1);
        let bench = FileCtx {
            crate_name: Some("bench".into()),
            ..FileCtx::default()
        };
        assert!(check_source(src, &bench).is_empty());
    }

    #[test]
    fn sim_hash_map_wrapper_names_do_not_trip_word_boundary() {
        let src = "struct NodeHashMapx;\nlet m = FxHashMap::default();\n";
        assert!(check_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn thread_spawn_waived_only_in_par() {
        let src = "std::thread::spawn(|| {});\n";
        assert_eq!(check_source(src, &lib_ctx()).len(), 1);
        let par = FileCtx {
            spawn_exempt: true,
            ..lib_ctx()
        };
        assert!(check_source(src, &par).is_empty());
    }

    #[test]
    fn print_only_flagged_in_lib_source() {
        let src = "println!(\"hi\");\n";
        assert_eq!(check_source(src, &lib_ctx()).len(), 1);
        let example = FileCtx {
            lib_source: false,
            ..lib_ctx()
        };
        assert!(check_source(src, &example).is_empty());
    }

    #[test]
    fn unsafe_covered_by_same_line_or_block_above() {
        let ok = "// SAFETY: ptr is valid for the window\nunsafe { *p }\n";
        assert!(check_source(ok, &lib_ctx()).is_empty());
        let ok_attr = "// SAFETY: disjoint\n#[allow(clippy::mut_from_ref)] // lint artifact\nunsafe fn f() {}\n";
        assert!(check_source(ok_attr, &lib_ctx()).is_empty());
        let ok_doc =
            "/// Reads a cell.\n///\n/// # Safety\n/// Caller owns idx.\nunsafe fn g() {}\n";
        assert!(check_source(ok_doc, &lib_ctx()).is_empty());
        let bad = "let x = 1;\nunsafe { *p }\n";
        assert_eq!(
            names(&check_source(bad, &lib_ctx())),
            vec![(2, "unsafe-needs-safety")]
        );
        // A second unsafe line is NOT covered by the first line's comment.
        let two = "// SAFETY: a\nunsafe impl Send for X {}\nunsafe impl Sync for X {}\n";
        assert_eq!(
            names(&check_source(two, &lib_ctx())),
            vec![(3, "unsafe-needs-safety")]
        );
    }

    #[test]
    fn allow_needs_trailing_reason() {
        let bad = "#[allow(dead_code)]\nfn f() {}\n";
        assert_eq!(
            names(&check_source(bad, &lib_ctx())),
            vec![(1, "allow-needs-reason")]
        );
        let ok = "#[allow(dead_code)] // proof artifact, never called\nfn f() {}\n";
        assert!(check_source(ok, &lib_ctx()).is_empty());
    }

    #[test]
    fn same_line_pragma_suppresses_with_reason() {
        let src =
            "let t = Instant::now(); // ftgcs-lint: allow(no-wall-clock) -- host-side profiling\n";
        assert!(check_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn own_line_pragma_covers_next_code_line() {
        let src = "// ftgcs-lint: allow(no-os-rng) -- seeding doc example\n// more prose\nlet r = thread_rng();\n";
        assert!(check_source(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn blank_line_detaches_own_line_pragma() {
        let src = "// ftgcs-lint: allow(no-os-rng) -- stale\n\nlet r = thread_rng();\n";
        assert_eq!(
            names(&check_source(src, &lib_ctx())),
            vec![(3, "no-os-rng")]
        );
    }

    #[test]
    fn reasonless_pragma_reports_and_suppresses_nothing() {
        let src = "let t = Instant::now(); // ftgcs-lint: allow(no-wall-clock)\n";
        let d = check_source(src, &lib_ctx());
        assert_eq!(names(&d), vec![(1, BAD_PRAGMA), (1, "no-wall-clock")]);
    }

    #[test]
    fn unknown_rule_in_pragma_reports() {
        let src = "// ftgcs-lint: allow(no-such-rule) -- because\nlet x = 1;\n";
        let d = check_source(src, &lib_ctx());
        assert_eq!(names(&d), vec![(1, BAD_PRAGMA)]);
    }

    #[test]
    fn pragma_does_not_suppress_other_rules() {
        let src =
            "let t = Instant::now(); // ftgcs-lint: allow(no-os-rng) -- wrong rule named here\n";
        let d = check_source(src, &lib_ctx());
        assert_eq!(names(&d), vec![(1, "no-wall-clock")]);
    }
}
