//! Lexical pre-pass: split Rust source into per-line **code** and
//! **comment** channels.
//!
//! The rules in [`crate::rules`] are substring matchers, so they must
//! never fire on text inside comments, string literals, or char
//! literals — a doc comment *describing* `Instant::now` is not a
//! determinism violation. This module walks the source once with a
//! small state machine that understands:
//!
//! * line comments (`//`, `///`, `//!`),
//! * block comments (`/* … */`, nested, possibly spanning lines),
//! * string literals with escapes (`"…\"…"`), byte strings (`b"…"`),
//! * raw (byte) strings with any hash depth (`r#"…"#`, `br##"…"##`),
//! * char and byte-char literals (`'a'`, `'\n'`, `b'x'`) versus
//!   lifetimes (`'a`, `'static`).
//!
//! The output preserves line structure exactly: `lines[i]` describes
//! source line `i + 1`. String and char *contents* are blanked out of
//! the code channel (the delimiters remain, so the code still "shapes"
//! like Rust); comment text is routed to the comment channel, where the
//! pragma parser and the `SAFETY:` check read it.

/// One source line, split into its code and comment parts.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line's code with string/char contents blanked and comments
    /// removed. Delimiters (`"`, `'`) survive.
    pub code: String,
    /// Concatenated text of every comment on the line, without the
    /// `//` / `/*` / `*/` markers.
    pub comment: String,
}

impl Line {
    /// True if the line carries no code at all (blank, or comment-only).
    pub fn is_code_free(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// True if the line is *blank*: no code and no comment.
    pub fn is_blank(&self) -> bool {
        self.is_code_free() && self.comment.trim().is_empty()
    }

    /// True if the line's code is exactly an attribute (`#[…]` or
    /// `#![…]`), which rule logic treats as "transparent" when walking
    /// upward from an `unsafe` site to its SAFETY comment.
    pub fn is_attribute_only(&self) -> bool {
        let code = self.code.trim();
        (code.starts_with("#[") || code.starts_with("#![")) && code.ends_with(']')
    }
}

/// Scanner state between characters.
enum State {
    Code,
    LineComment,
    /// Nested block comment depth (≥ 1).
    BlockComment(u32),
    /// Inside `"…"` or `b"…"` (escapes active).
    Str,
    /// Inside a raw string; the payload is the hash depth of the
    /// closing delimiter (`"##…`).
    RawStr(u32),
    /// Inside a char / byte-char literal (escapes active).
    CharLit,
}

/// Splits `source` into per-line code/comment channels.
///
/// The scanner is intentionally forgiving: malformed source (an
/// unterminated string, say) cannot panic — the remainder of the file
/// is simply classified by the open state. `rustc` is the authority on
/// syntax; this pass only needs to be *sound enough* that the
/// substring rules neither fire inside literals nor miss real code.
pub fn scan(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;

    // True when chars[i - 1] continues an identifier, so a following
    // `r"` / `b"` is *not* a literal prefix (e.g. `var"` never parses,
    // but defensiveness here is free).
    let mut prev_ident = false;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Newline ends line comments; every other state persists.
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            prev_ident = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    prev_ident = false;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    prev_ident = false;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                    prev_ident = false;
                } else if !prev_ident && (c == 'r' || c == 'b') {
                    // Literal prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
                    let (prefix_len, kind) = literal_prefix(&chars[i..]);
                    match kind {
                        PrefixKind::RawStr(hashes) => {
                            line.code.push('"');
                            state = State::RawStr(hashes);
                            i += prefix_len;
                        }
                        PrefixKind::Str => {
                            line.code.push('"');
                            state = State::Str;
                            i += prefix_len;
                        }
                        PrefixKind::Char => {
                            line.code.push('\'');
                            state = State::CharLit;
                            i += prefix_len;
                        }
                        PrefixKind::None => {
                            line.code.push(c);
                            prev_ident = true;
                            i += 1;
                        }
                    }
                } else if c == '\'' {
                    // Char literal or lifetime?
                    if is_char_literal(&chars[i..]) {
                        line.code.push('\'');
                        state = State::CharLit;
                    } else {
                        line.code.push('\'');
                        prev_ident = false;
                    }
                    i += 1;
                } else {
                    line.code.push(c);
                    prev_ident = c.is_alphanumeric() || c == '_';
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        // Keep comment segments separated so "SAF" "ETY"
                        // across two comments can't merge into a hit.
                        line.comment.push(' ');
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char (it may be a quote) — but
                    // never a newline: a `\`-continuation still has to
                    // end the current line in the output.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1; // blank string contents
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                    line.code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    // A final line without a trailing newline still counts.
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

enum PrefixKind {
    None,
    Str,
    RawStr(u32),
    Char,
}

/// Detects a literal prefix at the start of `rest` (which begins with
/// `r` or `b`). Returns the number of chars to consume *including the
/// opening quote*.
fn literal_prefix(rest: &[char]) -> (usize, PrefixKind) {
    let mut j;
    if rest[0] == 'b' {
        if rest.get(1) == Some(&'\'') {
            return (2, PrefixKind::Char); // b'…'
        }
        if rest.get(1) == Some(&'"') {
            return (2, PrefixKind::Str); // b"…"
        }
        if rest.get(1) != Some(&'r') {
            return (0, PrefixKind::None);
        }
        j = 2; // br…
    } else {
        j = 1; // r…
    }
    // At this point rest[..j] is `r` or `br`; count hashes then expect `"`.
    let mut hashes = 0u32;
    while rest.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) == Some(&'"') {
        (j + 1, PrefixKind::RawStr(hashes))
    } else {
        (0, PrefixKind::None)
    }
}

/// True if the `'` starting `rest` opens a char literal rather than a
/// lifetime. `'a'` is a char; `'a`, `'static`, `'_` are lifetimes;
/// `'\n'` and `'('` are chars.
fn is_char_literal(rest: &[char]) -> bool {
    match rest.get(1) {
        None => false,
        Some('\\') => true,
        Some(&c) if c.is_alphanumeric() || c == '_' => rest.get(2) == Some(&'\''),
        // Any other single char (`'('`, `' '`, `'🦀'`) must be a literal.
        Some(_) => true,
    }
}

/// True if `rest` (the chars after a `"` inside a raw string) supplies
/// `hashes` consecutive `#`s, closing the literal.
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    fn comments(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.comment).collect()
    }

    #[test]
    fn line_comments_are_stripped_from_code() {
        let lines = scan("let x = 1; // Instant::now\nlet y = 2;");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " Instant::now");
        assert_eq!(lines[1].code, "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = code("let s = \"Instant::now\"; f(s);");
        assert_eq!(c[0], "let s = \"\"; f(s);");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = code(r#"let s = "a\"Instant::now\"b"; g();"#);
        assert!(!c[0].contains("Instant"));
        assert!(c[0].contains("g();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = code(r###"let s = r#"thread_rng " inside"#; h();"###);
        assert!(!c[0].contains("thread_rng"));
        assert!(c[0].contains("h();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let c = code(r###"let a = b"HashMap"; let b2 = br#"HashSet"#; k();"###);
        assert!(!c[0].contains("HashMap"));
        assert!(!c[0].contains("HashSet"));
        assert!(c[0].contains("k();"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let src = "a(); /* outer /* inner SystemTime */ still out */ b();\nc();";
        let lines = scan(src);
        assert_eq!(lines[0].code, "a();  b();");
        assert!(lines[0].comment.contains("SystemTime"));
        assert_eq!(lines[1].code, "c();");
    }

    #[test]
    fn multi_line_block_comment_marks_every_line() {
        let src = "x(); /* one\ntwo\nthree */ y();";
        let lines = scan(src);
        assert_eq!(lines[0].code, "x(); ");
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[1].comment.contains("two"));
        assert_eq!(lines[2].code, " y();");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = code("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(c[0].contains("'a>"));
        assert!(c[0].contains("'static"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let c = code("let q = '\"'; let n = '\\n'; let ch = 'Q'; m();");
        // The quote char inside '"' must not open a string literal.
        assert!(c[0].contains("m();"));
        // Char contents are blanked like string contents.
        assert!(!c[0].contains('Q'));
    }

    #[test]
    fn multi_line_strings_blank_interior_lines() {
        let src = "let s = \"line one\nInstant::now\nlast\"; tail();";
        let lines = scan(src);
        assert!(!lines[1].code.contains("Instant"));
        assert!(lines[2].code.contains("tail();"));
    }

    #[test]
    fn doc_comments_go_to_the_comment_channel() {
        let lines = scan("/// uses SystemTime internally\nfn f() {}");
        assert!(lines[0].is_code_free());
        assert!(lines[0].comment.contains("SystemTime"));
        assert!(!lines[0].is_blank());
    }

    #[test]
    fn attribute_detection() {
        let lines = scan("#[allow(dead_code)]\n#![deny(unsafe_code)]\nfn f() {}");
        assert!(lines[0].is_attribute_only());
        assert!(lines[1].is_attribute_only());
        assert!(!lines[2].is_attribute_only());
    }

    #[test]
    fn missing_trailing_newline_keeps_last_line() {
        assert_eq!(comments("x(); // tail"), vec![" tail".to_string()]);
    }
}
