//! # ftgcs-lint — determinism-audit static analysis for the FTGCS workspace
//!
//! The repo's load-bearing guarantee is that a simulation run is a pure
//! function of `(seed, configuration)`: the serial, sharded, and
//! parallel schedulers produce **byte-identical traces at any worker
//! count** (see `crates/sim/tests/shard_equivalence.rs`). That property
//! survives only as long as nobody writes an ambient source of
//! nondeterminism into an order-sensitive path. This crate is the
//! machine check: a comment- and string-literal-aware source scanner
//! ([`scan`]) feeding a rule engine ([`rules`]) with per-line
//! suppression pragmas, run over the workspace by CI and by
//! `tests/workspace.rs` on every `cargo test`.
//!
//! ## Running it
//!
//! ```text
//! cargo run -p ftgcs-lint -- check .        # whole workspace (CI gate)
//! cargo run -p ftgcs-lint -- check crates/sim
//! cargo run -p ftgcs-lint -- rules          # list rules + rationale
//! ```
//!
//! ## Suppressing a finding
//!
//! ```text
//! let t0 = Instant::now(); // ftgcs-lint: allow(no-wall-clock) -- host-side profiling, never in the trace
//! ```
//!
//! The reason after `--` is mandatory; a reason-less pragma suppresses
//! nothing and is itself a finding. See [`rules`] for the rule list and
//! the rationale tying each rule to the byte-identical-trace guarantee.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod rules;
pub mod scan;
pub mod walk;

use std::path::{Path, PathBuf};

use rules::Diagnostic;

/// One file's findings, with the path they belong to.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// Path as discovered by the walker (relative to the check root if
    /// the root was relative).
    pub path: PathBuf,
    /// Findings in line order.
    pub diagnostics: Vec<Diagnostic>,
}

/// A whole check run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Files that had findings (clean files are omitted).
    pub files: Vec<FileReport>,
    /// Total number of files scanned, clean or not.
    pub files_scanned: usize,
}

impl Report {
    /// Total finding count across all files.
    pub fn count(&self) -> usize {
        self.files.iter().map(|f| f.diagnostics.len()).sum()
    }

    /// True if the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.files.is_empty()
    }

    /// Renders the report in `file:line: [rule] message` form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for file in &self.files {
            for d in &file.diagnostics {
                out.push_str(&format!(
                    "{}:{}: [{}] {}\n",
                    file.path.display(),
                    d.line,
                    d.rule,
                    d.message
                ));
            }
        }
        out.push_str(&format!(
            "{} finding(s) in {} of {} file(s)\n",
            self.count(),
            self.files.len(),
            self.files_scanned
        ));
        out
    }
}

/// Checks every `.rs` file under `root` (a directory or a single file).
///
/// Classification is positional (see [`walk::classify`]), so pointing
/// the root at the repository top-level audits the real tree, while
/// pointing it inside the fixture corpus audits fixtures under their
/// mirrored crate paths.
pub fn check_path(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in walk::rust_files(root)? {
        let source = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let ctx = walk::classify(&path);
        let diagnostics = rules::check_source(&source, &ctx);
        if !diagnostics.is_empty() {
            report.files.push(FileReport { path, diagnostics });
        }
    }
    Ok(report)
}
