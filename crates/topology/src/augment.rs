//! The cluster augmentation `G → G(k)` (paper, Section 2, "Network").
//!
//! Each vertex `C` of the abstract graph `G = (C, E)` is replaced by a set
//! of `k ≥ 3f+1` *physical* nodes forming a clique (cluster edges), and
//! each abstract edge `(B, C) ∈ E` by a complete bipartite graph between
//! the corresponding clusters (intercluster edges). [`ClusterGraph`] owns
//! both graphs and the node ⇄ (cluster, slot) indexing, plus the
//! node/edge-overhead accounting of Theorem 1.1 (`Θ(f)` nodes, `Θ(f²)`
//! edges).

use crate::graph::Graph;

/// An augmented network: the abstract cluster graph plus its physical
/// realization.
///
/// Physical node ids are dense: the members of cluster `c` are
/// `c·k .. (c+1)·k`.
///
/// # Examples
///
/// ```
/// use ftgcs_topology::{generators::line, ClusterGraph};
///
/// // A line of 3 clusters, each a 4-clique (tolerating f = 1 fault).
/// let cg = ClusterGraph::new(line(3), 4, 1);
/// assert_eq!(cg.physical().node_count(), 12);
/// assert_eq!(cg.cluster_of(5), 1);
/// assert_eq!(cg.slot_of(5), 1);
/// assert_eq!(cg.node_id(2, 3), 11);
/// // Cluster edges: 3 · C(4,2) = 18; intercluster: 2 · 4² = 32.
/// assert_eq!(cg.physical().edge_count(), 18 + 32);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterGraph {
    base: Graph,
    cluster_size: usize,
    max_faults: usize,
    physical: Graph,
}

impl ClusterGraph {
    /// Augments `base` with clusters of `cluster_size = k` nodes tolerating
    /// up to `max_faults = f` Byzantine members each.
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 3f + 1` (the resilience bound of [DHS'84]) and
    /// `k ≥ 1`.
    #[must_use]
    #[allow(clippy::int_plus_one)] // mirror the paper's k >= 3f+1 form
    pub fn new(base: Graph, cluster_size: usize, max_faults: usize) -> Self {
        assert!(cluster_size >= 1, "clusters must be non-empty");
        assert!(
            cluster_size >= 3 * max_faults + 1,
            "need k >= 3f+1 (got k={cluster_size}, f={max_faults})"
        );
        let k = cluster_size;
        let n = base.node_count();
        let mut physical = Graph::new(n * k);
        // Cluster edges: each cluster is a clique.
        for c in 0..n {
            for i in 0..k {
                for j in (i + 1)..k {
                    physical.add_edge(c * k + i, c * k + j);
                }
            }
        }
        // Intercluster edges: complete bipartite between adjacent clusters.
        for (b, c) in base.edges() {
            for i in 0..k {
                for j in 0..k {
                    physical.add_edge(b * k + i, c * k + j);
                }
            }
        }
        ClusterGraph {
            base,
            cluster_size,
            max_faults,
            physical,
        }
    }

    /// The abstract cluster graph `G`.
    #[must_use]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The physical graph `G` on which the algorithm runs.
    #[must_use]
    pub fn physical(&self) -> &Graph {
        &self.physical
    }

    /// Cluster size `k`.
    #[must_use]
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// Fault budget `f` per cluster.
    #[must_use]
    pub fn max_faults(&self) -> usize {
        self.max_faults
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.base.node_count()
    }

    /// The cluster containing physical node `v`.
    #[must_use]
    pub fn cluster_of(&self, v: usize) -> usize {
        assert!(v < self.physical.node_count(), "node out of range");
        v / self.cluster_size
    }

    /// The slot (index within its cluster) of physical node `v`.
    #[must_use]
    pub fn slot_of(&self, v: usize) -> usize {
        assert!(v < self.physical.node_count(), "node out of range");
        v % self.cluster_size
    }

    /// The physical node at `(cluster, slot)`.
    #[must_use]
    pub fn node_id(&self, cluster: usize, slot: usize) -> usize {
        assert!(cluster < self.cluster_count(), "cluster out of range");
        assert!(slot < self.cluster_size, "slot out of range");
        cluster * self.cluster_size + slot
    }

    /// Physical members of a cluster.
    #[must_use]
    pub fn members(&self, cluster: usize) -> std::ops::Range<usize> {
        assert!(cluster < self.cluster_count(), "cluster out of range");
        let k = self.cluster_size;
        cluster * k..(cluster + 1) * k
    }

    /// Clusters adjacent to `cluster` in the base graph.
    #[must_use]
    pub fn neighbor_clusters(&self, cluster: usize) -> &[usize] {
        self.base.neighbors(cluster)
    }

    /// Number of cluster (intra-clique) edges.
    #[must_use]
    pub fn cluster_edge_count(&self) -> usize {
        self.cluster_count() * self.cluster_size * (self.cluster_size - 1) / 2
    }

    /// Number of intercluster (bipartite) edges.
    #[must_use]
    pub fn intercluster_edge_count(&self) -> usize {
        self.base.edge_count() * self.cluster_size * self.cluster_size
    }

    /// Node overhead factor over the base graph (= `k`).
    #[must_use]
    pub fn node_overhead(&self) -> usize {
        self.cluster_size
    }

    /// Edge overhead factor over the base graph: total physical edges per
    /// base edge, counting clique edges amortized over base edges
    /// (`∞` is avoided by returning `None` for edgeless bases).
    #[must_use]
    pub fn edge_overhead(&self) -> Option<f64> {
        if self.base.edge_count() == 0 {
            return None;
        }
        Some(self.physical.edge_count() as f64 / self.base.edge_count() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::diameter;
    use crate::generators::{complete, line, ring};

    #[test]
    fn indexing_round_trips() {
        let cg = ClusterGraph::new(ring(5), 7, 2);
        for c in 0..5 {
            for s in 0..7 {
                let v = cg.node_id(c, s);
                assert_eq!(cg.cluster_of(v), c);
                assert_eq!(cg.slot_of(v), s);
                assert!(cg.members(c).contains(&v));
            }
        }
    }

    #[test]
    fn edge_counts_match_formulas() {
        let base = ring(6);
        let k = 4;
        let cg = ClusterGraph::new(base.clone(), k, 1);
        assert_eq!(cg.cluster_edge_count(), 6 * (k * (k - 1) / 2));
        assert_eq!(cg.intercluster_edge_count(), base.edge_count() * k * k);
        assert_eq!(
            cg.physical().edge_count(),
            cg.cluster_edge_count() + cg.intercluster_edge_count()
        );
        assert!(cg.physical().is_consistent());
    }

    #[test]
    fn clusters_are_cliques_and_bipartite_connections_complete() {
        let cg = ClusterGraph::new(line(3), 4, 1);
        let g = cg.physical();
        // Clique inside cluster 1.
        for i in cg.members(1) {
            for j in cg.members(1) {
                if i != j {
                    assert!(g.has_edge(i, j));
                }
            }
        }
        // Complete bipartite 0↔1, no edges 0↔2.
        for i in cg.members(0) {
            for j in cg.members(1) {
                assert!(g.has_edge(i, j));
            }
            for j in cg.members(2) {
                assert!(!g.has_edge(i, j));
            }
        }
    }

    #[test]
    fn augmentation_preserves_diameter() {
        let base = line(5);
        let cg = ClusterGraph::new(base.clone(), 4, 1);
        assert_eq!(diameter(cg.physical()), diameter(&base));
    }

    #[test]
    fn overhead_factors() {
        let cg = ClusterGraph::new(complete(4), 7, 2);
        assert_eq!(cg.node_overhead(), 7);
        let per_edge = cg.edge_overhead().unwrap();
        // 6 base edges -> 6·49 inter + 4·21 intra = 294 + 84 = 378 edges.
        assert!((per_edge - 378.0 / 6.0).abs() < 1e-12);
        assert!(ClusterGraph::new(Graph::new(2), 4, 1)
            .edge_overhead()
            .is_none());
    }

    #[test]
    fn f_zero_allows_singleton_clusters() {
        let cg = ClusterGraph::new(line(3), 1, 0);
        assert_eq!(cg.physical().node_count(), 3);
        assert_eq!(cg.physical().edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn rejects_insufficient_cluster_size() {
        let _ = ClusterGraph::new(line(2), 3, 1);
    }
}
