//! # ftgcs-topology — graphs for gradient clock synchronization
//!
//! Network topologies for the FTGCS reproduction: an undirected [`Graph`]
//! type, generators for the families used in experiments
//! ([`generators`]), BFS/diameter analysis ([`analysis`]), and the paper's
//! **cluster augmentation** `G → G(k)` ([`ClusterGraph`]), which replaces
//! every vertex by a `k ≥ 3f+1` clique and every edge by a complete
//! bipartite graph.
//!
//! ## Quickstart
//!
//! ```
//! use ftgcs_topology::{generators, analysis, ClusterGraph};
//!
//! let base = generators::grid(3, 3);
//! assert_eq!(analysis::diameter(&base), 4);
//!
//! let cg = ClusterGraph::new(base, 4, 1); // tolerate 1 Byzantine node/cluster
//! assert_eq!(cg.physical().node_count(), 9 * 4);
//! assert_eq!(cg.neighbor_clusters(4), &[1, 3, 5, 7]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Unsafety discipline (enforced by `ftgcs-lint`): this crate must
// compile with no `unsafe` at all; the one sanctioned unsafe region in
// the workspace is `ftgcs-sim`'s parallel executor (sim/src/par.rs).
#![deny(unsafe_code)]
// Library output goes through return values and the `Observer` sink,
// never the process streams (enforced by `ftgcs-lint` and clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod analysis;
pub mod augment;
pub mod generators;
pub mod graph;

pub use augment::ClusterGraph;
pub use graph::Graph;
