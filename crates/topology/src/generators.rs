//! Standard graph families used in the experiments.
//!
//! The paper's bounds are parameterized by the network diameter `D`;
//! line/ring/grid/torus/tree families let experiments sweep `D` while
//! hypercubes and Erdős–Rényi graphs exercise irregular structure.

use crate::graph::Graph;
use ftgcs_sim::rng::SimRng;

/// A path (line) of `n ≥ 1` vertices; diameter `n − 1`.
///
/// # Examples
///
/// ```
/// use ftgcs_topology::generators::line;
/// let g = line(5);
/// assert_eq!(g.edge_count(), 4);
/// ```
#[must_use]
pub fn line(n: usize) -> Graph {
    assert!(n >= 1, "line needs at least one vertex");
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// A cycle of `n ≥ 3` vertices; diameter `⌊n/2⌋`.
#[must_use]
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least three vertices");
    let mut g = line(n);
    g.add_edge(n - 1, 0);
    g
}

/// A star: vertex 0 adjacent to all others; diameter 2 (for `n ≥ 3`).
#[must_use]
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least two vertices");
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(0, i);
    }
    g
}

/// The complete graph `K_n`; diameter 1 (for `n ≥ 2`).
#[must_use]
pub fn complete(n: usize) -> Graph {
    assert!(n >= 1, "complete graph needs at least one vertex");
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b);
        }
    }
    g
}

/// A `rows × cols` grid; diameter `rows + cols − 2`.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// A `rows × cols` torus (grid with wraparound); requires both dimensions
/// ≥ 3 so no duplicate edges arise.
#[must_use]
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs dimensions >= 3");
    let mut g = grid(rows, cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        g.add_edge(id(r, cols - 1), id(r, 0));
    }
    for c in 0..cols {
        g.add_edge(id(rows - 1, c), id(0, c));
    }
    g
}

/// The `dim`-dimensional hypercube (`2^dim` vertices, diameter `dim`).
#[must_use]
pub fn hypercube(dim: u32) -> Graph {
    assert!(dim >= 1, "hypercube needs dimension >= 1");
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for v in 0..n {
        for b in 0..dim {
            let w = v ^ (1 << b);
            if v < w {
                g.add_edge(v, w);
            }
        }
    }
    g
}

/// A complete `arity`-ary tree with `depth` levels of edges
/// (`depth = 0` is a single root).
#[must_use]
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity >= 1, "tree arity must be >= 1");
    // Total vertices: 1 + arity + arity^2 + ... + arity^depth.
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        n += level;
    }
    let mut g = Graph::new(n);
    // Children of vertex v (0-indexed, BFS order): arity*v+1 ... arity*v+arity.
    for v in 0..n {
        for c in 1..=arity {
            let w = arity * v + c;
            if w < n {
                g.add_edge(v, w);
            }
        }
    }
    g
}

/// A connected Erdős–Rényi graph `G(n, p)`: edges sampled independently,
/// retried (with fresh randomness) until the sample is connected.
///
/// # Panics
///
/// Panics if `n == 0`, `p` is not in `[0, 1]`, or no connected sample is
/// found within 1000 attempts (i.e. `p` is far below the connectivity
/// threshold).
#[must_use]
pub fn erdos_renyi(n: usize, p: f64, rng: &mut SimRng) -> Graph {
    assert!(n >= 1, "G(n,p) needs at least one vertex");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    for _ in 0..1000 {
        let mut g = Graph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.chance(p) {
                    g.add_edge(a, b);
                }
            }
        }
        if crate::analysis::is_connected(&g) {
            return g;
        }
    }
    panic!("no connected G({n}, {p}) sample in 1000 attempts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{diameter, is_connected};

    #[test]
    fn line_shape() {
        let g = line(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(diameter(&g), 5);
        assert!(g.is_consistent());
        assert_eq!(line(1).edge_count(), 0);
    }

    #[test]
    fn ring_shape() {
        let g = ring(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(diameter(&g), 4);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 6);
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(diameter(&g), 1);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn grid_and_torus_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(diameter(&g), 5);
        let t = torus(3, 4);
        assert_eq!(t.edge_count(), 2 * 12);
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        assert!(t.is_consistent());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(diameter(&g), 4);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(diameter(&g), 6);
        assert!(is_connected(&g));
        let root_only = balanced_tree(3, 0);
        assert_eq!(root_only.node_count(), 1);
    }

    #[test]
    fn erdos_renyi_connected() {
        let mut rng = ftgcs_sim::rng::SimRng::seed_from(1);
        let g = erdos_renyi(20, 0.3, &mut rng);
        assert!(is_connected(&g));
        assert!(g.is_consistent());
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let mut rng = ftgcs_sim::rng::SimRng::seed_from(1);
        let g = erdos_renyi(6, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 15);
    }
}
