//! Simple undirected graphs.
//!
//! [`Graph`] is the abstract network `G = (C, E)` of the paper: the graph
//! whose nodes become *clusters* after augmentation. It is a plain
//! adjacency-list structure with validation, suitable for the small-to-
//! medium graphs clock-synchronization experiments use.

use std::collections::BTreeSet;
use std::fmt;

/// An undirected simple graph with dense vertex ids `0..n`.
///
/// # Examples
///
/// ```
/// use ftgcs_topology::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(0, 1) && !g.has_edge(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adjacency: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of vertices.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds an undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        let n = self.node_count();
        assert!(a < n && b < n, "edge endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(!self.has_edge(a, b), "duplicate edge {a}-{b}");
        self.adjacency[a].push(b);
        self.adjacency[b].push(a);
        self.edge_count += 1;
    }

    /// Returns whether `{a, b}` is an edge.
    #[must_use]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.node_count() && self.adjacency[a].contains(&b)
    }

    /// Neighbors of `v`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Degree of `v`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Iterates over all edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.node_count()
    }

    /// Maximum degree, or 0 for the empty graph.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks structural invariants (symmetric adjacency, no loops, no
    /// duplicates). Intended for tests and debug assertions.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let mut count = 0;
        for (a, nbrs) in self.adjacency.iter().enumerate() {
            let set: BTreeSet<_> = nbrs.iter().copied().collect();
            if set.len() != nbrs.len() || set.contains(&a) {
                return false;
            }
            for &b in nbrs {
                if b >= self.node_count() || !self.adjacency[b].contains(&a) {
                    return false;
                }
                if a < b {
                    count += 1;
                }
            }
        }
        count == self.edge_count
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(3, 0));
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 2));
        assert!(g.is_consistent());
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
        assert_eq!(g.nodes().count(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_consistent());
        assert!(!format!("{g:?}").is_empty());
    }
}
