//! Graph analysis: BFS distances, diameter, connectivity.
//!
//! The paper's skew bounds are stated in terms of the hop diameter `D` of
//! the cluster graph `G`; these routines compute it for experiment sweeps
//! and for predicted-bound curves.

use crate::graph::Graph;
use std::collections::VecDeque;

/// BFS hop distances from `source`; unreachable vertices get `usize::MAX`.
///
/// # Examples
///
/// ```
/// use ftgcs_topology::{generators::line, analysis::bfs_distances};
///
/// let g = line(4);
/// assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    assert!(source < g.node_count(), "source out of range");
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Returns whether the graph is connected (the empty graph counts as
/// connected).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != usize::MAX)
}

/// Eccentricity of `v`: the greatest hop distance from `v` to any vertex.
///
/// # Panics
///
/// Panics if the graph is disconnected or empty.
#[must_use]
pub fn eccentricity(g: &Graph, v: usize) -> usize {
    let dist = bfs_distances(g, v);
    let max = dist.into_iter().max().expect("non-empty graph");
    assert_ne!(max, usize::MAX, "graph must be connected");
    max
}

/// Hop diameter `D`: the maximum eccentricity.
///
/// # Panics
///
/// Panics if the graph is disconnected or empty.
#[must_use]
pub fn diameter(g: &Graph) -> usize {
    g.nodes()
        .map(|v| eccentricity(g, v))
        .max()
        .expect("non-empty graph")
}

/// A BFS spanning tree rooted at `root`: `parent[v]` is `v`'s parent, with
/// `parent[root] = root`.
///
/// # Panics
///
/// Panics if the graph is disconnected or `root` is out of range.
#[must_use]
pub fn bfs_tree(g: &Graph, root: usize) -> Vec<usize> {
    assert!(root < g.node_count(), "root out of range");
    let mut parent = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    parent[root] = root;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if parent[w] == usize::MAX {
                parent[w] = v;
                queue.push_back(w);
            }
        }
    }
    assert!(
        parent.iter().all(|&p| p != usize::MAX),
        "graph must be connected"
    );
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, line, ring, star};

    #[test]
    fn distances_on_line() {
        let g = line(5);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&line(4)));
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert!(!is_connected(&g));
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = star(5);
        assert_eq!(eccentricity(&g, 0), 1);
        assert_eq!(eccentricity(&g, 1), 2);
        assert_eq!(diameter(&g), 2);
        assert_eq!(diameter(&ring(10)), 5);
        assert_eq!(diameter(&grid(4, 4)), 6);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn diameter_rejects_disconnected() {
        let _ = diameter(&Graph::new(2));
    }

    #[test]
    fn bfs_tree_structure() {
        let g = grid(3, 3);
        let parent = bfs_tree(&g, 0);
        assert_eq!(parent[0], 0);
        // Every non-root's parent is strictly closer to the root.
        let dist = bfs_distances(&g, 0);
        for v in 1..9 {
            assert_eq!(dist[parent[v]] + 1, dist[v]);
            assert!(g.has_edge(v, parent[v]));
        }
    }
}
