//! Regression test: the engine's hot control path — timer fires,
//! `set_multiplier` / `jump_track` re-anchoring, broadcasts — must not
//! allocate in steady state.
//!
//! Historically `reanchor` cloned the per-track timer-id `Vec` on every
//! rate change (once per node per round phase) and `broadcast` cloned
//! the adjacency list per call. Both are gone; this test proves it with
//! a counting global allocator: after a warm-up that reaches the
//! engine's high-water mark (heap capacities, slot free lists), an
//! identical steady-state window must perform (essentially) zero
//! allocations.
//!
//! The test binary has exactly one test so no concurrent test thread
//! can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
use ftgcs_sim::shard::{Partition, SchedulerKind};
use ftgcs_sim::time::{SimDuration, SimTime};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter has
// no allocator-visible side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `layout` unchanged to `System.alloc`, inheriting
    // its contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    // SAFETY: forwards `ptr`/`layout` unchanged to `System.dealloc`;
    // the caller's obligations are exactly `System`'s.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    // SAFETY: forwards all arguments unchanged to `System.realloc`,
    // inheriting its contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A round-phase caricature: every node keeps three pending timers on
/// its main track (like a ClusterSync round's pulse/compute/end), and
/// every phase timer both changes the rate (reanchor → reschedule all
/// pending timers) and broadcasts to its clique.
struct PhaseNode {
    phase: u64,
}

const PHASE: f64 = 0.05;

impl Behavior<u8> for PhaseNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
        for i in 1..=3u64 {
            ctx.set_timer_at(TrackId::MAIN, i as f64 * PHASE, TimerTag::new(1).with_b(i));
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u8>, tag: TimerTag) {
        self.phase += 1;
        // Alternate between a rate change and a value jump — both hit
        // `reanchor`, rescheduling the two still-pending timers.
        if self.phase.is_multiple_of(2) {
            let m = if self.phase.is_multiple_of(4) {
                1.01
            } else {
                1.0
            };
            ctx.set_multiplier(TrackId::MAIN, m);
        } else {
            let v = ctx.track_value(TrackId::MAIN);
            ctx.jump_track(TrackId::MAIN, v + 1e-6);
        }
        ctx.broadcast(0u8);
        // Keep exactly three timers pending.
        ctx.set_timer_at(
            TrackId::MAIN,
            tag.b as f64 * PHASE + 3.0 * PHASE,
            tag.with_b(tag.b + 3),
        );
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u8>, _: NodeId, _: &u8) {}
}

fn build(nodes: usize) -> ftgcs_sim::engine::Simulation<u8> {
    build_with(nodes, false)
}

fn build_with(nodes: usize, telemetry: bool) -> ftgcs_sim::engine::Simulation<u8> {
    let config = SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(100.0),
            DelayDistribution::Uniform,
        ),
        rho: 1e-4,
        // Constant rates: the clock's segment list never grows, so any
        // allocation the window sees is the engine's own.
        rate_model: RateModel::Constant { frac: 0.5 },
        seed: 3,
        sample_interval: None,
        scheduler: SchedulerKind::Sharded(Partition::by_blocks(nodes, 4)),
        telemetry,
    };
    let mut b = SimBuilder::new(config);
    let ids: Vec<NodeId> = (0..nodes)
        .map(|_| b.add_node(Box::new(PhaseNode { phase: 0 })))
        .collect();
    // Two cliques of 4 bridged by one edge: intra-shard fan-out plus
    // cross-shard traffic.
    for c in 0..nodes / 4 {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(ids[4 * c + i], ids[4 * c + j]);
            }
        }
    }
    for c in 1..nodes / 4 {
        b.add_edge(ids[4 * (c - 1)], ids[4 * c]);
    }
    b.build()
}

#[test]
fn steady_state_event_loop_does_not_allocate() {
    // Sanity: the counter must actually observe allocations, or the
    // assertion below would pass vacuously.
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    std::hint::black_box(Vec::<u64>::with_capacity(32));
    COUNTING.store(false, Ordering::SeqCst);
    assert!(
        ALLOCS.load(Ordering::SeqCst) >= 1,
        "counting allocator is not wired up"
    );

    let mut sim = build(8);
    // Warm-up: reach the allocation high-water mark (queue capacities,
    // timer slot pool, RNG state). 20 simulated seconds ≈ 400 phases
    // per node.
    sim.run_until(SimTime::from_secs(20.0));
    let events_before = sim.stats().events;

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    sim.run_until(SimTime::from_secs(40.0));
    COUNTING.store(false, Ordering::SeqCst);

    let window_allocs = ALLOCS.load(Ordering::SeqCst);
    let window_events = sim.stats().events - events_before;
    assert!(
        window_events > 10_000,
        "window too small to be meaningful: {window_events} events"
    );
    // The old engine allocated at least once per rate change (the
    // timer-list clone) plus once per broadcast (the adjacency clone):
    // tens of thousands of allocations in this window. Steady state
    // must be allocation-free; a sliver of slack tolerates incidental
    // harness noise without masking a per-event regression.
    assert!(
        window_allocs < 16,
        "hot path allocated {window_allocs} times over {window_events} \
         events — a per-event allocation crept back in"
    );

    // Telemetry is a fixed-size block of relaxed atomics allocated at
    // build time: with the counters *enabled*, the steady-state window
    // must still be allocation-free — the side channel may never put a
    // per-event allocation on the hot path.
    let mut sim = build_with(8, true);
    sim.run_until(SimTime::from_secs(20.0));
    let events_before = sim.stats().events;

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    sim.run_until(SimTime::from_secs(40.0));
    COUNTING.store(false, Ordering::SeqCst);

    let window_allocs = ALLOCS.load(Ordering::SeqCst);
    let window_events = sim.stats().events - events_before;
    assert!(
        window_events > 10_000,
        "telemetry window too small to be meaningful: {window_events} events"
    );
    assert!(
        window_allocs < 16,
        "telemetry-enabled hot path allocated {window_allocs} times over \
         {window_events} events — the side channel must not allocate per event"
    );
}
