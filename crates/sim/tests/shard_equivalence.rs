//! Differential test: the sharded **and parallel** schedulers are
//! **byte-identical** to the global heap.
//!
//! For a matrix of seeds × topologies (clique, line, NoC grid,
//! adversarial hub) the same workload runs once per scheduler — the
//! 1-shard global heap, an even split, a one-shard-per-cluster split, a
//! ragged split, and the parallel executor across several worker
//! counts — and every run must produce the same trace byte-for-byte
//! and the same work counters. This extends the determinism tests
//! (`tests/determinism.rs`): determinism pins a run to its
//! `(seed, config)`; this test pins it across *schedulers and thread
//! counts*, the invariant that makes deep engine refactors safe to
//! land.
//!
//! All axes funnel through one [`assert_equivalent`] helper: strict
//! in-order runs append rows at dispatch, relaxed-ordering (parallel)
//! runs merge their per-shard buffers back into `(time, key)` order
//! before the trace is observable — so a single merge-then-compare
//! byte-identity assertion covers both modes.

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig, SimStats, Simulation};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerId, TimerTag, TrackId};
use ftgcs_sim::shard::{Partition, SchedulerKind};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_sim::trace::Trace;

/// A workload that exercises every engine feature the schedulers must
/// agree on: timers, cancellations, rate changes, track jumps,
/// broadcasts with loopback, per-node RNG, and trace rows.
struct Churn {
    pending: Option<TimerId>,
    beats: u64,
}

impl Behavior<u64> for Churn {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer_at(TrackId::MAIN, 0.01, TimerTag::new(0));
        // A decoy timer that is immediately cancelled — cancellation
        // bookkeeping must not differ between schedulers.
        let decoy = ctx.set_timer_at(TrackId::MAIN, 0.5, TimerTag::new(9));
        ctx.cancel_timer(decoy);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: TimerTag) {
        self.beats += 1;
        let token = ctx.rng().next_u64();
        if self.beats.is_multiple_of(3) {
            ctx.broadcast_with_loopback(token);
        } else {
            ctx.broadcast(token);
        }
        // Wiggle the rate so timers get rescheduled (generation churn).
        let wiggle = 1.0 + 1e-3 * ctx.rng().uniform(0.0, 1.0);
        ctx.set_multiplier(TrackId::MAIN, wiggle);
        if self.beats.is_multiple_of(7) {
            let v = ctx.track_value(TrackId::MAIN);
            ctx.jump_track(TrackId::MAIN, v + 1e-4);
        }
        // Replace the pending far timer: set-then-cancel across rounds.
        if let Some(t) = self.pending.take() {
            ctx.cancel_timer(t);
        }
        let next = ctx.track_value(TrackId::MAIN) + 0.01;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
        self.pending = Some(ctx.set_timer_at(TrackId::MAIN, next + 5.0, TimerTag::new(1)));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: &u64) {
        ctx.emit("churn", vec![from.index() as f64, (*msg % 4096) as f64]);
    }
}

/// Edge lists for the four topology families, over `n` nodes.
fn edges(topology: &str, n: usize) -> Vec<(usize, usize)> {
    match topology {
        "clique" => {
            let mut e = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    e.push((i, j));
                }
            }
            e
        }
        "line" => (0..n - 1).map(|i| (i, i + 1)).collect(),
        // 4-wide NoC mesh: node (r, c) = r*4 + c, links right and down.
        "grid" => {
            let w = 4;
            let h = n / w;
            let mut e = Vec::new();
            for r in 0..h {
                for c in 0..w {
                    let v = r * w + c;
                    if c + 1 < w {
                        e.push((v, v + 1));
                    }
                    if r + 1 < h {
                        e.push((v, v + w));
                    }
                }
            }
            e
        }
        // Adversarial: a hub-and-spoke star (worst case for per-shard
        // balance — the hub's shard serializes) with a chord ring so
        // spokes also talk to each other.
        "hub" => {
            let mut e: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
            for i in 1..n {
                let j = if i + 1 < n { i + 1 } else { 1 };
                if i != j {
                    e.push((i.min(j), i.max(j)));
                }
            }
            e.sort_unstable();
            e.dedup();
            e
        }
        other => unreachable!("unknown topology {other}"),
    }
}

fn config(seed: u64, scheduler: SchedulerKind, adversarial: bool) -> SimConfig {
    SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(300.0),
            if adversarial {
                // Direction-dependent extremal delays: the classic
                // schedule for maximizing perceived offsets.
                DelayDistribution::AsymmetricById
            } else {
                DelayDistribution::Uniform
            },
        ),
        rho: 1e-4,
        rate_model: RateModel::RandomWalk {
            dwell: 0.2,
            step: 0.5,
        },
        seed,
        sample_interval: Some(SimDuration::from_millis(100.0)),
        scheduler,
        telemetry: false,
    }
}

fn run(topology: &str, n: usize, seed: u64, scheduler: SchedulerKind) -> (Trace, SimStats) {
    let adversarial = topology == "hub";
    let mut builder = SimBuilder::new(config(seed, scheduler, adversarial));
    let ids: Vec<NodeId> = (0..n)
        .map(|_| {
            builder.add_node(Box::new(Churn {
                pending: None,
                beats: 0,
            }))
        })
        .collect();
    for (a, b) in edges(topology, n) {
        builder.add_edge(ids[a], ids[b]);
    }
    let mut sim: Simulation<u64> = builder.build();
    sim.run_until(SimTime::from_secs(1.0));
    let stats = sim.stats();
    (sim.into_trace(), stats)
}

/// The partitions each cell is checked under, besides the global heap.
fn partitions(n: usize) -> Vec<(&'static str, Partition)> {
    let ragged: Vec<usize> = (0..n)
        .map(|i| if i == 0 { 0 } else { 1 + (i - 1) % 3 })
        .collect();
    vec![
        ("halves", Partition::by_blocks(n, n.div_ceil(2))),
        ("quads", Partition::by_blocks(n, n.div_ceil(4))),
        ("per-node", Partition::by_blocks(n, 1)),
        ("ragged", Partition::from_assignment(ragged)),
    ]
}

/// The parallel-executor axis: partition × worker-count pairs, zipped
/// to keep the matrix affordable while covering even, fine, ragged, and
/// auto (`0` = `FTGCS_WORKERS` / available parallelism) configurations.
fn parallel_axes(n: usize) -> Vec<(String, SchedulerKind)> {
    let mut axes = Vec::new();
    for ((name, partition), workers) in partitions(n).into_iter().zip([1usize, 2, 4, 0]) {
        axes.push((
            format!("parallel/{name}/w{workers}"),
            SchedulerKind::Parallel { partition, workers },
        ));
    }
    axes
}

/// The single comparison point for every scheduler axis (strict *and*
/// relaxed trace ordering): same work counters, byte-identical merged
/// trace.
fn assert_equivalent(label: &str, reference: &(Trace, SimStats), candidate: &(Trace, SimStats)) {
    assert_eq!(candidate.1, reference.1, "{label}: work counters diverged");
    assert!(
        candidate.0.byte_identical(&reference.0),
        "{label}: trace diverged from the global heap"
    );
}

#[test]
fn sharded_and_global_schedulers_are_byte_identical() {
    let n = 16;
    for topology in ["clique", "line", "grid", "hub"] {
        for seed in [1u64, 42, 1729] {
            let reference = run(topology, n, seed, SchedulerKind::Global);
            assert!(
                !reference.0.rows.is_empty() && !reference.0.samples.is_empty(),
                "{topology}/seed {seed}: reference trace must be non-trivial"
            );
            for (name, partition) in partitions(n) {
                let candidate = run(topology, n, seed, SchedulerKind::Sharded(partition));
                assert_equivalent(
                    &format!("{topology}/seed {seed}/{name}"),
                    &reference,
                    &candidate,
                );
            }
        }
    }
}

#[test]
fn parallel_executor_is_byte_identical_on_every_worker_count() {
    let n = 16;
    for topology in ["clique", "line", "grid", "hub"] {
        for seed in [1u64, 42] {
            let reference = run(topology, n, seed, SchedulerKind::Global);
            for (name, scheduler) in parallel_axes(n) {
                let candidate = run(topology, n, seed, scheduler);
                assert_equivalent(
                    &format!("{topology}/seed {seed}/{name}"),
                    &reference,
                    &candidate,
                );
            }
        }
    }
}

#[test]
fn parallel_executor_is_stable_across_repeated_runs() {
    // Scheduling races are flaky by nature: one green run proves little.
    // Re-run the same seed 20× while cycling the thread count and demand
    // the identical final trace every time — a loom-free stress test of
    // the barrier protocol.
    let reference = run("grid", 16, 7, SchedulerKind::Global);
    for rep in 0..20u32 {
        let workers = [1usize, 2, 4][rep as usize % 3];
        let candidate = run(
            "grid",
            16,
            7,
            SchedulerKind::Parallel {
                partition: Partition::by_blocks(16, 4),
                workers,
            },
        );
        assert_equivalent(
            &format!("stress rep {rep} (w{workers})"),
            &reference,
            &candidate,
        );
    }
}

#[test]
fn mid_run_reconfiguration_stays_equivalent() {
    // Delay-distribution and sampling-interval switches mid-run mutate
    // engine state outside any node callback; the schedulers must still
    // agree afterwards.
    let drive = |scheduler: SchedulerKind| {
        let mut builder = SimBuilder::new(config(7, scheduler, false));
        let ids: Vec<NodeId> = (0..8)
            .map(|_| {
                builder.add_node(Box::new(Churn {
                    pending: None,
                    beats: 0,
                }))
            })
            .collect();
        for (a, b) in edges("clique", 8) {
            builder.add_edge(ids[a], ids[b]);
        }
        let mut sim: Simulation<u64> = builder.build();
        sim.run_until(SimTime::from_secs(0.3));
        sim.set_delay_distribution(DelayDistribution::Minimal);
        sim.set_sample_interval(Some(SimDuration::from_millis(10.0)));
        sim.run_until(SimTime::from_secs(0.6));
        sim.set_delay_distribution(DelayDistribution::Maximal);
        sim.run_until(SimTime::from_secs(1.0));
        let stats = sim.stats();
        (sim.into_trace().to_bytes(), stats)
    };
    let (global, gs) = drive(SchedulerKind::Global);
    let (sharded, ss) = drive(SchedulerKind::Sharded(Partition::by_blocks(8, 2)));
    assert_eq!(gs, ss);
    assert_eq!(global, sharded, "mid-run reconfiguration broke equivalence");
    for workers in [1usize, 2] {
        let (parallel, ps) = drive(SchedulerKind::Parallel {
            partition: Partition::by_blocks(8, 2),
            workers,
        });
        assert_eq!(gs, ps, "w{workers}: work counters diverged");
        assert_eq!(
            global, parallel,
            "mid-run reconfiguration broke the parallel executor (w{workers})"
        );
    }
}
