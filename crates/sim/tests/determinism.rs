//! Regression test for the `ftgcs_sim::rng` pure-function contract: a
//! simulation run is a pure function of `(seed, SimConfig)`, so two runs
//! with identical inputs must produce **byte-identical** traces — same
//! clock samples, same rows, in the same order.

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig, Simulation};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_sim::trace::Trace;

/// Every logical second, broadcast a random token and jitter the clock
/// rate; record every received message. Exercises all the randomness in
/// the substrate: message delays, hardware drift, and per-node RNG.
struct Gossip;

impl Behavior<u64> for Gossip {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(0));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: TimerTag) {
        let token = ctx.rng().next_u64();
        ctx.broadcast(token);
        let wiggle = 1.0 + 1e-3 * ctx.rng().uniform(0.0, 1.0);
        ctx.set_multiplier(TrackId::MAIN, wiggle);
        let next = ctx.track_value(TrackId::MAIN) + 1.0;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: &u64) {
        ctx.emit("gossip", vec![from.index() as f64, (*msg % 4096) as f64]);
    }
}

fn config(seed: u64) -> SimConfig {
    SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(100.0),
            DelayDistribution::Uniform,
        ),
        rho: 1e-4,
        rate_model: RateModel::RandomWalk {
            dwell: 0.5,
            step: 0.5,
        },
        seed,
        sample_interval: Some(SimDuration::from_millis(250.0)),
        scheduler: ftgcs_sim::shard::SchedulerKind::Global,
        telemetry: false,
    }
}

fn run(seed: u64) -> Trace {
    let mut builder = SimBuilder::new(config(seed));
    let n = 8;
    let ids: Vec<NodeId> = (0..n).map(|_| builder.add_node(Box::new(Gossip))).collect();
    for i in 0..n {
        builder.add_edge(ids[i], ids[(i + 1) % n]);
    }
    let mut sim: Simulation<u64> = builder.build();
    sim.run_until(SimTime::from_secs(20.0));
    sim.into_trace()
}

#[test]
fn identical_seed_and_config_give_byte_identical_traces() {
    let a = run(42);
    let b = run(42);
    assert!(
        !a.samples.is_empty() && !a.rows.is_empty(),
        "trace must be non-trivial for the comparison to mean anything"
    );
    assert_eq!(
        a.to_bytes(),
        b.to_bytes(),
        "same (seed, SimConfig) must reproduce the trace byte-for-byte"
    );
}

#[test]
fn different_seeds_give_different_traces() {
    let a = run(42);
    let c = run(43);
    assert_ne!(
        a.to_bytes(),
        c.to_bytes(),
        "a different seed must actually change the run, or the \
         determinism test above has no power"
    );
}
