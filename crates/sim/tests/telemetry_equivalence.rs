//! Telemetry is a pure side channel — this suite pins the three
//! guarantees `ftgcs_sim::telemetry` makes:
//!
//! 1. **Trace neutrality**: the trace and work counters of a run are
//!    byte-identical whether telemetry is enabled or disabled, on every
//!    scheduler and worker count.
//! 2. **Deterministic counters**: the report's `deterministic` block is
//!    a pure function of `(seed, config, partition)` — identical across
//!    worker counts, and (for the partition-independent fields) across
//!    schedulers.
//! 3. **Steal accounting**: every executed shard-window was either
//!    dealt or stolen, and the two shares sum to 1.
//!
//! (The fourth guarantee — zero hot-path allocations with counters
//! enabled — lives in `tests/hot_path_alloc.rs`, which owns the
//! process-wide counting allocator.)

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig, SimStats};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
use ftgcs_sim::shard::{Partition, SchedulerKind};
use ftgcs_sim::telemetry::SCHEMA;
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_sim::trace::Trace;
use ftgcs_sim::TelemetryReport;

const N: usize = 16;

/// A workload touching every counted code path: periodic timers, a
/// cancelled decoy, broadcasts (cross-shard under every partition
/// below), and trace rows.
struct Beater {
    beats: u64,
}

impl Behavior<u64> for Beater {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer_at(TrackId::MAIN, 0.01, TimerTag::new(0));
        let decoy = ctx.set_timer_at(TrackId::MAIN, 0.7, TimerTag::new(9));
        ctx.cancel_timer(decoy);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: TimerTag) {
        self.beats += 1;
        let token = ctx.rng().next_u64();
        ctx.broadcast(token);
        let next = ctx.track_value(TrackId::MAIN) + 0.01;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: &u64) {
        if msg.is_multiple_of(64) {
            ctx.emit("beat", vec![from.index() as f64]);
        }
    }
}

fn config(scheduler: SchedulerKind, telemetry: bool) -> SimConfig {
    SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(200.0),
            DelayDistribution::Uniform,
        ),
        rho: 1e-4,
        rate_model: RateModel::RandomConstant,
        seed: 11,
        sample_interval: Some(SimDuration::from_millis(50.0)),
        scheduler,
        telemetry,
    }
}

fn run(scheduler: SchedulerKind, telemetry: bool) -> (Trace, SimStats, TelemetryReport) {
    let mut builder = SimBuilder::new(config(scheduler, telemetry));
    let ids: Vec<NodeId> = (0..N)
        .map(|_| builder.add_node(Box::new(Beater { beats: 0 })))
        .collect();
    // Ring plus cross chords: every 4-node block talks to the next, so
    // the 4-block partition always has cross-shard traffic.
    for i in 0..N {
        builder.add_edge(ids[i], ids[(i + 1) % N]);
        builder.add_edge(ids[i], ids[(i + 5) % N]);
    }
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(1.0));
    let stats = sim.stats();
    let report = sim.telemetry();
    (sim.into_trace(), stats, report)
}

fn quads() -> Partition {
    Partition::by_blocks(N, 4)
}

/// Every scheduler axis the neutrality claim is checked on.
fn axes() -> Vec<(String, SchedulerKind)> {
    let mut axes = vec![
        ("global".to_string(), SchedulerKind::Global),
        ("sharded/quads".to_string(), SchedulerKind::Sharded(quads())),
    ];
    for workers in [1usize, 2, 4, 0] {
        axes.push((
            format!("parallel/quads/w{workers}"),
            SchedulerKind::Parallel {
                partition: quads(),
                workers,
            },
        ));
    }
    axes
}

#[test]
fn enabling_telemetry_leaves_every_trace_byte_identical() {
    for (label, scheduler) in axes() {
        let off = run(scheduler.clone(), false);
        let on = run(scheduler, true);
        assert_eq!(
            on.1, off.1,
            "{label}: work counters changed under telemetry"
        );
        assert!(
            on.0.byte_identical(&off.0),
            "{label}: trace changed under telemetry"
        );
        assert!(!off.2.enabled, "{label}: report must mark telemetry off");
        assert!(on.2.enabled, "{label}: report must mark telemetry on");
        assert!(
            !off.0.rows.is_empty() && !off.0.samples.is_empty(),
            "{label}: comparison is vacuous on an empty trace"
        );
    }
}

#[test]
fn deterministic_counters_are_identical_across_schedulers_and_workers() {
    let reference = run(SchedulerKind::Global, true).2;
    assert_eq!(
        reference.deterministic.events,
        reference.per_shard.iter().map(|s| s.events).sum::<u64>() + reference.deterministic.samples,
        "per-shard events + samples must roll up to the total"
    );

    let mut parallel_reports = Vec::new();
    for (label, scheduler) in axes().into_iter().skip(1) {
        let report = run(scheduler, true).2;
        // Partition-independent counters match the global heap exactly.
        assert_eq!(
            report.deterministic.events, reference.deterministic.events,
            "{label}: events diverged"
        );
        assert_eq!(
            report.deterministic.samples, reference.deterministic.samples,
            "{label}: samples diverged"
        );
        assert_eq!(
            report.deterministic.timers_set, reference.deterministic.timers_set,
            "{label}: timers_set diverged"
        );
        assert_eq!(
            report.deterministic.timers_fired, reference.deterministic.timers_fired,
            "{label}: timers_fired diverged"
        );
        assert_eq!(
            report.deterministic.timers_cancelled, reference.deterministic.timers_cancelled,
            "{label}: timers_cancelled diverged"
        );
        assert_eq!(
            report.deterministic.messages_delivered, reference.deterministic.messages_delivered,
            "{label}: messages_delivered diverged"
        );
        if label.starts_with("parallel") {
            parallel_reports.push((label, report));
        }
    }

    // The full deterministic block — including windows, planned
    // shard-windows, horizon span, and cross-shard staging — is
    // identical across every worker count of the same partition.
    let (first_label, first) = &parallel_reports[0];
    assert!(
        first.deterministic.cross_shard_staged > 0,
        "{first_label}: workload must stage cross-shard messages"
    );
    assert!(
        first.deterministic.windows > 0 && first.deterministic.planned_shard_windows > 0,
        "{first_label}: parallel run must plan windows"
    );
    assert!(
        first.deterministic.horizon_span_secs > 0.0,
        "{first_label}: planned windows must grant horizon"
    );
    for (label, report) in &parallel_reports[1..] {
        assert_eq!(
            report.deterministic, first.deterministic,
            "{label}: deterministic block diverged from {first_label}"
        );
    }
}

#[test]
fn every_shard_window_is_dealt_or_stolen_and_shares_sum_to_one() {
    for workers in [1usize, 2, 4, 0] {
        let label = format!("parallel/quads/w{workers}");
        let report = run(
            SchedulerKind::Parallel {
                partition: quads(),
                workers,
            },
            true,
        )
        .2;
        let d = &report.diagnostics;
        let executed: u64 = report.per_shard.iter().map(|s| s.windows).sum();
        assert!(executed > 0, "{label}: no shard-windows executed");
        assert_eq!(
            d.shards_dealt + d.shards_stolen,
            executed,
            "{label}: dealt + stolen must account for every executed shard-window"
        );
        assert!(
            (d.dealt_share + d.stolen_share - 1.0).abs() < 1e-9,
            "{label}: shares must sum to 1, got {} + {}",
            d.dealt_share,
            d.stolen_share
        );
        let per_worker_dealt: u64 = d.per_worker.iter().map(|w| w.dealt).sum();
        let per_worker_stolen: u64 = d.per_worker.iter().map(|w| w.stolen).sum();
        assert_eq!(
            (per_worker_dealt, per_worker_stolen),
            (d.shards_dealt, d.shards_stolen),
            "{label}: per-worker claims must roll up to the totals"
        );
    }
}

#[test]
fn report_json_is_stable_and_machine_readable() {
    let report = run(
        SchedulerKind::Parallel {
            partition: quads(),
            workers: 2,
        },
        true,
    )
    .2;
    let json = report.to_json();
    let schema_key = format!("\"schema\": \"{SCHEMA}\"");
    for key in [
        schema_key.as_str(),
        "\"scheduler\": \"parallel\"",
        "\"deterministic\"",
        "\"per_shard\"",
        "\"diagnostics\"",
        "\"per_worker\"",
        "\"wall\"",
        "\"events_per_sec\"",
        "\"alloc\"",
    ] {
        assert!(json.contains(key), "JSON lost key {key}:\n{json}");
    }
}
