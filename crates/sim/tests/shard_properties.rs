//! Property tests for the sharded scheduler and the timer machinery.
//!
//! Three invariants, each fuzzed over generated inputs:
//!
//! 1. **Shard order** — events pop in globally nondecreasing time order,
//!    hence also nondecreasing within every shard, under arbitrary
//!    push/pop interleavings that never push into the past.
//! 2. **Lookahead floor & dispatch order** — under sharded scheduling
//!    with cross-shard traffic, deliveries happen in nondecreasing
//!    global time order (the scheduler invariant: no shard outruns an
//!    earlier event pending elsewhere), and every latency lies in
//!    `[d − U, d]` end to end (the delay model survives the staged
//!    fan-out path).
//! 3. **Timer invalidation** — a cancelled timer never fires, and no
//!    timer double-fires, however many generation-bumping rate changes
//!    and track jumps interleave with the cancellations.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerId, TimerTag, TrackId};
use ftgcs_sim::shard::{Partition, SchedulerKind, ShardQueue};
use ftgcs_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Property 1: pop order.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn events_pop_in_nondecreasing_time_order_per_shard(
        assignment in prop::collection::vec(0usize..5, 1..24),
        ops in prop::collection::vec((0u8..4, 0usize..24, 1u32..500), 1..200),
    ) {
        let nodes = assignment.len();
        let partition = Partition::from_assignment(assignment.clone());
        let mut q = ShardQueue::new(&partition);
        // `now` advances with pops; pushes are always scheduled at or
        // after `now`, mirroring how the engine uses the queue.
        let mut now = SimTime::ZERO;
        let mut pushed = 0usize;
        let mut popped: Vec<(usize, SimTime)> = Vec::new();
        for (action, node, dt_ms) in ops {
            let node = node % nodes;
            if action < 3 {
                let t = now + SimDuration::from_millis(f64::from(dt_ms));
                q.push_for(NodeId(node), t, node);
                pushed += 1;
            } else if let Some((t, payload)) =
                q.pop_before(SimTime::from_secs(f64::MAX / 2.0))
            {
                prop_assert!(t >= now, "pop went back in time: {t} < {now}");
                now = t;
                popped.push((assignment[payload], t));
            }
        }
        // Drain the rest.
        while let Some((t, payload)) = q.pop_before(SimTime::from_secs(f64::MAX / 2.0)) {
            prop_assert!(t >= now, "drain went back in time");
            now = t;
            popped.push((assignment[payload], t));
        }
        // Nothing lost or duplicated.
        prop_assert_eq!(popped.len(), pushed);
        // Global nondecreasing order implies per-shard nondecreasing
        // order; check the per-shard claim explicitly anyway.
        for shard in 0..partition.shard_count() {
            let times: Vec<SimTime> = popped
                .iter()
                .filter(|&&(s, _)| s == shard)
                .map(|&(_, t)| t)
                .collect();
            prop_assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "shard {shard} popped out of order"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property 2: lookahead floor.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct DeliveryLog {
    /// `(from, to, send_time, delivery_time)` per delivery.
    deliveries: Vec<(usize, usize, f64, f64)>,
}

/// Broadcasts its current Newtonian time on a fixed cadence; receivers
/// log the send → delivery latency. (Reading Newtonian time in a
/// behavior is the omniscient-observer convention used by trace
/// recorders; here it measures the network itself.)
struct Beacon {
    log: Arc<Mutex<DeliveryLog>>,
}

impl Behavior<f64> for Beacon {
    fn on_start(&mut self, ctx: &mut Ctx<'_, f64>) {
        ctx.set_timer_at(TrackId::MAIN, 0.01, TimerTag::new(0));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, f64>, _tag: TimerTag) {
        let now = ctx.newtonian_now().as_secs();
        ctx.broadcast(now);
        let next = ctx.track_value(TrackId::MAIN) + 0.05;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, f64>, from: NodeId, msg: &f64) {
        self.log.lock().unwrap().deliveries.push((
            from.index(),
            ctx.my_id().index(),
            *msg,
            ctx.newtonian_now().as_secs(),
        ));
    }
}

proptest! {
    #[test]
    fn no_message_beats_the_lookahead_horizon(
        seed in 0u64..1_000_000,
        nodes in 4usize..12,
        block in 1usize..5,
        dist in 0u8..3,
    ) {
        // The cross-shard assertion at the bottom needs a genuinely
        // partitioned network; discard 1-shard cases before paying for
        // the simulation.
        prop_assume!(block < nodes);
        let d = 1e-3;
        let u = 4e-4;
        let distribution = match dist {
            0 => DelayDistribution::Uniform,
            1 => DelayDistribution::AsymmetricById,
            _ => DelayDistribution::AlternatingByDst,
        };
        let partition = Partition::by_blocks(nodes, block);
        let config = SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_secs(d),
                SimDuration::from_secs(u),
                distribution,
            ),
            rho: 1e-4,
            rate_model: RateModel::RandomConstant,
            seed,
            sample_interval: None,
            scheduler: SchedulerKind::Sharded(partition.clone()),
            telemetry: false,
        };
        let log = Arc::new(Mutex::new(DeliveryLog::default()));
        let mut b = SimBuilder::new(config);
        let ids: Vec<NodeId> = (0..nodes)
            .map(|_| b.add_node(Box::new(Beacon { log: Arc::clone(&log) })))
            .collect();
        // Ring plus one long chord: guarantees cross-shard edges for
        // every block size > 0.
        for i in 0..nodes {
            b.add_edge(ids[i], ids[(i + 1) % nodes]);
        }
        if nodes > 4 {
            b.add_edge(ids[0], ids[nodes / 2]);
        }
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(0.5));
        let log = log.lock().unwrap();
        prop_assert!(!log.deliveries.is_empty(), "workload delivered nothing");
        let mut cross_shard = 0usize;
        // Deliveries are logged in dispatch order; a scheduler that let
        // one shard outrun an earlier event pending in another shard
        // would produce a decreasing delivery timestamp here.
        let mut last_dispatch = f64::NEG_INFINITY;
        for &(from, to, sent, delivered) in &log.deliveries {
            prop_assert!(
                delivered >= last_dispatch,
                "dispatch went backwards: {from}->{to} delivered at \
                 {delivered:.9} after an event at {last_dispatch:.9}"
            );
            last_dispatch = delivered;
            let latency = delivered - sent;
            prop_assert!(
                latency >= d - u - 1e-12,
                "message {from}->{to} beat the lookahead floor: \
                 latency {latency:.9} < d-U {:.9}",
                d - u
            );
            prop_assert!(
                latency <= d + 1e-12,
                "message {from}->{to} exceeded the delay bound: {latency:.9}"
            );
            if partition.shard_of(NodeId(from)) != partition.shard_of(NodeId(to)) {
                cross_shard += 1;
            }
        }
        // The property is about cross-shard traffic: make sure the
        // generated topology actually produced some.
        prop_assert!(cross_shard > 0, "no cross-shard messages exercised");
    }
}

// ---------------------------------------------------------------------
// Property 3: timer invalidation.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct TimerLog {
    fired: Vec<u64>,
    cancelled: BTreeSet<u64>,
    /// Tokens issued so far (dense `0..next_token`).
    next_token: u64,
    /// Tokens issued but neither fired nor cancelled yet.
    still_pending: BTreeSet<u64>,
}

/// Executes a generated script of timer ops on a tick cadence, logging
/// which data-timer tokens fire and which were cancelled first.
struct Scripted {
    ops: Vec<(u8, f64)>,
    next_op: usize,
    next_token: u64,
    /// Live handles: `(token, id)`; entries move to `retired` on fire.
    pending: Vec<(u64, TimerId)>,
    /// Handles of already-fired timers. Cancelling one is a stale
    /// cancel — the epoch in [`TimerId`] must make it a no-op even
    /// when the engine has reused the slot for a later timer.
    retired: Vec<(u64, TimerId)>,
    log: Arc<Mutex<TimerLog>>,
}

const TICK: f64 = 0.05;

impl Behavior<()> for Scripted {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.set_timer_at(TrackId::MAIN, TICK, TimerTag::new(0));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
        if tag.kind == 1 {
            let mut log = self.log.lock().unwrap();
            log.fired.push(tag.b);
            log.still_pending.remove(&tag.b);
            drop(log);
            if let Some(pos) = self.pending.iter().position(|&(token, _)| token == tag.b) {
                self.retired.push(self.pending.swap_remove(pos));
            }
            return;
        }
        // Tick: run the next scripted op, then re-arm the tick.
        if let Some(&(op, value)) = self.ops.get(self.next_op) {
            self.next_op += 1;
            match op % 4 {
                0 => {
                    let token = self.next_token;
                    self.next_token += 1;
                    let target = ctx.track_value(TrackId::MAIN) + value * 4.0 * TICK;
                    let id =
                        ctx.set_timer_at(TrackId::MAIN, target, TimerTag::new(1).with_b(token));
                    self.pending.push((token, id));
                    let mut log = self.log.lock().unwrap();
                    log.next_token = self.next_token;
                    log.still_pending.insert(token);
                }
                1 => {
                    // Half the cancels target live timers (recorded as
                    // cancelled), half replay a stale handle of an
                    // already-fired timer (must be a no-op).
                    if value < 0.5 {
                        if !self.pending.is_empty() {
                            let idx = (value * 2.0 * self.pending.len() as f64) as usize
                                % self.pending.len();
                            let (token, id) = self.pending.swap_remove(idx);
                            ctx.cancel_timer(id);
                            let mut log = self.log.lock().unwrap();
                            log.cancelled.insert(token);
                            log.still_pending.remove(&token);
                        }
                    } else if !self.retired.is_empty() {
                        let idx = ((value - 0.5) * 2.0 * self.retired.len() as f64) as usize
                            % self.retired.len();
                        let (_, stale) = self.retired[idx];
                        ctx.cancel_timer(stale);
                    }
                }
                2 => ctx.set_multiplier(TrackId::MAIN, 1.0 + value),
                _ => {
                    let v = ctx.track_value(TrackId::MAIN);
                    ctx.jump_track(TrackId::MAIN, v + value * TICK);
                }
            }
        }
        let next = ctx.track_value(TrackId::MAIN) + TICK;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
    }

    fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
}

proptest! {
    #[test]
    fn cancelled_timers_never_fire_despite_generation_churn(
        ops in prop::collection::vec((0u8..4, 0.0f64..1.0), 1..48),
    ) {
        let horizon = 4.0 * TICK * (ops.len() as f64 + 4.0);
        let log = Arc::new(Mutex::new(TimerLog::default()));
        let config = SimConfig {
            rho: 1e-4,
            seed: 13,
            ..SimConfig::default()
        };
        let mut b = SimBuilder::new(config);
        b.add_node(Box::new(Scripted {
            ops,
            next_op: 0,
            next_token: 0,
            pending: Vec::new(),
            retired: Vec::new(),
            log: Arc::clone(&log),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(horizon));
        let log = log.lock().unwrap();
        for token in &log.fired {
            prop_assert!(
                !log.cancelled.contains(token),
                "cancelled timer {token} fired anyway"
            );
        }
        let mut seen = BTreeSet::new();
        for token in &log.fired {
            prop_assert!(
                seen.insert(*token),
                "timer {token} fired more than once (stale generation \
                 entry dispatched)"
            );
        }
        // Stale cancels must not have killed later timers: every token
        // that was neither cancelled nor still pending at the horizon
        // fired exactly once. (`seen` already proves "at most once".)
        let issued: BTreeSet<u64> = (0..log.next_token).collect();
        for token in issued {
            prop_assert!(
                seen.contains(&token)
                    || log.cancelled.contains(&token)
                    || log.still_pending.contains(&token),
                "timer {token} vanished: not fired, not cancelled, not \
                 pending (a stale cancel killed a reused slot?)"
            );
        }
    }
}
