//! Streaming-observer ⇄ materialized-trace equivalence.
//!
//! The observer redesign must not change a single byte of recorded
//! output: for every scheduler kind (global heap, sharded, parallel on
//! several worker counts), streaming the run through a
//! collect-everything observer must reproduce the materialized
//! [`Trace`] exactly, and stepping the simulation in fine increments
//! must match the one-shot run byte-for-byte (the persistent worker
//! pool must be invisible to results).

use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig, Simulation};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
use ftgcs_sim::observe::{Fanout, Observer};
use ftgcs_sim::shard::{Partition, SchedulerKind};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_sim::trace::Trace;

const NODES: usize = 8;
const HORIZON: f64 = 0.6;

/// A churn workload that exercises timers, broadcasts, rows, and RNG.
struct Churn;

impl Behavior<u32> for Churn {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.set_timer_at(TrackId::MAIN, 0.004, TimerTag::new(0));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _tag: TimerTag) {
        let token = ctx.rng().next_u32();
        ctx.broadcast(token);
        ctx.emit("tick", vec![f64::from(token % 97)]);
        let next = ctx.track_value(TrackId::MAIN) + 0.004;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: &u32) {
        ctx.emit("beat", vec![from.index() as f64, f64::from(*msg % 64)]);
    }
}

fn build(scheduler: SchedulerKind) -> Simulation<u32> {
    let config = SimConfig {
        seed: 23,
        sample_interval: Some(SimDuration::from_millis(15.0)),
        scheduler,
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(config);
    let ids: Vec<NodeId> = (0..NODES).map(|_| b.add_node(Box::new(Churn))).collect();
    for i in 0..NODES {
        b.add_edge(ids[i], ids[(i + 1) % NODES]);
    }
    b.build()
}

fn schedulers() -> Vec<(String, SchedulerKind)> {
    let mut kinds = vec![
        ("global".to_string(), SchedulerKind::Global),
        (
            "sharded".to_string(),
            SchedulerKind::Sharded(Partition::by_blocks(NODES, 2)),
        ),
    ];
    for workers in [1usize, 2, 4] {
        kinds.push((
            format!("parallel-{workers}"),
            SchedulerKind::Parallel {
                partition: Partition::by_blocks(NODES, 2),
                workers,
            },
        ));
    }
    kinds
}

/// One materialized run of the workload under `scheduler`.
fn materialized(scheduler: SchedulerKind) -> Trace {
    let mut sim = build(scheduler);
    sim.run_until(SimTime::from_secs(HORIZON));
    sim.into_trace()
}

#[test]
fn streaming_observer_matches_materialized_trace_on_every_scheduler() {
    let reference = materialized(SchedulerKind::Global).to_bytes();
    assert!(!reference.is_empty());
    for (name, kind) in schedulers() {
        // Stream the identical run into a collect-everything observer.
        let mut sim = build(kind);
        let mut collected = Trace::new();
        sim.run_until_with(SimTime::from_secs(HORIZON), &mut collected);
        collected.on_finish(&sim.stats());
        assert!(
            sim.trace().samples.is_empty() && sim.trace().rows.is_empty(),
            "{name}: streaming run must not materialize the internal trace"
        );
        assert_eq!(
            collected.to_bytes(),
            reference,
            "{name}: streamed output diverged from the materialized trace"
        );
    }
}

#[test]
fn fanout_observer_feeds_every_sink_the_full_stream() {
    let reference = materialized(SchedulerKind::Global).to_bytes();
    let mut sim = build(SchedulerKind::Global);
    let mut a = Trace::new();
    let mut b = Trace::new();
    {
        let mut fan = Fanout::new(vec![&mut a, &mut b]);
        sim.run_until_with(SimTime::from_secs(HORIZON), &mut fan);
        fan.on_finish(&sim.stats());
    }
    assert_eq!(a.to_bytes(), reference);
    assert_eq!(b.to_bytes(), reference);
}

#[test]
fn stepping_granularity_never_changes_the_trace() {
    // Fine-grained driver stepping (many run_until calls) must be
    // byte-identical to one long call, on the serial and the pooled
    // parallel engines alike — the persistent pool keeps its threads
    // across calls, and the step boundaries fall at arbitrary times
    // (including mid-window for the parallel executor).
    for (name, kind) in schedulers() {
        let reference = materialized(kind.clone()).to_bytes();
        for step_ms in [7.0, 50.0] {
            let mut sim = build(kind.clone());
            let step = SimDuration::from_millis(step_ms);
            while sim.now() < SimTime::from_secs(HORIZON) {
                let next = (sim.now() + step).min(SimTime::from_secs(HORIZON));
                sim.run_until(next);
            }
            assert_eq!(
                sim.into_trace().to_bytes(),
                reference,
                "{name}: stepping at {step_ms} ms diverged from the one-shot run"
            );
        }
    }
}

#[test]
fn streaming_and_stepping_compose() {
    // Stream a stepped parallel run into an observer: both redesign
    // axes at once.
    let reference = materialized(SchedulerKind::Global).to_bytes();
    let kind = SchedulerKind::Parallel {
        partition: Partition::by_blocks(NODES, 2),
        workers: 2,
    };
    let mut sim = build(kind);
    let mut collected = Trace::new();
    for i in 1..=40 {
        sim.run_until_with(
            SimTime::from_secs(HORIZON * f64::from(i) / 40.0),
            &mut collected,
        );
    }
    collected.on_finish(&sim.stats());
    assert_eq!(collected.to_bytes(), reference);
}
