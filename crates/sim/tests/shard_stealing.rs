//! Stress suite for the parallel executor's work stealing and
//! per-shard horizons (the dynamic shard→worker assignment landed
//! after PR 3's static `shard % workers` split).
//!
//! The partitions here are chosen to make the *old* static assignment
//! maximally lopsided — a hub shard holding a third of the nodes next
//! to singleton spokes, and one giant shard next to trivial ones — so
//! the deal-out/steal machinery actually runs (idle workers sweep the
//! unclaimed heavy shards) while per-shard horizons give the far-ahead
//! singleton shards caps beyond the global front. Determinism is the
//! assertion: whatever the claim race does, the merged trace must be
//! byte-identical to the serial global heap, at every worker count,
//! with real OS threads forced via [`Simulation::pin_workers`]
//! regardless of this machine's core count.
//!
//! CI additionally re-runs this suite under `FTGCS_WORKERS=2` and `=4`
//! (the env pin takes precedence at build time; `pin_workers` then
//! overrides it identically on every job, keeping the axes stable).

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig, SimStats, Simulation};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
use ftgcs_sim::shard::{Partition, SchedulerKind};
use ftgcs_sim::time::{SimDuration, SimTime};

/// Timer + broadcast churn with per-node RNG and trace rows — enough
/// machinery that any mis-merged window shows up in the byte stream.
struct Churn {
    beats: u64,
}

impl Behavior<u64> for Churn {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer_at(TrackId::MAIN, 0.004, TimerTag::new(0));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: TimerTag) {
        self.beats += 1;
        let token = ctx.rng().next_u64();
        if self.beats.is_multiple_of(4) {
            ctx.broadcast_with_loopback(token);
        } else {
            ctx.broadcast(token);
        }
        let next = ctx.track_value(TrackId::MAIN) + 0.004;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: &u64) {
        ctx.emit("churn", vec![from.index() as f64, (*msg % 4096) as f64]);
    }
}

fn config(seed: u64, scheduler: SchedulerKind) -> SimConfig {
    SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(300.0),
            DelayDistribution::Uniform,
        ),
        rho: 1e-4,
        rate_model: RateModel::RandomWalk {
            dwell: 0.2,
            step: 0.5,
        },
        seed,
        sample_interval: Some(SimDuration::from_millis(50.0)),
        scheduler,
        telemetry: false,
    }
}

/// Hub-and-spoke topology over `n` nodes: every spoke links to node 0,
/// plus a spoke ring so cross-spoke (cross-shard) traffic exists.
fn build(n: usize, seed: u64, scheduler: SchedulerKind) -> Simulation<u64> {
    let mut builder = SimBuilder::new(config(seed, scheduler));
    let ids: Vec<NodeId> = (0..n)
        .map(|_| builder.add_node(Box::new(Churn { beats: 0 })))
        .collect();
    for i in 1..n {
        builder.add_edge(ids[0], ids[i]);
        if i + 1 < n {
            builder.add_edge(ids[i], ids[i + 1]);
        }
    }
    builder.build()
}

/// One shard holding the hub plus a third of the spokes; every other
/// spoke is a singleton shard. The static `shard % workers` split dealt
/// shard 0 (and every `workers`-th singleton) to worker 0.
fn hub_partition(n: usize) -> Partition {
    let heavy = n / 3;
    let assignment: Vec<usize> = (0..n)
        .map(|i| if i < heavy { 0 } else { i - heavy + 1 })
        .collect();
    Partition::from_assignment(assignment)
}

/// One giant shard next to two trivial ones — the worst case for a
/// global window cap (the giant shard's front pins every window) and
/// for static assignment (two workers idle).
fn giant_partition(n: usize) -> Partition {
    let assignment: Vec<usize> = (0..n)
        .map(|i| match i {
            0 => 1,
            1 => 2,
            _ => 0,
        })
        .collect();
    Partition::from_assignment(assignment)
}

fn run_to_bytes(
    n: usize,
    seed: u64,
    scheduler: SchedulerKind,
    pin: Option<usize>,
) -> (Vec<u8>, SimStats) {
    let mut sim = build(n, seed, scheduler);
    if let Some(workers) = pin {
        sim.pin_workers(workers);
    }
    sim.run_until(SimTime::from_secs(0.4));
    // Step tail: stepping granularity must not change the bytes either.
    sim.run_for(SimDuration::from_millis(35.0));
    sim.run_for(SimDuration::from_millis(65.0));
    let stats = sim.stats();
    (sim.into_trace().to_bytes(), stats)
}

fn assert_ragged_partition_equivalent(name: &str, partition_of: fn(usize) -> Partition) {
    let n = 18;
    for seed in [3u64, 77, 2024] {
        let reference = run_to_bytes(n, seed, SchedulerKind::Global, None);
        assert!(
            !reference.0.is_empty(),
            "{name}/seed {seed}: empty reference"
        );
        // workers: 1 (inline path), 2 and 4 (pooled, pinned to real OS
        // threads), and auto (resolve_workers / FTGCS_WORKERS).
        for (label, workers, pin) in [
            ("w1", 1usize, Some(1usize)),
            ("w2", 2, Some(2)),
            ("w4", 4, Some(4)),
            ("auto", 0, None),
        ] {
            let candidate = run_to_bytes(
                n,
                seed,
                SchedulerKind::Parallel {
                    partition: partition_of(n),
                    workers,
                },
                pin,
            );
            assert_eq!(
                candidate.1, reference.1,
                "{name}/seed {seed}/{label}: work counters diverged"
            );
            assert_eq!(
                candidate.0, reference.0,
                "{name}/seed {seed}/{label}: trace diverged from the global heap"
            );
        }
    }
}

#[test]
fn hub_and_spoke_partition_is_byte_identical_with_stealing() {
    assert_ragged_partition_equivalent("hub-and-spoke", hub_partition);
}

#[test]
fn one_giant_cluster_partition_is_byte_identical_with_stealing() {
    assert_ragged_partition_equivalent("one-giant-cluster", giant_partition);
}

#[test]
fn stealing_is_stable_across_repeated_runs() {
    // The claim race resolves differently every run; 12 repetitions
    // cycling the pinned thread count must all merge to the same bytes.
    let reference = run_to_bytes(18, 7, SchedulerKind::Global, None);
    for rep in 0..12u32 {
        let workers = [2usize, 3, 4][rep as usize % 3];
        let candidate = run_to_bytes(
            18,
            7,
            SchedulerKind::Parallel {
                partition: hub_partition(18),
                workers,
            },
            Some(workers),
        );
        assert_eq!(
            candidate.0, reference.0,
            "stress rep {rep} (w{workers}) diverged"
        );
    }
}

#[test]
fn dealt_load_is_spread_on_hub_and_spoke() {
    // The acceptance bar for the balancer itself: on the hub-and-spoke
    // partition, no worker's dealt share exceeds 60% of all events.
    // The dealt record is machine-independent (see
    // `Simulation::planned_worker_events`), so this is a hard assert,
    // not a flaky perf check.
    let mut sim = build(
        18,
        7,
        SchedulerKind::Parallel {
            partition: hub_partition(18),
            workers: 1,
        },
    );
    sim.pin_workers(4);
    sim.run_until(SimTime::from_secs(0.4));
    let loads = sim
        .planned_worker_events()
        .expect("parallel scheduler records dealt loads")
        .to_vec();
    let total: u64 = loads.iter().sum();
    assert!(total > 0, "no events dealt");
    for (w, &load) in loads.iter().enumerate() {
        let share = load as f64 / total as f64;
        assert!(
            share < 0.6,
            "worker {w} was dealt {share:.2} of all events ({loads:?})"
        );
    }
}
