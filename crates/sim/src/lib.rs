//! # ftgcs-sim — discrete-event substrate for clock-synchronization research
//!
//! This crate implements the semi-synchronous message-passing model of
//! Bund, Lenzen & Rosenbaum, *Fault Tolerant Gradient Clock
//! Synchronization* (PODC 2019), as an exact discrete-event simulator:
//!
//! * **Hardware clocks** ([`clock`]) with piecewise-constant drift
//!   `h_v(t) ∈ [1, 1+ρ]` — constant, random-walk, sinusoidal, or scheduled.
//! * **Clock tracks** ([`engine`]) — algorithm-controlled logical clocks
//!   `L(t) = L₀ + m·(H(t) − H₀)` with exact timer inversion, so round
//!   phases fire at the precise instants of the continuous-time model.
//! * **Bounded-delay messaging** ([`network`]) — every message takes a
//!   delay in `[d−U, d]`, chosen by a benign or adversarial distribution.
//! * **Deterministic randomness** ([`rng`]) — a run is a pure function of
//!   `(seed, configuration)`.
//! * **Trace recording** ([`trace`]) — periodic clock samples plus
//!   algorithm-emitted rows for offline skew analysis.
//!
//! ## Quickstart
//!
//! ```
//! use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig};
//! use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
//! use ftgcs_sim::time::{SimDuration, SimTime};
//!
//! // A node that speeds its logical clock up by 1% at logical time 5.
//! struct SpeedUp;
//! impl Behavior<()> for SpeedUp {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
//!         ctx.set_timer_at(TrackId::MAIN, 5.0, TimerTag::new(0));
//!     }
//!     fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerTag) {
//!         ctx.set_multiplier(TrackId::MAIN, 1.01);
//!     }
//!     fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
//! }
//!
//! let mut builder = SimBuilder::new(SimConfig {
//!     rho: 0.0, // perfect hardware for this example
//!     ..SimConfig::default()
//! });
//! let v = builder.add_node(Box::new(SpeedUp));
//! let mut sim = builder.build();
//! sim.run_until(SimTime::from_secs(10.0));
//! assert!((sim.logical_value(v) - (5.0 + 5.0 * 1.01)).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Unsafety discipline (enforced by `ftgcs-lint`): the only sanctioned
// unsafe region in the workspace is the parallel executor's raw-pointer
// cell machinery, scoped to `par` below. Everything else in this crate
// is forbidden from using `unsafe` at all.
#![deny(unsafe_code)]
// Library output goes through the `Observer` sink, never the process
// streams — a stray println inside the engine would interleave
// nondeterministically with worker threads.
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod clock;
pub mod engine;
pub mod network;
pub mod node;
pub mod observe;
#[allow(unsafe_code)] // sanctioned: par's raw-pointer cells, all SAFETY-commented
pub mod par;
pub mod rng;
pub mod shard;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use clock::{HardwareClock, RateModel};
pub use engine::{Ctx, SimBuilder, SimConfig, SimStats, Simulation};
pub use network::{DelayConfig, DelayDistribution};
pub use node::{Behavior, NodeId, TimerId, TimerTag, TrackId};
pub use rng::SimRng;
pub use shard::{Partition, SchedulerKind, ShardQueue};
pub use telemetry::{Stopwatch, TelemetryReport};
pub use time::{SimDuration, SimTime};
pub use trace::{ClockSample, Row, Trace};
