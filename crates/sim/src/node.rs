//! Node identities and the behavior interface.
//!
//! A simulation hosts a fixed set of nodes connected by a communication
//! graph. Each node is driven by a [`Behavior`]: a state machine reacting to
//! simulation start, message arrivals, and timer expirations. Correct
//! algorithm nodes and Byzantine adversaries are both just behaviors — the
//! engine gives them the same interface, and fault tolerance must come from
//! the algorithm, not the harness.

use crate::engine::Ctx;

/// Identifier of a node in a simulation (dense, `0..n`).
///
/// # Examples
///
/// ```
/// use ftgcs_sim::node::NodeId;
///
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// Identifier of a logical clock track owned by a node.
///
/// Track [`TrackId::MAIN`] is created automatically for every node and holds
/// the node's *logical clock* `L_v`; behaviors may create additional tracks
/// (e.g. one virtual clock per estimated neighbor cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub usize);

impl TrackId {
    /// The main logical-clock track, present on every node.
    pub const MAIN: TrackId = TrackId(0);

    /// Returns the dense per-node index of this track.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Application-defined tag identifying why a timer fired.
///
/// `kind` discriminates the timer's purpose; `a` and `b` carry parameters
/// (a round number, a cluster instance index, ...). The engine never
/// interprets tags.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::node::TimerTag;
///
/// const PULSE: u32 = 1;
/// let tag = TimerTag::new(PULSE).with_a(7);
/// assert_eq!(tag.kind, PULSE);
/// assert_eq!(tag.a, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TimerTag {
    /// Purpose discriminator.
    pub kind: u32,
    /// First parameter (e.g. an instance index).
    pub a: u32,
    /// Second parameter (e.g. a round number).
    pub b: u64,
}

impl TimerTag {
    /// Creates a tag with the given kind and zeroed parameters.
    #[must_use]
    pub fn new(kind: u32) -> Self {
        TimerTag { kind, a: 0, b: 0 }
    }

    /// Sets the first parameter.
    #[must_use]
    pub fn with_a(mut self, a: u32) -> Self {
        self.a = a;
        self
    }

    /// Sets the second parameter.
    #[must_use]
    pub fn with_b(mut self, b: u64) -> Self {
        self.b = b;
        self
    }
}

/// Handle to a pending timer, usable for cancellation.
///
/// The handle carries the timer slot's reuse epoch, so cancelling a
/// handle whose timer has already fired (or been cancelled) is a
/// guaranteed no-op even after the engine reuses the slot for a new
/// timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId {
    pub(crate) id: usize,
    pub(crate) epoch: u32,
}

/// The driver of a node: reacts to simulation events via the [`Ctx`] API.
///
/// Implementations hold all per-node algorithm state. The engine guarantees
/// run-to-completion semantics: callbacks of one node never interleave.
/// Behaviors must be [`Send`] because the parallel scheduler
/// ([`crate::shard::SchedulerKind::Parallel`]) dispatches different
/// nodes' callbacks on worker threads — a single behavior still only
/// ever runs on one thread at a time, so `Sync` is not required, but
/// shared test probes must use `Arc<Mutex<…>>` rather than
/// `Rc<RefCell<…>>`.
///
/// # Examples
///
/// A node that broadcasts one message at logical time 1.0 and counts
/// receipts:
///
/// ```
/// use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
/// use ftgcs_sim::engine::Ctx;
///
/// struct Beacon { received: usize }
///
/// impl Behavior<&'static str> for Beacon {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
///         ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(0));
///     }
///     fn on_timer(&mut self, ctx: &mut Ctx<'_, &'static str>, _tag: TimerTag) {
///         ctx.broadcast("ping");
///     }
///     fn on_message(&mut self, _ctx: &mut Ctx<'_, &'static str>, _from: NodeId, _m: &&'static str) {
///         self.received += 1;
///     }
/// }
/// ```
pub trait Behavior<M>: Send {
    /// Called once at simulation time 0, in node-id order.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>);

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: &M);

    /// Called when a timer set by this node fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: TimerTag);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversions() {
        let v: NodeId = 5usize.into();
        assert_eq!(v, NodeId(5));
        assert_eq!(v.index(), 5);
        assert_eq!(v.to_string(), "n5");
    }

    #[test]
    fn timer_tag_builders() {
        let t = TimerTag::new(9).with_a(2).with_b(1000);
        assert_eq!((t.kind, t.a, t.b), (9, 2, 1000));
        assert_ne!(t, TimerTag::new(9));
    }

    #[test]
    fn main_track_is_zero() {
        assert_eq!(TrackId::MAIN.index(), 0);
    }
}
