//! Drifting hardware clocks.
//!
//! The paper models each node's hardware clock as a locally integrable rate
//! function `h_v : ℝ → [1, 1+ρ]` with `H_v(t) = ∫₀ᵗ h_v(τ) dτ` (Section 2).
//! We realize `h_v` as a deterministic, lazily extended piecewise-constant
//! function, which makes `H_v` piecewise linear and therefore *exactly*
//! invertible — timers set at hardware/logical targets fire at the precise
//! Newtonian instants the model prescribes, with no numeric integration.
//!
//! [`RateModel`] chooses the shape of the drift: constant (including the
//! extremal rates `1` and `1+ρ` used in worst-case arguments), a bounded
//! random walk, a piecewise-sampled sinusoid (slow thermal wander), or an
//! explicit schedule for adversarial hand-built scenarios.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Hardware-time reading of a clock (seconds on the clock's own scale).
pub type HardwareTime = f64;

/// How a node's hardware clock rate `h_v(t) ∈ [1, 1+ρ]` evolves.
///
/// All models are *deterministic given the node's RNG stream*: the full
/// future rate schedule is a pure function of the seed, so inverting the
/// clock never invalidates previously computed event times.
#[derive(Debug, Clone, PartialEq)]
pub enum RateModel {
    /// A constant rate `1 + frac · ρ`, where `frac ∈ [0, 1]`.
    ///
    /// `frac = 0` and `frac = 1` give the extremal clocks of worst-case
    /// indistinguishability arguments.
    Constant {
        /// Position within the drift band, `0.0` = slowest, `1.0` = fastest.
        frac: f64,
    },
    /// Each node draws one uniform rate in `[1, 1+ρ]` and keeps it forever.
    RandomConstant,
    /// A bounded random walk: rates are redrawn every `dwell` seconds by a
    /// reflected step of at most `step · ρ`.
    RandomWalk {
        /// Mean dwell time between rate changes, in seconds.
        dwell: f64,
        /// Maximum step per change, as a fraction of the band width ρ.
        step: f64,
    },
    /// A sinusoidal wander sampled piecewise: rate
    /// `1 + ρ·(1 + sin(2πt/period + phase))/2`, held constant over segments
    /// of length `period / 32`.
    Sinusoid {
        /// Oscillation period in seconds.
        period: f64,
        /// Phase offset in radians; each node may use a different phase.
        phase: f64,
    },
    /// An explicit schedule of `(start_time_secs, band_fraction)` pairs,
    /// sorted by start time; the first entry must start at `0.0`.
    ///
    /// Useful for adversarial scenarios such as "front half of the line runs
    /// fast for 100 s, then slow".
    Schedule(Vec<(f64, f64)>),
}

impl Default for RateModel {
    /// Defaults to a drift-band random walk with 1 s dwell.
    fn default() -> Self {
        RateModel::RandomWalk {
            dwell: 1.0,
            step: 0.5,
        }
    }
}

/// One constant-rate segment of a hardware clock.
#[derive(Debug, Clone, Copy)]
struct Segment {
    /// Newtonian start of the segment.
    start: f64,
    /// Hardware reading at `start`.
    hw_at_start: f64,
    /// Rate over the segment (`1 ≤ rate ≤ 1+ρ`).
    rate: f64,
}

/// A drifting hardware clock with exact forward and inverse evaluation.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::clock::{HardwareClock, RateModel};
/// use ftgcs_sim::rng::SimRng;
/// use ftgcs_sim::time::SimTime;
///
/// let mut clock = HardwareClock::new(
///     1e-4,
///     RateModel::Constant { frac: 1.0 },
///     SimRng::seed_from(0),
/// );
/// let t = SimTime::from_secs(10.0);
/// let h = clock.hardware_time(t);
/// assert!((h - 10.0 * 1.0001).abs() < 1e-12);
/// // The inverse recovers the Newtonian time:
/// assert!((clock.when_hardware_reaches(h).as_secs() - 10.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct HardwareClock {
    rho: f64,
    model: RateModel,
    rng: SimRng,
    /// Generated segments, in increasing `start` order; never empty.
    segments: Vec<Segment>,
    /// Newtonian time up to which segments have been generated. The last
    /// segment extends to `generated_until`; beyond it, more segments are
    /// appended on demand.
    generated_until: f64,
}

impl HardwareClock {
    /// Creates a clock with drift bound `rho` and the given rate model.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is negative or the model is malformed (e.g. a
    /// [`RateModel::Schedule`] that does not start at time 0).
    #[must_use]
    pub fn new(rho: f64, model: RateModel, rng: SimRng) -> Self {
        assert!(rho >= 0.0, "drift bound rho must be non-negative");
        if let RateModel::Schedule(entries) = &model {
            assert!(
                entries.first().is_some_and(|e| e.0 == 0.0),
                "rate schedule must start at t = 0"
            );
            assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "rate schedule must be strictly increasing in time"
            );
        }
        let mut clock = HardwareClock {
            rho,
            model,
            rng,
            segments: Vec::new(),
            generated_until: 0.0,
        };
        clock.bootstrap();
        clock
    }

    /// The drift bound ρ this clock was created with.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    fn bootstrap(&mut self) {
        let first_rate = match &self.model {
            RateModel::Constant { frac } => self.rate_from_frac(*frac),
            RateModel::RandomConstant => {
                let f = self.rng.uniform(0.0, 1.0);
                self.rate_from_frac(f)
            }
            RateModel::RandomWalk { .. } => {
                let f = self.rng.uniform(0.0, 1.0);
                self.rate_from_frac(f)
            }
            RateModel::Sinusoid { phase, .. } => self.rate_from_frac((1.0 + phase.sin()) / 2.0),
            RateModel::Schedule(entries) => self.rate_from_frac(entries[0].1),
        };
        self.segments.push(Segment {
            start: 0.0,
            hw_at_start: 0.0,
            rate: first_rate,
        });
        self.generated_until = self.next_breakpoint(0.0);
    }

    fn rate_from_frac(&self, frac: f64) -> f64 {
        1.0 + self.rho * frac.clamp(0.0, 1.0)
    }

    /// Returns the Newtonian time of the breakpoint following `t`.
    fn next_breakpoint(&mut self, t: f64) -> f64 {
        match &self.model {
            RateModel::Constant { .. } | RateModel::RandomConstant => f64::INFINITY,
            RateModel::RandomWalk { dwell, .. } => {
                let dwell = *dwell;
                // Jittered dwell in [dwell/2, 3·dwell/2] keeps nodes from
                // changing rates in lockstep.
                t + self.rng.uniform(0.5 * dwell, 1.5 * dwell)
            }
            RateModel::Sinusoid { period, .. } => t + period / 32.0,
            RateModel::Schedule(entries) => entries
                .iter()
                .map(|e| e.0)
                .find(|&s| s > t)
                .unwrap_or(f64::INFINITY),
        }
    }

    /// Appends segments until the schedule covers Newtonian time `t`.
    fn extend_to(&mut self, t: f64) {
        while self.generated_until <= t {
            let last = *self.segments.last().expect("segments never empty");
            let seg_end = self.generated_until;
            let hw_at_end = last.hw_at_start + last.rate * (seg_end - last.start);
            let new_rate = match &self.model {
                RateModel::Constant { .. } | RateModel::RandomConstant => last.rate,
                RateModel::RandomWalk { step, .. } => {
                    let band = self.rho;
                    let max_step = step * band;
                    let lo = (last.rate - 1.0 - max_step).max(0.0);
                    let hi = (last.rate - 1.0 + max_step).min(band);
                    1.0 + self.rng.uniform(lo, hi.max(lo))
                }
                RateModel::Sinusoid { period, phase } => {
                    let x = 2.0 * std::f64::consts::PI * seg_end / period + phase;
                    self.rate_from_frac((1.0 + x.sin()) / 2.0)
                }
                RateModel::Schedule(entries) => {
                    let frac = entries
                        .iter()
                        .rev()
                        .find(|e| e.0 <= seg_end)
                        .map_or(entries[0].1, |e| e.1);
                    self.rate_from_frac(frac)
                }
            };
            self.segments.push(Segment {
                start: seg_end,
                hw_at_start: hw_at_end,
                rate: new_rate,
            });
            self.generated_until = self.next_breakpoint(seg_end);
        }
    }

    /// Index of the segment containing Newtonian time `t`.
    fn segment_at(&mut self, t: f64) -> usize {
        self.extend_to(t);
        match self
            .segments
            .binary_search_by(|s| s.start.partial_cmp(&t).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Returns the hardware reading `H_v(t)`.
    #[must_use]
    pub fn hardware_time(&mut self, t: SimTime) -> HardwareTime {
        let t = t.as_secs();
        let i = self.segment_at(t);
        let s = self.segments[i];
        s.hw_at_start + s.rate * (t - s.start)
    }

    /// Returns the instantaneous rate `h_v(t)`.
    #[must_use]
    pub fn rate_at(&mut self, t: SimTime) -> f64 {
        let i = self.segment_at(t.as_secs());
        self.segments[i].rate
    }

    /// Returns the Newtonian time at which the hardware reading reaches
    /// `target` (exact inverse of [`Self::hardware_time`]).
    ///
    /// # Panics
    ///
    /// Panics if `target` is negative or NaN.
    #[must_use]
    pub fn when_hardware_reaches(&mut self, target: HardwareTime) -> SimTime {
        assert!(target >= 0.0, "hardware targets are non-negative");
        // Rates are ≥ 1, so by time `target` the hardware reading is ≥
        // `target`: generating segments up to Newtonian `target` suffices.
        self.extend_to(target);
        let i = match self
            .segments
            .binary_search_by(|s| s.hw_at_start.partial_cmp(&target).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let s = self.segments[i];
        SimTime::from_secs(s.start + (target - s.hw_at_start) / s.rate)
    }

    /// Returns the elapsed hardware duration between two Newtonian times.
    #[must_use]
    pub fn hardware_elapsed(&mut self, from: SimTime, to: SimTime) -> SimDuration {
        SimDuration::from_secs(self.hardware_time(to) - self.hardware_time(from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times() -> Vec<f64> {
        vec![0.0, 0.001, 0.37, 1.0, 2.5, 9.99, 10.0, 47.3, 120.0]
    }

    fn check_bounds_and_inverse(mut c: HardwareClock, rho: f64) {
        let mut prev_h = -1.0;
        for &t in &times() {
            let h = c.hardware_time(SimTime::from_secs(t));
            // Monotone, within drift envelope.
            assert!(h > prev_h || t == 0.0, "monotone at t={t}");
            assert!(h >= t - 1e-9, "h >= t at t={t}: {h}");
            assert!(h <= t * (1.0 + rho) + 1e-9, "h <= (1+rho)t at t={t}: {h}");
            // Exact inverse.
            let back = c.when_hardware_reaches(h).as_secs();
            assert!((back - t).abs() < 1e-9, "inverse at t={t}: {back}");
            prev_h = h;
        }
    }

    #[test]
    fn constant_model_exact() {
        let mut c = HardwareClock::new(
            1e-3,
            RateModel::Constant { frac: 0.5 },
            SimRng::seed_from(0),
        );
        let h = c.hardware_time(SimTime::from_secs(100.0));
        assert!((h - 100.0 * 1.0005).abs() < 1e-9);
        check_bounds_and_inverse(c, 1e-3);
    }

    #[test]
    fn random_walk_within_bounds() {
        for seed in 0..8 {
            let c = HardwareClock::new(
                1e-2,
                RateModel::RandomWalk {
                    dwell: 0.5,
                    step: 0.3,
                },
                SimRng::seed_from(seed),
            );
            check_bounds_and_inverse(c, 1e-2);
        }
    }

    #[test]
    fn sinusoid_within_bounds() {
        let c = HardwareClock::new(
            1e-3,
            RateModel::Sinusoid {
                period: 5.0,
                phase: 1.0,
            },
            SimRng::seed_from(1),
        );
        check_bounds_and_inverse(c, 1e-3);
    }

    #[test]
    fn schedule_switches_rates() {
        let mut c = HardwareClock::new(
            1e-2,
            RateModel::Schedule(vec![(0.0, 0.0), (10.0, 1.0)]),
            SimRng::seed_from(0),
        );
        assert_eq!(c.rate_at(SimTime::from_secs(5.0)), 1.0);
        assert_eq!(c.rate_at(SimTime::from_secs(15.0)), 1.01);
        // H(20) = 10·1 + 10·1.01 = 20.1
        let h = c.hardware_time(SimTime::from_secs(20.0));
        assert!((h - 20.1).abs() < 1e-9);
        check_bounds_and_inverse(c, 1e-2);
    }

    #[test]
    fn random_constant_is_reproducible() {
        let mut a = HardwareClock::new(1e-3, RateModel::RandomConstant, SimRng::seed_from(5));
        let mut b = HardwareClock::new(1e-3, RateModel::RandomConstant, SimRng::seed_from(5));
        assert_eq!(
            a.hardware_time(SimTime::from_secs(3.0)),
            b.hardware_time(SimTime::from_secs(3.0))
        );
    }

    #[test]
    fn inverse_lands_on_future_segments() {
        let mut c = HardwareClock::new(
            5e-2,
            RateModel::RandomWalk {
                dwell: 0.2,
                step: 1.0,
            },
            SimRng::seed_from(3),
        );
        // Query far in the future first through the inverse path.
        let t = c.when_hardware_reaches(50.0);
        let h = c.hardware_time(t);
        assert!((h - 50.0).abs() < 1e-9, "h={h}");
    }

    #[test]
    #[should_panic(expected = "must start at t = 0")]
    fn schedule_must_start_at_zero() {
        let _ = HardwareClock::new(
            1e-3,
            RateModel::Schedule(vec![(1.0, 0.5)]),
            SimRng::seed_from(0),
        );
    }

    #[test]
    fn zero_rho_is_perfect_clock() {
        let mut c = HardwareClock::new(0.0, RateModel::default(), SimRng::seed_from(9));
        for &t in &times() {
            assert!((c.hardware_time(SimTime::from_secs(t)) - t).abs() < 1e-12);
        }
    }
}
