//! Message-delay models.
//!
//! The model (paper, Section 2): a pulse sent by `v` at Newtonian time `p_v`
//! is received by each neighbor at some time in `[p_v + d − U, p_v + d]`,
//! where `d` is the maximum delay and `U` the delay uncertainty. The
//! adversary chooses the actual delay within that window; [`DelayDistribution`]
//! provides the standard adversarial and stochastic choices.

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Strategy for picking the actual delay of each message within `[d−U, d]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum DelayDistribution {
    /// Independent uniform draw per message (benign network).
    #[default]
    Uniform,
    /// Every message takes the maximum delay `d`.
    Maximal,
    /// Every message takes the minimum delay `d − U`.
    Minimal,
    /// Classic worst case for two-node uncertainty arguments: messages from
    /// lower to higher node id take `d`, the reverse direction takes `d−U`.
    /// This maximizes the *perceived* offset between neighbors.
    AsymmetricById,
    /// Messages into even-indexed nodes are fast, into odd-indexed slow —
    /// creates systematic disagreement inside clusters.
    AlternatingByDst,
}

/// Complete delay configuration: bounds plus a distribution.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::network::{DelayConfig, DelayDistribution};
/// use ftgcs_sim::time::SimDuration;
///
/// let cfg = DelayConfig::new(
///     SimDuration::from_millis(1.0),
///     SimDuration::from_micros(100.0),
///     DelayDistribution::Uniform,
/// );
/// assert_eq!(cfg.min_delay(), SimDuration::from_micros(900.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayConfig {
    /// Maximum message delay `d`.
    d: SimDuration,
    /// Delay uncertainty `U ≤ d`.
    u: SimDuration,
    /// Distribution of actual delays within `[d−U, d]`.
    distribution: DelayDistribution,
}

impl DelayConfig {
    /// Creates a delay configuration.
    ///
    /// # Panics
    ///
    /// Panics if `d < U`, if either is negative, or if `d` is zero (the
    /// model requires positive delays so causality is strict).
    #[must_use]
    pub fn new(d: SimDuration, u: SimDuration, distribution: DelayDistribution) -> Self {
        assert!(d.as_secs() > 0.0, "maximum delay d must be positive");
        assert!(u.as_secs() >= 0.0, "uncertainty U must be non-negative");
        assert!(u <= d, "uncertainty U must not exceed maximum delay d");
        DelayConfig { d, u, distribution }
    }

    /// Maximum delay `d`.
    #[must_use]
    pub fn max_delay(&self) -> SimDuration {
        self.d
    }

    /// Delay uncertainty `U`.
    #[must_use]
    pub fn uncertainty(&self) -> SimDuration {
        self.u
    }

    /// Minimum delay `d − U`.
    #[must_use]
    pub fn min_delay(&self) -> SimDuration {
        self.d - self.u
    }

    /// The configured distribution.
    #[must_use]
    pub fn distribution(&self) -> &DelayDistribution {
        &self.distribution
    }

    /// Replaces the distribution, keeping the `[d−U, d]` bounds.
    pub fn set_distribution(&mut self, distribution: DelayDistribution) {
        self.distribution = distribution;
    }

    /// Samples the delay for one message from `src` to `dst`.
    ///
    /// The result always lies in `[d−U, d]`, whatever the distribution.
    #[must_use]
    pub fn sample(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> SimDuration {
        let lo = self.min_delay().as_secs();
        let hi = self.d.as_secs();
        let secs = match self.distribution {
            DelayDistribution::Uniform => rng.uniform(lo, hi),
            DelayDistribution::Maximal => hi,
            DelayDistribution::Minimal => lo,
            DelayDistribution::AsymmetricById => {
                if src.index() < dst.index() {
                    hi
                } else {
                    lo
                }
            }
            DelayDistribution::AlternatingByDst => {
                if dst.index().is_multiple_of(2) {
                    lo
                } else {
                    hi
                }
            }
        };
        SimDuration::from_secs(secs)
    }
}

impl Default for DelayConfig {
    /// 1 ms maximum delay, 100 µs uncertainty, uniform draws.
    fn default() -> Self {
        DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(100.0),
            DelayDistribution::Uniform,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dist: DelayDistribution) -> DelayConfig {
        DelayConfig::new(
            SimDuration::from_millis(2.0),
            SimDuration::from_millis(0.5),
            dist,
        )
    }

    #[test]
    fn uniform_stays_in_window() {
        let c = cfg(DelayDistribution::Uniform);
        let mut rng = SimRng::seed_from(0);
        for _ in 0..500 {
            let s = c.sample(NodeId(0), NodeId(1), &mut rng);
            assert!(s >= c.min_delay() && s <= c.max_delay(), "{s:?}");
        }
    }

    #[test]
    fn extremal_distributions() {
        let mut rng = SimRng::seed_from(0);
        assert_eq!(
            cfg(DelayDistribution::Maximal).sample(NodeId(0), NodeId(1), &mut rng),
            SimDuration::from_millis(2.0)
        );
        assert_eq!(
            cfg(DelayDistribution::Minimal).sample(NodeId(0), NodeId(1), &mut rng),
            SimDuration::from_millis(1.5)
        );
    }

    #[test]
    fn asymmetric_depends_on_direction() {
        let c = cfg(DelayDistribution::AsymmetricById);
        let mut rng = SimRng::seed_from(0);
        let up = c.sample(NodeId(0), NodeId(5), &mut rng);
        let down = c.sample(NodeId(5), NodeId(0), &mut rng);
        assert_eq!(up, c.max_delay());
        assert_eq!(down, c.min_delay());
    }

    #[test]
    fn alternating_depends_on_destination_parity() {
        let c = cfg(DelayDistribution::AlternatingByDst);
        let mut rng = SimRng::seed_from(0);
        assert_eq!(c.sample(NodeId(1), NodeId(2), &mut rng), c.min_delay());
        assert_eq!(c.sample(NodeId(2), NodeId(3), &mut rng), c.max_delay());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_u_above_d() {
        let _ = DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_millis(2.0),
            DelayDistribution::Uniform,
        );
    }

    #[test]
    fn default_is_sane() {
        let c = DelayConfig::default();
        assert!(c.min_delay().is_positive());
        assert_eq!(c.distribution(), &DelayDistribution::Uniform);
    }
}
