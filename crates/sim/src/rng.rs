//! Deterministic, splittable randomness.
//!
//! Every stochastic choice in a simulation (hardware-clock rate walks,
//! message delays, Byzantine strategies) draws from a stream derived from a
//! single master seed, so that a scenario is reproducible from
//! `(seed, configuration)` alone. Streams are derived by hashing a label and
//! an index into the master seed ([`SimRng::derive`]), so adding a new
//! consumer does not perturb existing streams.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna), seeded
//! through SplitMix64 — small, fast, `Clone`, and identical across
//! platforms, which matters for reproducible experiments.

/// A deterministic random stream.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::rng::SimRng;
///
/// let root = SimRng::seed_from(42);
/// let mut clock_stream = root.derive("clock", 3);
/// let mut delay_stream = root.derive("delay", 3);
/// // Distinct labels yield independent streams:
/// assert_ne!(clock_stream.next_u64(), delay_stream.next_u64());
/// // Re-derivation is reproducible:
/// let a = SimRng::seed_from(42).derive("clock", 3).next_u64();
/// let b = SimRng::seed_from(42).derive("clock", 3).next_u64();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *s = splitmix64(sm);
        }
        SimRng { seed, state }
    }

    /// Derives an independent sub-stream identified by `(label, index)`.
    ///
    /// Derivation depends only on this stream's seed, not on how many values
    /// have been drawn from it.
    #[must_use]
    pub fn derive(&self, label: &str, index: u64) -> SimRng {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in label.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        SimRng::seed_from(h)
    }

    /// Draws the next raw 64-bit value (xoshiro256++).
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Draws the next raw 32-bit value.
    #[must_use]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniform sample from `[0, 1)`.
    #[must_use]
    pub fn unit(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform sample from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    #[must_use]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds must satisfy lo <= hi");
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// Draws a uniform integer from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Draws a Bernoulli sample with success probability `p` (clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit() < p
    }

    /// Returns the seed this stream was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash step.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::seed_from(1);
        let x = root.derive("a", 0).next_u64();
        let y = root.derive("a", 0).next_u64();
        let z = root.derive("b", 0).next_u64();
        let w = root.derive("a", 1).next_u64();
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_ne!(x, w);
    }

    #[test]
    fn derive_independent_of_consumption() {
        let mut root = SimRng::seed_from(9);
        let before = root.derive("s", 2).next_u64();
        let _ = root.next_u64();
        let after = root.derive("s", 2).next_u64();
        assert_eq!(before, after);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..=5.0).contains(&x));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn index_and_chance() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert!(rng.index(10) < 10);
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..2000).filter(|_| rng.chance(0.5)).count();
        assert!((800..1200).contains(&hits), "p=0.5 hits={hits}");
    }

    #[test]
    fn uniform_distribution_is_roughly_flat() {
        let mut rng = SimRng::seed_from(11);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x = rng.uniform(0.0, 1.0);
            let b = ((x * 10.0) as usize).min(9);
            buckets[b] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SimRng::seed_from(0);
        for _ in 0..10_000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_covers_all_buckets() {
        let mut rng = SimRng::seed_from(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
