//! Time primitives for the simulation.
//!
//! The simulator distinguishes three time scales, mirroring the paper's
//! model (Section 2, "Timing and clocks"):
//!
//! * **Newtonian time** `t` ([`SimTime`]) — the absolute reference time of
//!   the inertial frame. Only the simulation engine (and, by convention,
//!   Byzantine adversaries and trace recorders) may observe it.
//! * **Hardware time** `H_v(t)` — the reading of a node's drifting hardware
//!   clock, produced by [`crate::clock::HardwareClock`].
//! * **Logical time** `L_v(t)` — the algorithm-controlled clock, produced by
//!   a [`crate::node::TrackId`] clock track.
//!
//! All three are represented as `f64` seconds wrapped in newtypes so that
//! they cannot be confused ([C-NEWTYPE]). `SimTime` provides a total order
//! (NaN is rejected at construction) so it can key the event queue.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An absolute Newtonian time point, in seconds since simulation start.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(1.5);
/// assert_eq!(t.as_secs(), 1.5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A span between two time points (of any one scale), in seconds.
///
/// Durations may be negative (e.g. a clock-difference measurement).
///
/// # Examples
///
/// ```
/// use ftgcs_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(250.0) * 4.0;
/// assert_eq!(d.as_secs(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation start instant (`t = 0`).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN: a NaN time would poison the event queue's
    /// total order.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// Returns the time as seconds since simulation start.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier` (negative if `self`
    /// precedes `earlier`).
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the larger of two time points.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two time points.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN rejected at construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.9}s)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimDuration must not be NaN");
        SimDuration(secs)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// Returns the duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the duration in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the absolute value of the duration.
    #[must_use]
    pub fn abs(self) -> SimDuration {
        SimDuration(self.0.abs())
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns `true` if the duration is strictly positive.
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }
}

/// Seconds convert implicitly where an `impl Into<SimDuration>` is
/// accepted (e.g. `Scenario::run_for(2.0)` in the `ftgcs` crate runs
/// for two simulated seconds).
///
/// # Panics
///
/// Panics if `secs` is NaN.
impl From<f64> for SimDuration {
    fn from(secs: f64) -> Self {
        SimDuration::from_secs(secs)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.9}s)", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1.0 {
            write!(f, "{:.6}s", self.0)
        } else if self.0.abs() >= 1e-3 {
            write!(f, "{:.6}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Neg for SimDuration {
    type Output = SimDuration;
    fn neg(self) -> SimDuration {
        SimDuration(-self.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(2.0);
        let d = SimDuration::from_secs(0.5);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.duration_since(SimTime::ZERO).as_secs(), 2.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn duration_units_convert() {
        assert_eq!(SimDuration::from_millis(1.0).as_secs(), 1e-3);
        assert_eq!(SimDuration::from_micros(1.0).as_secs(), 1e-6);
        assert_eq!(SimDuration::from_nanos(1.0).as_secs(), 1e-9);
        assert_eq!(SimDuration::from_secs(0.25).as_millis(), 250.0);
        assert_eq!(SimDuration::from_secs(2e-6).as_micros(), 2.0);
    }

    #[test]
    fn duration_helpers() {
        let d = SimDuration::from_secs(-1.5);
        assert_eq!(d.abs().as_secs(), 1.5);
        assert!(!d.is_positive());
        assert!((-d).is_positive());
        assert_eq!(d.max(SimDuration::ZERO), SimDuration::ZERO);
        assert_eq!(d.min(SimDuration::ZERO), d);
        let total: SimDuration = [1.0, 2.0, 3.0]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total.as_secs(), 6.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(1.25)), "1.250000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1.5)), "1.500000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(12.0)), "12.000us");
        assert!(format!("{:?}", SimTime::ZERO).starts_with("SimTime"));
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }
}
