//! The discrete-event simulation engine.
//!
//! The engine owns, per node: a drifting [`HardwareClock`], a set of *clock
//! tracks*, and a [`Behavior`]. A track is a value that advances as
//! `value(t) = anchor + m · (H_v(t) − H_anchor)` for a behavior-controlled
//! multiplier `m > 0`; the main track of node `v` is its logical clock
//! `L_v`. Because hardware clocks are piecewise linear and multipliers are
//! piecewise constant, timers set at *track targets* can be inverted to
//! exact Newtonian instants — the engine replays the paper's continuous-time
//! model without discretization error.
//!
//! Changing a multiplier (or jumping a track) re-anchors the track and
//! transparently reschedules every pending timer on it; stale heap entries
//! are skipped via generation counters. All mutable per-node state —
//! clocks, tracks, timer slots, RNG streams — lives in one [`NodeState`]
//! per node, which is what lets [`SchedulerKind::Parallel`] hand disjoint
//! node sets to worker threads (see [`crate::par`]).
//!
//! Event storage is delegated to a [`ShardQueue`]: one heap per
//! [`shard`](crate::shard) of the network, advanced under conservative
//! lookahead, with the classic single global heap as the 1-shard
//! degenerate case ([`SchedulerKind::Global`]). Every scheduler —
//! including the parallel one, on any worker count — dispatches the
//! identical global event order, so they all produce byte-identical
//! traces. The order is `(time, source, per-source counter)`: each node
//! stamps the events it creates with its own monotone counter, which is a
//! deterministic function of the node's observed event sequence and
//! therefore independent of how shards raced across threads.

use crate::clock::{HardwareClock, RateModel};
use crate::network::{DelayConfig, DelayDistribution};
use crate::node::{Behavior, NodeId, TimerId, TimerTag, TrackId};
use crate::observe::Observer;
use crate::par::ParQueue;
use crate::rng::SimRng;
use crate::shard::{
    resolve_workers, tie_for_engine, tie_for_node, Entry, Key, Partition, SchedulerKind, Shard,
    ShardQueue,
};
use crate::telemetry::{Phase, Telemetry, TelemetryReport};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ClockSample, Row, Trace};

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Message delay bounds and distribution.
    pub delay: DelayConfig,
    /// Hardware clock drift bound ρ.
    pub rho: f64,
    /// Default hardware rate model for nodes without an override.
    pub rate_model: RateModel,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// If set, record a [`ClockSample`] every interval of Newtonian time.
    pub sample_interval: Option<SimDuration>,
    /// Event scheduler: one global heap, per-shard heaps under
    /// conservative lookahead, or the same shards on a worker-thread
    /// pool. Never changes a run's result — only its throughput.
    pub scheduler: SchedulerKind,
    /// Record runtime telemetry (see [`crate::telemetry`]). Strictly a
    /// side channel: traces are byte-identical on or off, and the
    /// disabled path costs one predictable branch per counter site.
    pub telemetry: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            delay: DelayConfig::default(),
            rho: 1e-4,
            rate_model: RateModel::default(),
            seed: 0,
            sample_interval: None,
            scheduler: SchedulerKind::Global,
            telemetry: false,
        }
    }
}

/// One logical clock track.
#[derive(Debug, Clone, Copy)]
struct Track {
    /// Hardware reading at the last re-anchoring.
    hw_anchor: f64,
    /// Track value at the last re-anchoring.
    value_anchor: f64,
    /// Current rate multiplier relative to the hardware clock.
    multiplier: f64,
}

impl Track {
    fn value_at(&self, hw: f64) -> f64 {
        self.value_anchor + self.multiplier * (hw - self.hw_anchor)
    }
}

#[derive(Debug, Clone, Copy)]
struct TimerSlot {
    track: TrackId,
    target: f64,
    tag: TimerTag,
    /// Newtonian timers fire at an absolute simulation time instead of a
    /// track reading: `target` is interpreted in Newtonian seconds, the
    /// slot lives on `NodeState::newtonian_timers` rather than a track
    /// list, and re-anchoring a track never reschedules it. Used by the
    /// fault-lifecycle layer, whose transition times are spec-given
    /// Newtonian instants.
    newtonian: bool,
    /// Bumped on every reschedule (re-anchoring); stale heap entries
    /// carry an older generation and are skipped on pop.
    generation: u32,
    /// Bumped on every slot *reuse*; a [`TimerId`] carries the epoch it
    /// was issued under, so stale handles cannot cancel a successor
    /// timer occupying the same slot. Distinct from `generation`, which
    /// changes while one timer is still pending.
    epoch: u32,
    active: bool,
    /// Index of this slot's id inside its `track_timers` list — kept in
    /// sync on every insertion/removal so firing and cancelling are O(1)
    /// with no list scan.
    list_pos: usize,
}

/// A queued occurrence. Timers and messages are owned by one node and
/// dispatch on its shard; samples are engine-global and are handled by
/// the (serial) engine loop, never by a worker.
#[derive(Debug)]
pub(crate) enum Pending<M> {
    /// A timer of `node`'s slab firing.
    Timer {
        /// Owning node (whose slab `id` indexes).
        node: NodeId,
        /// Slot index in the owner's slab.
        id: usize,
        /// Schedule generation; stale entries are skipped.
        generation: u32,
    },
    /// A message delivery.
    Message {
        /// Sender.
        from: NodeId,
        /// Receiver (owns the event).
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// A periodic engine-global clock sample.
    Sample,
}

impl<M> Pending<M> {
    /// The node whose shard dispatches this event (samples are
    /// engine-global and have no owner).
    pub(crate) fn owner(&self) -> Option<NodeId> {
        match *self {
            Pending::Timer { node, .. } => Some(node),
            Pending::Message { to, .. } => Some(to),
            Pending::Sample => None,
        }
    }
}

/// Counters describing how much work a run performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched (timers + deliveries + samples).
    pub events: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Timers fired.
    pub timers: u64,
}

impl SimStats {
    /// Accumulates another stats block (used to merge per-worker
    /// counters).
    pub(crate) fn absorb(&mut self, other: SimStats) {
        self.events += other.events;
        self.messages += other.messages;
        self.timers += other.timers;
    }
}

/// A run that stopped early for a structural reason (as opposed to a
/// behavior panic, which unwinds).
///
/// Returned by [`Simulation::try_run_until`]. Everything processed
/// before the stop is preserved: the trace holds every emitted row and
/// sample, [`Simulation::now`] reports how far the run got, and the
/// simulation stays usable (workers parked, queues intact) — though a
/// retry of the same horizon reports the same error again.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// The parallel scheduler's conservative lookahead `d − U` fell
    /// below the f64 time resolution at the current simulation time, so
    /// no window can advance: `at + lookahead == at` in f64. This is a
    /// livelock, not a soundness issue — it occurs only at extreme
    /// magnitudes (`t / (d − U)` beyond ~2⁵³) where the float timeline
    /// itself can no longer separate events by the minimum delay.
    LookaheadVanished {
        /// The barrier time the run could not advance past.
        at: SimTime,
        /// The configured lookahead that vanished.
        lookahead: SimDuration,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RunError::LookaheadVanished { at, lookahead } => write!(
                f,
                "lookahead {} s vanishes at t = {at} (below f64 resolution): \
                 parallel windows cannot advance",
                lookahead.as_secs()
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// All mutable state owned by one node: its clock, tracks, timer slab,
/// and RNG streams. Behaviors only ever touch their own `NodeState`
/// (via [`Ctx`]), which is the disjointness the parallel executor
/// exploits.
pub(crate) struct NodeState {
    clock: HardwareClock,
    tracks: Vec<Track>,
    /// track → pending timer ids.
    track_timers: Vec<Vec<usize>>,
    /// Pending Newtonian (absolute-time) timer ids — the one timer list
    /// that `reanchor` never walks, since Newtonian targets are immune
    /// to track-rate changes.
    newtonian_timers: Vec<usize>,
    timer_slots: Vec<TimerSlot>,
    timer_free: Vec<usize>,
    rng: SimRng,
    /// Per-node message-delay stream. Keeping the stream per *sender*
    /// (instead of one engine-global stream) makes the sampled delays a
    /// pure function of the sender's own event sequence — required for
    /// the parallel executor to reproduce the serial engine exactly.
    delay_rng: SimRng,
    /// Monotone counter stamping every event this node creates; the
    /// deterministic tie-break of the global dispatch order.
    key_counter: u64,
}

impl NodeState {
    fn hardware_now(&mut self, now: SimTime) -> f64 {
        self.clock.hardware_time(now)
    }

    fn track_value(&mut self, track: TrackId, now: SimTime) -> f64 {
        let hw = self.hardware_now(now);
        self.tracks[track.index()].value_at(hw)
    }

    /// Newtonian time at which `track` reaches `target`; never earlier
    /// than `now`.
    fn when_track_reaches(&mut self, track: TrackId, target: f64, now: SimTime) -> SimTime {
        let tr = self.tracks[track.index()];
        let hw_target = tr.hw_anchor + (target - tr.value_anchor) / tr.multiplier;
        let hw_now = self.hardware_now(now);
        if hw_target <= hw_now {
            return now;
        }
        self.clock.when_hardware_reaches(hw_target)
    }

    fn next_tie(&mut self, node: NodeId) -> u128 {
        let c = self.key_counter;
        self.key_counter += 1;
        tie_for_node(node, c)
    }

    /// Unlinks a retired timer id from its track list in O(1) via the
    /// slot's back-pointer, repairing the pointer of the element swapped
    /// into its place.
    fn unlink_timer(&mut self, id: usize) {
        let slot = self.timer_slots[id];
        let list = if slot.newtonian {
            &mut self.newtonian_timers
        } else {
            &mut self.track_timers[slot.track.index()]
        };
        let pos = slot.list_pos;
        debug_assert_eq!(list[pos], id, "timer back-pointer out of sync");
        list.swap_remove(pos);
        if pos < list.len() {
            let moved = list[pos];
            self.timer_slots[moved].list_pos = pos;
        }
    }

    /// Returns whether a live timer was actually cancelled (stale
    /// handles and double-cancels are no-ops).
    fn cancel_timer(&mut self, timer: TimerId) -> bool {
        let id = timer.id;
        if id >= self.timer_slots.len() || !self.timer_slots[id].active {
            return false;
        }
        // A handle outliving its timer must not cancel an unrelated
        // timer that reused the slot: the epoch pins the handle to the
        // exact timer it was issued for.
        if self.timer_slots[id].epoch != timer.epoch {
            return false;
        }
        self.timer_slots[id].active = false;
        self.unlink_timer(id);
        self.timer_free.push(id);
        true
    }

    /// Retires a timer whose heap entry just fired: O(1), no allocation.
    fn retire_fired_timer(&mut self, id: usize) {
        self.timer_slots[id].active = false;
        self.unlink_timer(id);
        self.timer_free.push(id);
    }

    /// Deactivates every pending timer of this node in slot order and
    /// returns how many were live. Already-queued heap entries become
    /// stale (inactive slots are skipped on pop) — no heap surgery, no
    /// allocation beyond the free-list pushes.
    fn cancel_all_timers(&mut self) -> usize {
        let mut cancelled = 0;
        for id in 0..self.timer_slots.len() {
            if self.timer_slots[id].active {
                self.timer_slots[id].active = false;
                self.timer_free.push(id);
                cancelled += 1;
            }
        }
        for list in &mut self.track_timers {
            list.clear();
        }
        self.newtonian_timers.clear();
        cancelled
    }
}

impl std::fmt::Debug for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NodeState(tracks={}, timers={})",
            self.tracks.len(),
            self.timer_slots.len() - self.timer_free.len()
        )
    }
}

/// One node: its state plus its behavior (taken out while a callback
/// runs so the behavior can receive `&mut self` alongside a context).
pub(crate) struct NodeCell<M> {
    pub(crate) state: NodeState,
    pub(crate) behavior: Option<Box<dyn Behavior<M>>>,
}

/// Engine data shared read-only by every dispatch (worker or serial):
/// the configuration, the communication graph, and the telemetry side
/// channel (interior-mutable — all atomics). Mutated only between
/// [`Simulation::run_until`] calls.
pub(crate) struct SimShared {
    pub(crate) config: SimConfig,
    pub(crate) adjacency: Vec<Vec<NodeId>>,
    pub(crate) telemetry: Telemetry,
}

/// Where a dispatch pushes the events it creates.
pub(crate) enum QueueKind<'a, M> {
    /// The single-threaded engines: one [`ShardQueue`] in global
    /// `(time, tie)` pop order.
    Serial(&'a mut ShardQueue<Pending<M>>),
    /// The parallel store outside any window (`on_start`, i.e. the boot
    /// phase, runs serially).
    Boot(&'a mut ParQueue<M>),
    /// A worker advancing one shard inside a lookahead window: local
    /// events go straight into the owned shard, cross-shard events into
    /// the worker's per-destination outbox (flushed once per window).
    Worker {
        /// The shard currently being advanced.
        local: &'a mut Shard<Pending<M>>,
        /// Per-destination-shard batches of cross-shard sends.
        outbox: &'a mut [Vec<Entry<Pending<M>>>],
        /// Node → shard map.
        shard_of: &'a [u32],
        /// Index of `local` among the shards.
        my_shard: u32,
    },
}

impl<M> QueueKind<'_, M> {
    fn push(&mut self, dst: NodeId, time: SimTime, tie: u128, payload: Pending<M>, staged: bool) {
        match self {
            QueueKind::Serial(q) => {
                if staged {
                    q.stage_for_keyed(dst, time, tie, payload);
                } else {
                    q.push_for_keyed(dst, time, tie, payload);
                }
            }
            QueueKind::Boot(pq) => pq.push(dst, time, tie, payload),
            QueueKind::Worker {
                local,
                outbox,
                shard_of,
                my_shard,
            } => {
                let entry = Entry {
                    key: Key { time, tie },
                    payload,
                };
                let shard = shard_of[dst.index()];
                if shard == *my_shard {
                    if staged {
                        local.stage(entry);
                    } else {
                        local.heap.push(entry);
                    }
                } else {
                    // Cross-shard: batch in the worker's outbox; the
                    // whole window's batch is delivered to the
                    // destination inbox under one lock at the barrier.
                    // The lookahead floor keeps the arrival outside the
                    // current window, so deferred delivery is invisible.
                    outbox[shard as usize].push(entry);
                }
            }
        }
    }
}

/// Where a dispatch records behavior-emitted trace rows.
pub(crate) enum RowSink<'a> {
    /// Strict in-order mode: append to a scratch buffer that the serial
    /// engine flushes to the run's [`Observer`] right after the
    /// dispatch (whose order *is* the global order).
    Direct(&'a mut Vec<Row>),
    /// Relaxed mode: buffer per shard, tagged with the emitting event's
    /// key; merged into global order at the barrier, where the
    /// coordinator streams the merged batch to the observer.
    Buffered(&'a mut Vec<(Key, Row)>),
}

/// The mutable view of the simulation handed to behavior callbacks.
///
/// All interaction with the world — clocks, timers, messaging, tracing —
/// goes through this context. See [`Behavior`] for an example.
pub struct Ctx<'a, M> {
    node: NodeId,
    now: SimTime,
    /// Key of the event being dispatched (tags buffered rows).
    key: Key,
    state: &'a mut NodeState,
    shared: &'a SimShared,
    queue: QueueKind<'a, M>,
    rows: RowSink<'a>,
}

impl<M> std::fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ctx(node={}, now={})", self.node, self.now)
    }
}

impl<M: Clone> Ctx<'_, M> {
    /// The node this callback belongs to.
    #[must_use]
    pub fn my_id(&self) -> NodeId {
        self.node
    }

    /// Neighbors of this node in the communication graph.
    #[must_use]
    pub fn neighbors(&self) -> &[NodeId] {
        &self.shared.adjacency[self.node.index()]
    }

    /// Current reading of this node's hardware clock.
    #[must_use]
    pub fn hardware_now(&mut self) -> f64 {
        self.state.hardware_now(self.now)
    }

    /// Current Newtonian time.
    ///
    /// Correct-algorithm behaviors must not base decisions on this — it
    /// exists for Byzantine adversaries (which are omniscient by definition)
    /// and for trace annotation.
    #[must_use]
    pub fn newtonian_now(&self) -> SimTime {
        self.now
    }

    /// Current value of one of this node's clock tracks.
    #[must_use]
    pub fn track_value(&mut self, track: TrackId) -> f64 {
        self.state.track_value(track, self.now)
    }

    /// Current rate multiplier of a track.
    #[must_use]
    pub fn multiplier(&self, track: TrackId) -> f64 {
        self.state.tracks[track.index()].multiplier
    }

    /// Sets the rate multiplier of a track (relative to the hardware
    /// clock), re-anchoring it at the current instant.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not strictly positive.
    pub fn set_multiplier(&mut self, track: TrackId, multiplier: f64) {
        self.reanchor(track, None, multiplier);
    }

    /// Discontinuously sets a track's value, keeping its multiplier.
    ///
    /// Pending timers whose targets are now in the past fire immediately
    /// (at the current instant, after this callback returns).
    pub fn jump_track(&mut self, track: TrackId, value: f64) {
        let m = self.multiplier(track);
        self.reanchor(track, Some(value), m);
    }

    /// Creates an additional clock track with the given initial value and
    /// multiplier, returning its id.
    pub fn new_track(&mut self, initial: f64, multiplier: f64) -> TrackId {
        assert!(multiplier > 0.0, "track multipliers must be positive");
        let hw = self.state.hardware_now(self.now);
        self.state.tracks.push(Track {
            hw_anchor: hw,
            value_anchor: initial,
            multiplier,
        });
        self.state.track_timers.push(Vec::new());
        TrackId(self.state.tracks.len() - 1)
    }

    /// Re-anchors a track at the current instant with a new multiplier and
    /// (optionally) a new value, rescheduling its pending timers.
    ///
    /// This is the hottest control-path operation (once per node per round
    /// phase): it must not allocate. Rescheduling bumps each pending
    /// timer's generation — the stale heap entries are skipped on pop —
    /// and iterates the live-timer list in place by index.
    fn reanchor(&mut self, track: TrackId, new_value: Option<f64>, new_mult: f64) {
        assert!(new_mult > 0.0, "track multipliers must be positive");
        let hw = self.state.hardware_now(self.now);
        let tr = &mut self.state.tracks[track.index()];
        let value = new_value.unwrap_or_else(|| tr.value_at(hw));
        *tr = Track {
            hw_anchor: hw,
            value_anchor: value,
            multiplier: new_mult,
        };
        let count = self.state.track_timers[track.index()].len();
        for i in 0..count {
            let id = self.state.track_timers[track.index()][i];
            self.state.timer_slots[id].generation =
                self.state.timer_slots[id].generation.wrapping_add(1);
            self.schedule_timer_entry(id);
        }
    }

    fn schedule_timer_entry(&mut self, id: usize) {
        let slot = self.state.timer_slots[id];
        let time = if slot.newtonian {
            SimTime::from_secs(slot.target).max(self.now)
        } else {
            self.state
                .when_track_reaches(slot.track, slot.target, self.now)
        };
        let tie = self.state.next_tie(self.node);
        self.queue.push(
            self.node,
            time,
            tie,
            Pending::Timer {
                node: self.node,
                id,
                generation: slot.generation,
            },
            false,
        );
    }

    /// Schedules [`Behavior::on_timer`] for when `track` reaches `target`.
    ///
    /// If the target has already been reached, the timer fires at the
    /// current instant (after this callback returns).
    pub fn set_timer_at(&mut self, track: TrackId, target: f64, tag: TimerTag) -> TimerId {
        assert!(
            track.index() < self.state.tracks.len(),
            "unknown track {track:?} on {}",
            self.node
        );
        let list_pos = self.state.track_timers[track.index()].len();
        let slot = TimerSlot {
            track,
            target,
            tag,
            newtonian: false,
            generation: 0,
            epoch: 0,
            active: true,
            list_pos,
        };
        let id = self.install_timer_slot(slot);
        self.state.track_timers[track.index()].push(id);
        self.schedule_timer_entry(id);
        self.shared.telemetry.timer_set(self.node);
        TimerId {
            id,
            epoch: self.state.timer_slots[id].epoch,
        }
    }

    /// Schedules [`Behavior::on_timer`] at an absolute **Newtonian**
    /// instant, independent of every clock track.
    ///
    /// Unlike [`Ctx::set_timer_at`], the firing time is immune to rate
    /// changes and track jumps: the event is queued once with the
    /// standard `(time, source, counter)` dispatch key and never
    /// rescheduled. A target in the past fires at the current instant
    /// (after this callback returns). This is the scheduling primitive
    /// of the fault-lifecycle layer — transitions are spec-given
    /// Newtonian times, and omniscient-adversary machinery is the one
    /// place Newtonian scheduling is legitimate.
    pub fn set_timer_at_newtonian(&mut self, at_secs: f64, tag: TimerTag) -> TimerId {
        assert!(at_secs.is_finite(), "Newtonian timer target must be finite");
        let slot = TimerSlot {
            track: TrackId::MAIN,
            target: at_secs,
            tag,
            newtonian: true,
            generation: 0,
            epoch: 0,
            active: true,
            list_pos: self.state.newtonian_timers.len(),
        };
        let id = self.install_timer_slot(slot);
        self.state.newtonian_timers.push(id);
        self.schedule_timer_entry(id);
        self.shared.telemetry.timer_set(self.node);
        TimerId {
            id,
            epoch: self.state.timer_slots[id].epoch,
        }
    }

    /// Installs `slot` into the slab, reusing a free slot (bumping its
    /// generation and epoch so stale heap entries and stale handles
    /// cannot touch the new timer) or growing the slab.
    fn install_timer_slot(&mut self, slot: TimerSlot) -> usize {
        if let Some(id) = self.state.timer_free.pop() {
            let generation = self.state.timer_slots[id].generation.wrapping_add(1);
            let epoch = self.state.timer_slots[id].epoch.wrapping_add(1);
            self.state.timer_slots[id] = TimerSlot {
                generation,
                epoch,
                ..slot
            };
            id
        } else {
            self.state.timer_slots.push(slot);
            self.state.timer_slots.len() - 1
        }
    }

    /// Cancels **every** pending timer of this node (track-driven and
    /// Newtonian alike), returning how many were live.
    ///
    /// Already-queued heap entries are left in place and skipped as
    /// stale when popped. This is the shutdown primitive of crash and
    /// lifecycle behaviors: a crashed node must not drag its dead
    /// timers through the event queue for the rest of the run.
    pub fn cancel_all_timers(&mut self) -> usize {
        let cancelled = self.state.cancel_all_timers();
        self.shared
            .telemetry
            .timers_cancelled(self.node, cancelled as u64);
        cancelled
    }

    /// Drops every clock track except [`TrackId::MAIN`], which survives
    /// with its value and rate untouched.
    ///
    /// Requires that no pending timer references any track (call
    /// [`Ctx::cancel_all_timers`] first). The fault-lifecycle layer uses
    /// this when a node's behavior is replaced mid-run: the successor
    /// re-creates its tracks from scratch, and `new_track` hands out the
    /// same contiguous indices a boot-time start would have seen — so
    /// layout contracts like "track `1 + i` is estimator `i`" keep
    /// holding across recoveries, and tracks do not grow without bound
    /// under churn.
    ///
    /// # Panics
    ///
    /// Panics if any timer is still pending.
    pub fn reset_tracks(&mut self) {
        assert!(
            self.state.track_timers.iter().all(Vec::is_empty)
                && self.state.newtonian_timers.is_empty(),
            "reset_tracks with pending timers on {}: cancel_all_timers first",
            self.node
        );
        self.state.tracks.truncate(1);
        self.state.track_timers.truncate(1);
    }

    /// Cancels a pending timer; cancelling an already-fired or cancelled
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        if self.state.cancel_timer(timer) {
            self.shared.telemetry.timers_cancelled(self.node, 1);
        }
    }

    fn send_with(&mut self, to: NodeId, msg: M, staged: bool) {
        let from = self.node;
        let delay = self
            .shared
            .config
            .delay
            .sample(from, to, &mut self.state.delay_rng);
        let time = self.now + delay;
        let tie = self.state.next_tie(from);
        self.shared.telemetry.message_queued(from, to);
        self.queue
            .push(to, time, tie, Pending::Message { from, to, msg }, staged);
    }

    /// Sends `msg` to a neighbor; delivery is delayed per the configured
    /// [`DelayConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `to` is neither a neighbor nor the node itself — the
    /// communication graph restricts even Byzantine nodes.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            to == self.node || self.shared.adjacency[self.node.index()].contains(&to),
            "{} attempted to send to non-neighbor {}",
            self.node,
            to
        );
        self.send_with(to, msg, false);
    }

    /// Sends `msg` to every neighbor (not to the sender itself).
    ///
    /// The fan-out is staged in per-shard inboxes so each destination
    /// shard absorbs its share of the batch with one bulk heap merge
    /// instead of per-message sifting pushes.
    pub fn broadcast(&mut self, msg: M) {
        let count = self.shared.adjacency[self.node.index()].len();
        for i in 0..count {
            let to = self.shared.adjacency[self.node.index()][i];
            self.send_with(to, msg.clone(), true);
        }
    }

    /// Sends `msg` to every neighbor *and* to the sender itself (loopback
    /// with the same delay bounds) — the pulse semantics of ClusterSync,
    /// where a node also observes its own pulse. The loopback joins the
    /// broadcast's staged fan-out batch.
    pub fn broadcast_with_loopback(&mut self, msg: M) {
        self.broadcast(msg.clone());
        self.send_with(self.node, msg, true);
    }

    /// Sends `msg` only to the sender itself (a *virtual* pulse, used by
    /// silent estimator instances).
    pub fn send_self(&mut self, msg: M) {
        self.send_with(self.node, msg, false);
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.state.rng
    }

    /// Emits an untyped trace row.
    pub fn emit(&mut self, kind: &'static str, values: Vec<f64>) {
        let row = Row {
            t: self.now,
            node: self.node,
            kind,
            values,
        };
        match &mut self.rows {
            RowSink::Direct(rows) => rows.push(row),
            RowSink::Buffered(rows) => rows.push((self.key, row)),
        }
    }
}

/// Dispatches one popped timer or message event on its owning node.
/// Samples are engine-global and are handled by the callers directly.
#[allow(clippy::too_many_arguments)] // the flat list *is* the dispatch record
pub(crate) fn run_event<M: Clone>(
    cell: &mut NodeCell<M>,
    node: NodeId,
    shared: &SimShared,
    queue: QueueKind<'_, M>,
    rows: RowSink<'_>,
    stats: &mut SimStats,
    now: SimTime,
    key: Key,
    pending: Pending<M>,
) {
    match pending {
        Pending::Timer { id, generation, .. } => {
            let slot = cell.state.timer_slots[id];
            if !slot.active || slot.generation != generation {
                return;
            }
            // Retire the timer before dispatch so the behavior can set a
            // new one from the callback.
            cell.state.retire_fired_timer(id);
            stats.timers += 1;
            shared.telemetry.timer_fired(node);
            let mut behavior = cell.behavior.take().expect("behavior present");
            {
                let mut ctx = Ctx {
                    node,
                    now,
                    key,
                    state: &mut cell.state,
                    shared,
                    queue,
                    rows,
                };
                behavior.on_timer(&mut ctx, slot.tag);
            }
            cell.behavior = Some(behavior);
        }
        Pending::Message { from, msg, .. } => {
            stats.messages += 1;
            shared.telemetry.message_delivered(node);
            let mut behavior = cell.behavior.take().expect("behavior present");
            {
                let mut ctx = Ctx {
                    node,
                    now,
                    key,
                    state: &mut cell.state,
                    shared,
                    queue,
                    rows,
                };
                behavior.on_message(&mut ctx, from, &msg);
            }
            cell.behavior = Some(behavior);
        }
        Pending::Sample => unreachable!("samples are dispatched by the engine loop"),
    }
}

/// Runs one node's `on_start` (boot phase; always serial).
fn run_start<M: Clone>(
    cell: &mut NodeCell<M>,
    node: NodeId,
    shared: &SimShared,
    queue: QueueKind<'_, M>,
    rows: RowSink<'_>,
) {
    let mut behavior = cell.behavior.take().expect("behavior present");
    {
        let mut ctx = Ctx {
            node,
            now: SimTime::ZERO,
            key: Key {
                time: SimTime::ZERO,
                tie: 0,
            },
            state: &mut cell.state,
            shared,
            queue,
            rows,
        };
        behavior.on_start(&mut ctx);
    }
    cell.behavior = Some(behavior);
}

/// Records one engine-global clock sample over all nodes and streams it
/// to the observer.
pub(crate) fn take_sample<M>(cells: &mut [NodeCell<M>], now: SimTime, obs: &mut dyn Observer) {
    let n = cells.len();
    let mut logical = Vec::with_capacity(n);
    let mut hardware = Vec::with_capacity(n);
    for cell in cells.iter_mut() {
        let hw = cell.state.clock.hardware_time(now);
        logical.push(cell.state.tracks[TrackId::MAIN.index()].value_at(hw));
        hardware.push(hw);
    }
    obs.on_sample_owned(ClockSample {
        t: now,
        logical,
        hardware,
    });
}

/// Builder for a [`Simulation`].
///
/// # Examples
///
/// ```
/// use ftgcs_sim::engine::{SimBuilder, SimConfig};
/// use ftgcs_sim::node::{Behavior, NodeId, TimerTag};
/// use ftgcs_sim::engine::Ctx;
///
/// struct Quiet;
/// impl Behavior<()> for Quiet {
///     fn on_start(&mut self, _: &mut Ctx<'_, ()>) {}
///     fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
///     fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {}
/// }
///
/// let mut b = SimBuilder::new(SimConfig::default());
/// let a = b.add_node(Box::new(Quiet));
/// let c = b.add_node(Box::new(Quiet));
/// b.add_edge(a, c);
/// let sim = b.build();
/// assert_eq!(sim.node_count(), 2);
/// ```
pub struct SimBuilder<M> {
    config: SimConfig,
    behaviors: Vec<Box<dyn Behavior<M>>>,
    adjacency: Vec<Vec<NodeId>>,
    rate_overrides: Vec<Option<RateModel>>,
}

impl<M> std::fmt::Debug for SimBuilder<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimBuilder(nodes={})", self.behaviors.len())
    }
}

impl<M: Clone> SimBuilder<M> {
    /// Creates a builder with the given configuration and no nodes.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        SimBuilder {
            config,
            behaviors: Vec::new(),
            adjacency: Vec::new(),
            rate_overrides: Vec::new(),
        }
    }

    /// Adds a node driven by `behavior`, returning its id.
    pub fn add_node(&mut self, behavior: Box<dyn Behavior<M>>) -> NodeId {
        self.behaviors.push(behavior);
        self.adjacency.push(Vec::new());
        self.rate_overrides.push(None);
        NodeId(self.behaviors.len() - 1)
    }

    /// Adds an undirected communication edge.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, unknown endpoints, or duplicate edges.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(a, b, "self-loops are implicit (loopback), not edges");
        let n = self.behaviors.len();
        assert!(a.index() < n && b.index() < n, "unknown endpoint");
        assert!(
            !self.adjacency[a.index()].contains(&b),
            "duplicate edge {a}-{b}"
        );
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
    }

    /// Overrides the hardware rate model of one node.
    pub fn set_rate_model(&mut self, node: NodeId, model: RateModel) {
        self.rate_overrides[node.index()] = Some(model);
    }

    /// Finalizes the simulation. Behaviors' `on_start` runs on the first
    /// [`Simulation::run_until`] call.
    ///
    /// # Panics
    ///
    /// Panics if a sharded/parallel partition does not cover exactly the
    /// simulation's nodes, or if [`SchedulerKind::Parallel`] is selected
    /// with a zero lookahead (`d == U`) — the conservative windows would
    /// make no progress.
    #[must_use]
    pub fn build(self) -> Simulation<M> {
        let n = self.behaviors.len();
        let check_partition = |p: &Partition| {
            assert_eq!(
                p.node_count(),
                n,
                "scheduler partition covers {} nodes but the simulation has {n}",
                p.node_count()
            );
        };
        let store = match &self.config.scheduler {
            SchedulerKind::Global => EventStore::Serial(ShardQueue::new(&Partition::single(n))),
            SchedulerKind::Sharded(p) => {
                check_partition(p);
                EventStore::Serial(ShardQueue::new(p))
            }
            SchedulerKind::Parallel { partition, workers } => {
                check_partition(partition);
                assert!(
                    self.config.delay.min_delay().is_positive(),
                    "the parallel scheduler requires a positive lookahead (d − U > 0)"
                );
                let resolved = resolve_workers(*workers, partition.shard_count());
                EventStore::Parallel(ParQueue::new(partition, resolved))
            }
        };
        // The telemetry side channel needs its own node → shard map so
        // counter sites can attribute work without reaching into the
        // store (workers hold the store's shards exclusively).
        let telemetry = if self.config.telemetry {
            let (shard_of, nshards) = match &self.config.scheduler {
                SchedulerKind::Global => (vec![0u32; n], 1),
                SchedulerKind::Sharded(p) | SchedulerKind::Parallel { partition: p, .. } => {
                    (p.shard_map().to_vec(), p.shard_count())
                }
            };
            Telemetry::new(shard_of, nshards)
        } else {
            Telemetry::disabled()
        };
        let root = SimRng::seed_from(self.config.seed);
        let cells = self
            .behaviors
            .into_iter()
            .enumerate()
            .map(|(i, behavior)| {
                let model = self.rate_overrides[i]
                    .clone()
                    .unwrap_or_else(|| self.config.rate_model.clone());
                NodeCell {
                    state: NodeState {
                        clock: HardwareClock::new(
                            self.config.rho,
                            model,
                            root.derive("clock", i as u64),
                        ),
                        tracks: vec![Track {
                            hw_anchor: 0.0,
                            value_anchor: 0.0,
                            multiplier: 1.0,
                        }],
                        track_timers: vec![Vec::new()],
                        newtonian_timers: Vec::new(),
                        timer_slots: Vec::new(),
                        timer_free: Vec::new(),
                        rng: root.derive("node", i as u64),
                        delay_rng: root.derive("delay", i as u64),
                        key_counter: 0,
                    },
                    behavior: Some(behavior),
                }
            })
            .collect();
        Simulation {
            now: SimTime::ZERO,
            shared: SimShared {
                config: self.config,
                adjacency: self.adjacency,
                telemetry,
            },
            cells,
            store,
            trace: Trace::new(),
            stats: SimStats::default(),
            sample_seq: 0,
            started: false,
        }
    }
}

/// Where queued events live between dispatches.
pub(crate) enum EventStore<M> {
    /// The single-threaded engines (global heap or sharded).
    Serial(ShardQueue<Pending<M>>),
    /// The parallel executor's per-shard heaps.
    Parallel(ParQueue<M>),
}

/// A runnable discrete-event simulation.
pub struct Simulation<M> {
    pub(crate) now: SimTime,
    pub(crate) shared: SimShared,
    pub(crate) cells: Vec<NodeCell<M>>,
    pub(crate) store: EventStore<M>,
    pub(crate) trace: Trace,
    pub(crate) stats: SimStats,
    /// Tie counter for engine-global (sample) events.
    sample_seq: u64,
    started: bool,
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulation(nodes={}, now={}, events={})",
            self.cells.len(),
            self.now,
            self.stats.events
        )
    }
}

impl<M> Simulation<M> {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.cells.len()
    }

    /// Current Newtonian time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Work counters for the run so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Snapshot of the runtime telemetry recorded so far (see
    /// [`crate::telemetry`]). Always callable: when the simulation was
    /// built with `telemetry: false` the report is all zeros and says
    /// `enabled: false`.
    #[must_use]
    pub fn telemetry(&self) -> TelemetryReport {
        let (scheduler, workers, queue, planned) = match &self.store {
            EventStore::Serial(q) => {
                let label = match self.shared.config.scheduler {
                    SchedulerKind::Global => "global",
                    _ => "sharded",
                };
                (label, None, Some(q.stats()), None)
            }
            EventStore::Parallel(pq) => (
                "parallel",
                Some(pq.workers),
                None,
                Some(pq.planned_events.as_slice()),
            ),
        };
        self.shared
            .telemetry
            .report(scheduler, workers, self.stats, queue, planned)
    }

    /// The trace recorded so far.
    ///
    /// Populated by [`Simulation::run_until`]/[`Simulation::run_for`];
    /// streaming runs ([`Simulation::run_until_with`]) bypass it and
    /// leave it empty.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulation and returns its trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Current main logical clock value `L_v` of a node.
    #[must_use]
    pub fn logical_value(&mut self, node: NodeId) -> f64 {
        let now = self.now;
        self.cells[node.index()]
            .state
            .track_value(TrackId::MAIN, now)
    }

    /// Current value of an arbitrary track of a node.
    #[must_use]
    pub fn track_value_of(&mut self, node: NodeId, track: TrackId) -> f64 {
        let now = self.now;
        self.cells[node.index()].state.track_value(track, now)
    }

    /// Current hardware reading of a node.
    #[must_use]
    pub fn hardware_value(&mut self, node: NodeId) -> f64 {
        let now = self.now;
        self.cells[node.index()].state.hardware_now(now)
    }

    /// Switches the message-delay distribution mid-run. The bounds
    /// `[d−U, d]` are unchanged — the adversary is free to re-pick the
    /// schedule within them at any time, and regime switches (stretch
    /// with maximal delays, then compress with minimal ones) are the
    /// classic worst case for master/slave synchronization. Messages
    /// already in flight keep their sampled delays.
    pub fn set_delay_distribution(&mut self, distribution: DelayDistribution) {
        self.shared.config.delay.set_distribution(distribution);
    }

    /// Changes the clock-sampling interval mid-run (e.g. to record a
    /// short window at high resolution). Takes effect from the next
    /// pending sample; if sampling was configured off, a new chain
    /// starts at the current time.
    pub fn set_sample_interval(&mut self, interval: Option<SimDuration>) {
        let was_off = self.shared.config.sample_interval.is_none();
        self.shared.config.sample_interval = interval;
        if was_off && interval.is_some() && self.started {
            let now = self.now;
            self.push_sample(now);
        }
    }

    /// Schedules the next periodic sample. Samples are engine-global
    /// events dispatched in global order like everything else (the
    /// parallel executor handles them at barriers).
    fn push_sample(&mut self, time: SimTime) {
        match &mut self.store {
            EventStore::Serial(q) => {
                let tie = tie_for_engine(self.sample_seq);
                self.sample_seq += 1;
                q.push_unowned_keyed(time, tie, Pending::Sample);
            }
            EventStore::Parallel(pq) => pq.pending_samples.push(time),
        }
    }
}

impl<M: Clone + Send + 'static> Simulation<M> {
    pub(crate) fn start_if_needed(&mut self, obs: &mut dyn Observer) {
        if self.started {
            return;
        }
        self.started = true;
        if self.shared.config.sample_interval.is_some() {
            self.push_sample(SimTime::ZERO);
        }
        let Simulation {
            shared,
            cells,
            store,
            ..
        } = self;
        let mut scratch: Vec<Row> = Vec::new();
        for (i, cell) in cells.iter_mut().enumerate() {
            let queue = match store {
                EventStore::Serial(q) => QueueKind::Serial(q),
                EventStore::Parallel(pq) => QueueKind::Boot(pq),
            };
            run_start(
                cell,
                NodeId(i),
                shared,
                queue,
                RowSink::Direct(&mut scratch),
            );
            for row in scratch.drain(..) {
                obs.on_row_owned(row);
            }
        }
    }

    /// Processes events until Newtonian time `until` (inclusive); `now()`
    /// afterwards equals `until` even if the queue drained early.
    ///
    /// Samples and rows are collected into the internal [`Trace`]
    /// (see [`Simulation::trace`]); this is exactly
    /// [`Simulation::run_until_with`] pointed at that trace, which is
    /// the collect-everything [`Observer`].
    pub fn run_until(&mut self, until: SimTime) {
        if let Err(e) = self.try_run_until(until) {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`Simulation::run_until`]: structural stops
    /// (see [`RunError`]) come back as `Err` instead of a panic.
    ///
    /// On `Err`, everything processed before the stop is preserved —
    /// the trace holds every row and sample emitted so far,
    /// [`Simulation::now`] reports the stuck time, and the simulation
    /// (including a parallel worker pool, parked cleanly at its gate)
    /// stays alive. Behavior panics still unwind, with the same
    /// partial-trace preservation.
    pub fn try_run_until(&mut self, until: SimTime) -> Result<(), RunError> {
        let mut trace = std::mem::take(&mut self.trace);
        // Restore the trace even if a behavior panics, so everything
        // recorded up to the panic stays inspectable (the historical
        // contract, when the trace never left `self`). Unwind safety:
        // the trace is written back whole and the panic re-raised
        // immediately.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.try_run_until_with(until, &mut trace)
        }));
        self.trace = trace;
        match outcome {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// Processes events until `until`, streaming every sample and row to
    /// `obs` instead of materializing them.
    ///
    /// The observer receives samples and rows in the global dispatch
    /// order on every scheduler (the parallel executor merges its
    /// per-shard buffers back into that order at each barrier), so a
    /// collect-everything observer reproduces [`Simulation::run_until`]
    /// byte-for-byte — pinned by `tests/observer_equivalence.rs`. The
    /// internal trace stays empty during streaming runs. Callers should
    /// invoke [`Observer::on_finish`] once after the last call.
    pub fn run_until_with(&mut self, until: SimTime, obs: &mut dyn Observer) {
        if let Err(e) = self.try_run_until_with(until, obs) {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`Simulation::run_until_with`] — the streaming
    /// counterpart of [`Simulation::try_run_until`], with the same
    /// partial-progress guarantees on `Err` (every row and sample below
    /// the stuck time has already been streamed to `obs`, in order).
    pub fn try_run_until_with(
        &mut self,
        until: SimTime,
        obs: &mut dyn Observer,
    ) -> Result<(), RunError> {
        self.start_if_needed(obs);
        // Whole-run wall clock (telemetry side channel; inert stamp
        // when telemetry is off).
        let t0 = self.shared.telemetry.stamp();
        let result = match self.store {
            EventStore::Serial(_) => {
                self.run_serial(until, obs);
                Ok(())
            }
            EventStore::Parallel(_) => self.run_parallel(until, obs),
        };
        self.shared.telemetry.phase(Phase::Total, t0);
        result
    }

    fn run_serial(&mut self, until: SimTime, obs: &mut dyn Observer) {
        let Simulation {
            now,
            shared,
            cells,
            store,
            stats,
            sample_seq,
            ..
        } = self;
        let EventStore::Serial(queue) = store else {
            unreachable!("run_serial on a parallel store");
        };
        // Per-dispatch row scratch, flushed to the observer after every
        // event so rows stream out in the exact dispatch order. The
        // buffer is reused across events — no steady-state allocation.
        let mut scratch: Vec<Row> = Vec::new();
        while let Some((key, pending)) = queue.pop_before_keyed(until) {
            let time = key.time;
            debug_assert!(time >= *now, "time went backwards");
            *now = time;
            stats.events += 1;
            match pending {
                Pending::Sample => {
                    shared.telemetry.sample_dispatched();
                    take_sample(cells, time, obs);
                    // Re-arm unconditionally: events beyond `until` stay
                    // queued, so sampling continues across consecutive
                    // run_until calls (`None` pauses the chain; a later
                    // set_sample_interval resumes it).
                    if let Some(interval) = shared.config.sample_interval {
                        let tie = tie_for_engine(*sample_seq);
                        *sample_seq += 1;
                        queue.push_unowned_keyed(time + interval, tie, Pending::Sample);
                    }
                }
                pending => {
                    let node = pending.owner().expect("timer/message has an owner");
                    shared.telemetry.event_dispatched(node);
                    run_event(
                        &mut cells[node.index()],
                        node,
                        shared,
                        QueueKind::Serial(queue),
                        RowSink::Direct(&mut scratch),
                        stats,
                        time,
                        key,
                        pending,
                    );
                    for row in scratch.drain(..) {
                        obs.on_row_owned(row);
                    }
                }
            }
        }
        *now = until;
    }

    /// Runs for a further duration of Newtonian time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.now + duration;
        self.run_until(until);
    }

    /// Streaming twin of [`Simulation::run_for`]: runs for a further
    /// duration, feeding `obs` instead of the internal trace.
    pub fn run_for_with(&mut self, duration: SimDuration, obs: &mut dyn Observer) {
        let until = self.now + duration;
        self.run_until_with(until, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DelayDistribution;
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    enum Msg {
        Ping,
    }

    struct PingPong {
        log: Arc<Mutex<Vec<(NodeId, f64)>>>,
        max_rounds: usize,
        seen: usize,
    }

    impl Behavior<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.my_id() == NodeId(0) {
                ctx.broadcast(Msg::Ping);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {
            self.log
                .lock()
                .unwrap()
                .push((ctx.my_id(), ctx.newtonian_now().as_secs()));
            self.seen += 1;
            if self.seen < self.max_rounds {
                ctx.broadcast(Msg::Ping);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {}
    }

    fn fixed_delay_config() -> SimConfig {
        SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_millis(1.0),
                SimDuration::ZERO,
                DelayDistribution::Maximal,
            ),
            rho: 0.0,
            rate_model: RateModel::Constant { frac: 0.0 },
            seed: 42,
            sample_interval: None,
            scheduler: SchedulerKind::Global,
            telemetry: false,
        }
    }

    /// Emits one row per timer tick and panics on the third.
    struct EmitThenBoom {
        ticks: u32,
    }

    impl Behavior<Msg> for EmitThenBoom {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer_at(TrackId::MAIN, 0.1, TimerTag::new(0));
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
            self.ticks += 1;
            assert!(self.ticks < 3, "boom");
            ctx.emit("tick", vec![f64::from(self.ticks)]);
            let next = ctx.track_value(TrackId::MAIN) + 0.1;
            ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
        }
    }

    #[test]
    fn trace_recorded_before_a_behavior_panic_is_preserved() {
        let mut b = SimBuilder::new(fixed_delay_config());
        b.add_node(Box::new(EmitThenBoom { ticks: 0 }));
        let mut sim = b.build();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_until(SimTime::from_secs(1.0));
        }));
        assert!(outcome.is_err(), "the behavior must have panicked");
        // Everything materialized before the panic stays inspectable.
        assert_eq!(sim.trace().rows.len(), 2);
        assert_eq!(sim.trace().rows[0].kind, "tick");
    }

    #[test]
    fn messages_arrive_with_exact_delay() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut b = SimBuilder::new(fixed_delay_config());
        let a = b.add_node(Box::new(PingPong {
            log: log.clone(),
            max_rounds: 3,
            seen: 0,
        }));
        let c = b.add_node(Box::new(PingPong {
            log: log.clone(),
            max_rounds: 3,
            seen: 0,
        }));
        b.add_edge(a, c);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1.0));
        let log = log.lock().unwrap();
        // Ping bounces: n1 at 1ms, n0 at 2ms, n1 at 3ms, ...
        assert!(log.len() >= 4);
        for (i, (node, t)) in log.iter().take(4).enumerate() {
            assert_eq!(node.index(), (i + 1) % 2);
            assert!((t - 1e-3 * (i + 1) as f64).abs() < 1e-12);
        }
    }

    struct TimerNode {
        fired: Arc<Mutex<Vec<f64>>>,
        plan: &'static str,
    }

    impl Behavior<()> for TimerNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            match self.plan {
                "simple" => {
                    ctx.set_timer_at(TrackId::MAIN, 2.0, TimerTag::new(0));
                }
                "retimed" => {
                    ctx.set_timer_at(TrackId::MAIN, 2.0, TimerTag::new(0));
                    // At logical 1.0, double the rate.
                    ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1));
                }
                "jump" => {
                    ctx.set_timer_at(TrackId::MAIN, 5.0, TimerTag::new(0));
                    ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1));
                }
                _ => unreachable!(),
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
            match tag.kind {
                0 => self
                    .fired
                    .lock()
                    .unwrap()
                    .push(ctx.newtonian_now().as_secs()),
                1 if self.plan == "retimed" => ctx.set_multiplier(TrackId::MAIN, 2.0),
                1 if self.plan == "jump" => ctx.jump_track(TrackId::MAIN, 10.0),
                _ => unreachable!(),
            }
        }
    }

    fn run_timer_plan(plan: &'static str) -> Vec<f64> {
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut b = SimBuilder::new(fixed_delay_config());
        b.add_node(Box::new(TimerNode {
            fired: fired.clone(),
            plan,
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(100.0));
        let v = fired.lock().unwrap().clone();
        v
    }

    #[test]
    fn timer_fires_at_exact_logical_target() {
        let fired = run_timer_plan("simple");
        assert_eq!(fired.len(), 1);
        assert!((fired[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiplier_change_reschedules_timer() {
        // Rate 1 until L=1 (t=1), then rate 2: L=2 at t = 1 + 0.5.
        let fired = run_timer_plan("retimed");
        assert_eq!(fired.len(), 1);
        assert!((fired[0] - 1.5).abs() < 1e-12, "fired at {}", fired[0]);
    }

    #[test]
    fn jump_past_target_fires_immediately() {
        // Timer at L=5; at t=1 the track jumps to 10 → fires at t=1.
        let fired = run_timer_plan("jump");
        assert_eq!(fired.len(), 1);
        assert!((fired[0] - 1.0).abs() < 1e-12, "fired at {}", fired[0]);
    }

    struct CancelNode {
        fired: Arc<Mutex<Vec<u32>>>,
    }

    impl Behavior<()> for CancelNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            let t1 = ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1));
            ctx.set_timer_at(TrackId::MAIN, 2.0, TimerTag::new(2));
            ctx.cancel_timer(t1);
            ctx.cancel_timer(t1); // double-cancel is a no-op
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
            self.fired.lock().unwrap().push(tag.kind);
        }
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut b = SimBuilder::new(fixed_delay_config());
        b.add_node(Box::new(CancelNode {
            fired: fired.clone(),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(*fired.lock().unwrap(), vec![2]);
    }

    /// Exercises the lifecycle primitives: Newtonian timers,
    /// `cancel_all_timers`, and `reset_tracks`.
    struct LifecyclePrims {
        fired: Arc<Mutex<Vec<(u32, f64)>>>,
        plan: &'static str,
    }

    impl Behavior<()> for LifecyclePrims {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            match self.plan {
                "newtonian" => {
                    // Track runs at double rate: the logical timer for
                    // L = 2 fires at t = 1, while the Newtonian timer
                    // for t = 2 ignores the track entirely.
                    ctx.set_multiplier(TrackId::MAIN, 2.0);
                    ctx.set_timer_at(TrackId::MAIN, 2.0, TimerTag::new(1));
                    ctx.set_timer_at_newtonian(2.0, TimerTag::new(2));
                }
                "newtonian-reanchor" => {
                    // A value jump reschedules pending logical timers
                    // (reanchor) but must leave Newtonian ones alone.
                    ctx.set_timer_at_newtonian(3.0, TimerTag::new(2));
                    ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1));
                }
                "newtonian-past" => {
                    // A target in the past clamps to "now" (fires on the
                    // next dispatch), never schedules backwards.
                    ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1));
                }
                "cancel-all" | "reset" => {
                    ctx.set_timer_at(TrackId::MAIN, 2.0, TimerTag::new(3));
                    ctx.set_timer_at_newtonian(2.5, TimerTag::new(4));
                    ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1));
                }
                "reset-pending" => {
                    ctx.set_timer_at(TrackId::MAIN, 2.0, TimerTag::new(3));
                    ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1));
                }
                _ => unreachable!(),
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
            self.fired
                .lock()
                .unwrap()
                .push((tag.kind, ctx.newtonian_now().as_secs()));
            if tag.kind != 1 {
                return;
            }
            match self.plan {
                "newtonian-reanchor" => ctx.jump_track(TrackId::MAIN, 10.0),
                "newtonian-past" => {
                    ctx.set_timer_at_newtonian(0.25, TimerTag::new(2));
                }
                "cancel-all" => {
                    assert_eq!(ctx.cancel_all_timers(), 2);
                    assert_eq!(ctx.cancel_all_timers(), 0);
                }
                "reset" => {
                    let extra = ctx.new_track(0.0, 1.0);
                    assert_eq!(extra.index(), 1);
                    ctx.cancel_all_timers();
                    ctx.reset_tracks();
                    // A fresh track re-issues the first extra index.
                    assert_eq!(ctx.new_track(5.0, 1.0).index(), 1);
                }
                "reset-pending" => ctx.reset_tracks(),
                _ => {}
            }
        }
    }

    fn run_lifecycle_plan(plan: &'static str) -> Vec<(u32, f64)> {
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut b = SimBuilder::new(fixed_delay_config());
        b.add_node(Box::new(LifecyclePrims {
            fired: fired.clone(),
            plan,
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10.0));
        let v = fired.lock().unwrap().clone();
        v
    }

    #[test]
    fn newtonian_timer_ignores_track_rate() {
        let fired = run_lifecycle_plan("newtonian");
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].0, 1);
        assert!(
            (fired[0].1 - 1.0).abs() < 1e-12,
            "logical at {}",
            fired[0].1
        );
        assert_eq!(fired[1].0, 2);
        assert!(
            (fired[1].1 - 2.0).abs() < 1e-12,
            "newtonian at {}",
            fired[1].1
        );
    }

    #[test]
    fn newtonian_timer_survives_reanchor() {
        // The jump at t = 1 fires nothing early: the Newtonian timer
        // still lands at exactly t = 3.
        let fired = run_lifecycle_plan("newtonian-reanchor");
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[1].0, 2);
        assert!((fired[1].1 - 3.0).abs() < 1e-12, "fired at {}", fired[1].1);
    }

    #[test]
    fn newtonian_timer_in_the_past_fires_now() {
        let fired = run_lifecycle_plan("newtonian-past");
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[1].0, 2);
        assert!((fired[1].1 - 1.0).abs() < 1e-12, "fired at {}", fired[1].1);
    }

    #[test]
    fn cancel_all_timers_silences_both_kinds() {
        let fired = run_lifecycle_plan("cancel-all");
        assert_eq!(fired, vec![(1, 1.0)]);
    }

    #[test]
    fn reset_tracks_reissues_track_indices() {
        let fired = run_lifecycle_plan("reset");
        assert_eq!(fired, vec![(1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "cancel_all_timers first")]
    fn reset_tracks_with_pending_timers_panics() {
        let _ = run_lifecycle_plan("reset-pending");
    }

    struct StaleCanceller {
        fired: Arc<Mutex<Vec<u32>>>,
        first: Option<TimerId>,
    }

    impl Behavior<()> for StaleCanceller {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.first = Some(ctx.set_timer_at(TrackId::MAIN, 1.0, TimerTag::new(1)));
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
            self.fired.lock().unwrap().push(tag.kind);
            if tag.kind == 1 {
                // Timer 1 just fired, freeing its slot; the next timer
                // reuses it. Cancelling the *stale* handle must be a
                // no-op and leave the successor alive.
                let successor = ctx.set_timer_at(TrackId::MAIN, 2.0, TimerTag::new(2));
                let stale = self.first.take().expect("handle stored at start");
                assert_ne!(stale, successor, "epoch must distinguish reused slots");
                ctx.cancel_timer(stale);
            }
        }
    }

    #[test]
    fn stale_handle_cannot_cancel_a_slot_reusing_successor() {
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut b = SimBuilder::new(fixed_delay_config());
        b.add_node(Box::new(StaleCanceller {
            fired: fired.clone(),
            first: None,
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(*fired.lock().unwrap(), vec![1, 2]);
    }

    struct Extra {
        track: Option<TrackId>,
    }

    impl Behavior<()> for Extra {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            let tr = ctx.new_track(100.0, 0.5);
            self.track = Some(tr);
            ctx.set_timer_at(tr, 101.0, TimerTag::new(7));
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
            assert_eq!(tag.kind, 7);
            ctx.emit("extra_fired", vec![ctx.newtonian_now().as_secs()]);
        }
    }

    #[test]
    fn extra_tracks_advance_at_their_multiplier() {
        let mut b = SimBuilder::new(fixed_delay_config());
        b.add_node(Box::new(Extra { track: None }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10.0));
        // multiplier 0.5 → track gains 1.0 after 2 s.
        let rows: Vec<_> = sim.trace().rows_of_kind("extra_fired").collect();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].values[0] - 2.0).abs() < 1e-12);
        assert_eq!(
            sim.track_value_of(NodeId(0), TrackId(1)),
            100.0 + 0.5 * 10.0
        );
    }

    #[test]
    fn sampling_records_grid() {
        let mut config = fixed_delay_config();
        config.sample_interval = Some(SimDuration::from_secs(0.25));
        let mut b = SimBuilder::new(config);
        b.add_node(Box::new(CancelNode {
            fired: Arc::new(Mutex::new(Vec::new())),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1.0));
        let samples = &sim.trace().samples;
        assert_eq!(samples.len(), 5); // t = 0, .25, .5, .75, 1.0
        assert!((samples[4].logical[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut config = SimConfig {
                seed: 7,
                ..SimConfig::default()
            };
            config.sample_interval = Some(SimDuration::from_millis(100.0));
            let mut b = SimBuilder::new(config);
            let a = b.add_node(Box::new(PingPong {
                log: log.clone(),
                max_rounds: 50,
                seen: 0,
            }));
            let c = b.add_node(Box::new(PingPong {
                log: log.clone(),
                max_rounds: 50,
                seen: 0,
            }));
            b.add_edge(a, c);
            let mut sim = b.build();
            sim.run_until(SimTime::from_secs(1.0));
            let v = log.lock().unwrap().clone();
            (v, sim.stats())
        };
        let (l1, s1) = run();
        let (l2, s2) = run();
        assert_eq!(l1, l2);
        assert_eq!(s1, s2);
        assert!(s1.messages > 0);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        struct Bad;
        impl Behavior<()> for Bad {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send(NodeId(1), ());
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {}
        }
        let mut b = SimBuilder::new(fixed_delay_config());
        b.add_node(Box::new(Bad));
        b.add_node(Box::new(CancelNode {
            fired: Arc::new(Mutex::new(Vec::new())),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1.0));
    }

    #[test]
    fn run_until_advances_now_even_when_idle() {
        let mut b = SimBuilder::<()>::new(fixed_delay_config());
        b.add_node(Box::new(CancelNode {
            fired: Arc::new(Mutex::new(Vec::new())),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(3.5));
        assert_eq!(sim.now(), SimTime::from_secs(3.5));
        sim.run_for(SimDuration::from_secs(0.5));
        assert_eq!(sim.now(), SimTime::from_secs(4.0));
        assert!((sim.logical_value(NodeId(0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_survives_consecutive_run_until_calls() {
        let mut config = fixed_delay_config();
        config.sample_interval = Some(SimDuration::from_millis(100.0));
        let mut b = SimBuilder::<()>::new(config);
        b.add_node(Box::new(CancelNode {
            fired: Arc::new(Mutex::new(Vec::new())),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1.0));
        let after_first = sim.trace().samples.len();
        sim.run_until(SimTime::from_secs(2.0));
        let after_second = sim.trace().samples.len();
        assert!(after_first >= 10);
        // The sample chain must keep running in the second window.
        assert!(
            after_second >= after_first + 9,
            "sampling died between run_until calls: {after_first} -> {after_second}"
        );
    }

    #[test]
    fn sample_interval_can_be_retuned_mid_run() {
        let mut config = fixed_delay_config();
        config.sample_interval = Some(SimDuration::from_millis(500.0));
        let mut b = SimBuilder::<()>::new(config);
        b.add_node(Box::new(CancelNode {
            fired: Arc::new(Mutex::new(Vec::new())),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1.0));
        let coarse = sim.trace().samples.len();
        sim.set_sample_interval(Some(SimDuration::from_millis(10.0)));
        sim.run_until(SimTime::from_secs(2.0));
        let fine = sim.trace().samples.len() - coarse;
        assert!(coarse <= 4, "coarse phase oversampled: {coarse}");
        // The new interval takes effect after the pending coarse sample
        // (up to one old interval of latency), so ~50 of the 100 fine
        // slots are guaranteed.
        assert!(fine >= 45, "fine phase undersampled: {fine}");
    }

    #[test]
    fn delay_distribution_switch_applies_to_new_messages() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut config = fixed_delay_config();
        // U = 0.5 ms so Maximal (1 ms) and Minimal (0.5 ms) differ.
        config.delay = DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(500.0),
            DelayDistribution::Maximal,
        );
        let mut b = SimBuilder::new(config);
        let a = b.add_node(Box::new(PingPong {
            log: log.clone(),
            max_rounds: 100,
            seen: 0,
        }));
        let c = b.add_node(Box::new(PingPong {
            log: log.clone(),
            max_rounds: 100,
            seen: 0,
        }));
        b.add_edge(a, c);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(0.0105));
        // ~10 hops at 1 ms each.
        let hops_maximal = log.lock().unwrap().len();
        sim.set_delay_distribution(DelayDistribution::Minimal);
        sim.run_until(SimTime::from_secs(0.021));
        let hops_minimal = log.lock().unwrap().len() - hops_maximal;
        // Same wall-clock window, half the delay: about twice the hops.
        assert!(
            hops_minimal >= hops_maximal + 5,
            "minimal-delay phase should roughly double throughput: \
             {hops_maximal} then {hops_minimal}"
        );
    }
}
