//! Streaming observation of a running simulation.
//!
//! Historically the engine materialized everything it recorded into a
//! [`Trace`] — every periodic [`ClockSample`] and every behavior-emitted
//! [`Row`] appended to `Vec`s. That caps run length and node count by
//! memory: an hour-long million-event run holds *all* of its history
//! before any analysis sees a single byte.
//!
//! An [`Observer`] inverts the flow: the engine calls the observer the
//! instant each sample or row is produced, **in the exact global
//! dispatch order** — on every scheduler, including the parallel one,
//! whose per-shard buffers are merged back into the strict serial order
//! before the observer sees them. Bounded-memory observers (streaming
//! skew accumulators, windowed CSV writers — see `ftgcs_metrics`) then
//! keep O(nodes) state regardless of run length.
//!
//! [`Trace`] itself is reimplemented as the collect-everything observer:
//! `Simulation::run_until` is literally `run_until_with` pointed at the
//! simulation's internal `Trace`. The observer/trace equivalence suite
//! (`tests/observer_equivalence.rs`) pins the two paths byte-identical
//! on every scheduler.
//!
//! # Examples
//!
//! Count rows by kind without materializing them:
//!
//! ```
//! use ftgcs_sim::observe::Observer;
//! use ftgcs_sim::trace::{ClockSample, Row};
//!
//! #[derive(Default)]
//! struct PulseCounter {
//!     pulses: u64,
//! }
//!
//! impl Observer for PulseCounter {
//!     fn on_row(&mut self, row: &Row) {
//!         if row.kind == "pulse" {
//!             self.pulses += 1;
//!         }
//!     }
//! }
//!
//! let mut counter = PulseCounter::default();
//! // sim.run_until_with(until, &mut counter) would stream into it.
//! assert_eq!(counter.pulses, 0);
//! ```

use crate::engine::SimStats;
use crate::trace::{ClockSample, Row, Trace};

/// A streaming sink for simulation output.
///
/// The engine invokes the callbacks in the global dispatch order — the
/// same order the rows and samples would occupy in a materialized
/// [`Trace`] — regardless of scheduler kind or worker count. All
/// callbacks default to no-ops so observers implement only what they
/// consume.
///
/// Drivers call [`Observer::on_finish`] exactly once after the last
/// `run_until_with` call of a run (e.g. `Scenario::run_streaming` in the
/// `ftgcs` crate does this); observers that buffer output should flush
/// there.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::engine::{SimBuilder, SimConfig, Ctx};
/// use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
/// use ftgcs_sim::observe::Observer;
/// use ftgcs_sim::time::{SimDuration, SimTime};
/// use ftgcs_sim::trace::ClockSample;
///
/// /// O(1)-memory running maximum of the clock spread.
/// #[derive(Default)]
/// struct MaxSpread(f64);
///
/// impl Observer for MaxSpread {
///     fn on_sample(&mut self, s: &ClockSample) {
///         let max = s.logical.iter().cloned().fold(f64::MIN, f64::max);
///         let min = s.logical.iter().cloned().fold(f64::MAX, f64::min);
///         self.0 = self.0.max(max - min);
///     }
/// }
///
/// struct Quiet;
/// impl Behavior<()> for Quiet {
///     fn on_start(&mut self, _: &mut Ctx<'_, ()>) {}
///     fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
///     fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {}
/// }
///
/// let mut b = SimBuilder::new(SimConfig {
///     sample_interval: Some(SimDuration::from_millis(100.0)),
///     ..SimConfig::default()
/// });
/// b.add_node(Box::new(Quiet));
/// let mut sim = b.build();
/// let mut spread = MaxSpread::default();
/// sim.run_until_with(SimTime::from_secs(1.0), &mut spread);
/// spread.on_finish(&sim.stats());
/// assert!(spread.0 >= 0.0);
/// // The internal trace stays empty: nothing was materialized.
/// assert!(sim.trace().samples.is_empty());
/// ```
pub trait Observer {
    /// Called for every periodic engine-global clock sample, in time
    /// order.
    fn on_sample(&mut self, _sample: &ClockSample) {}

    /// Called for every behavior-emitted row, in global dispatch order.
    fn on_row(&mut self, _row: &Row) {}

    /// Ownership-passing variant of [`Observer::on_sample`]. The engine
    /// calls this where it holds the freshly built sample, so
    /// collecting observers ([`Trace`]) can move it instead of cloning;
    /// the default delegates to `on_sample`, so streaming observers
    /// implement only the borrowed form. Overrides must stay
    /// behaviorally identical to `on_sample` — the engine picks
    /// whichever form fits the call site.
    fn on_sample_owned(&mut self, sample: ClockSample) {
        self.on_sample(&sample);
    }

    /// Ownership-passing variant of [`Observer::on_row`]; same contract
    /// as [`Observer::on_sample_owned`].
    fn on_row_owned(&mut self, row: Row) {
        self.on_row(&row);
    }

    /// Called once by the driver when the run is complete.
    fn on_finish(&mut self, _stats: &SimStats) {}
}

/// [`Trace`] is the collect-everything observer: it collects every
/// sample and row into its `Vec`s, reproducing the classic materialized
/// trace. The owned callbacks move; the borrowed ones clone — so
/// `run_until` (which feeds the internal trace through the owned path)
/// costs what the pre-observer engine did.
impl Observer for Trace {
    fn on_sample(&mut self, sample: &ClockSample) {
        self.samples.push(sample.clone());
    }

    fn on_row(&mut self, row: &Row) {
        self.rows.push(row.clone());
    }

    fn on_sample_owned(&mut self, sample: ClockSample) {
        self.samples.push(sample);
    }

    fn on_row_owned(&mut self, row: Row) {
        self.rows.push(row);
    }
}

/// Fans every callback out to several observers, in order.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::observe::{Fanout, Observer};
/// use ftgcs_sim::trace::Trace;
///
/// let mut a = Trace::new();
/// let mut b = Trace::new();
/// {
///     let mut fan = Fanout::new(vec![&mut a, &mut b]);
///     fan.on_row(&ftgcs_sim::trace::Row {
///         t: ftgcs_sim::time::SimTime::ZERO,
///         node: ftgcs_sim::node::NodeId(0),
///         kind: "pulse",
///         values: vec![],
///     });
/// }
/// assert_eq!(a.rows.len(), 1);
/// assert_eq!(b.rows.len(), 1);
/// ```
pub struct Fanout<'a> {
    sinks: Vec<&'a mut dyn Observer>,
}

impl std::fmt::Debug for Fanout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fanout(sinks={})", self.sinks.len())
    }
}

impl<'a> Fanout<'a> {
    /// Creates a fan-out over the given sinks.
    #[must_use]
    pub fn new(sinks: Vec<&'a mut dyn Observer>) -> Self {
        Fanout { sinks }
    }
}

impl Observer for Fanout<'_> {
    fn on_sample(&mut self, sample: &ClockSample) {
        for s in &mut self.sinks {
            s.on_sample(sample);
        }
    }

    fn on_row(&mut self, row: &Row) {
        for s in &mut self.sinks {
            s.on_row(row);
        }
    }

    fn on_finish(&mut self, stats: &SimStats) {
        for s in &mut self.sinks {
            s.on_finish(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::time::SimTime;

    #[test]
    fn trace_observer_collects_everything() {
        let mut t = Trace::new();
        let sample = ClockSample {
            t: SimTime::from_secs(1.0),
            logical: vec![1.0, 2.0],
            hardware: vec![1.0, 2.0],
        };
        let row = Row {
            t: SimTime::from_secs(0.5),
            node: NodeId(1),
            kind: "pulse",
            values: vec![3.0],
        };
        t.on_sample(&sample);
        t.on_row(&row);
        t.on_finish(&SimStats::default());
        assert_eq!(t.samples, vec![sample]);
        assert_eq!(t.rows, vec![row]);
    }

    #[test]
    fn fanout_delivers_to_all_sinks_in_order() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        let sample = ClockSample {
            t: SimTime::ZERO,
            logical: vec![0.0],
            hardware: vec![0.0],
        };
        {
            let mut fan = Fanout::new(vec![&mut a, &mut b]);
            fan.on_sample(&sample);
            fan.on_finish(&SimStats::default());
        }
        assert_eq!(a.samples.len(), 1);
        assert_eq!(b.samples.len(), 1);
    }
}
