//! Sharded event scheduling with conservative lookahead.
//!
//! The engine's event queue can be split into *shards* — one per cluster
//! of the simulated network — each owning a private binary heap. The
//! split exploits the seam the paper's model provides: every
//! inter-cluster message is delayed by at least `d − U > 0`, so a shard
//! that is globally earliest can process a *run* of its own events
//! without consulting the others (Chandy–Misra-style conservative
//! synchronization, here as a single-threaded min-merge over shard
//! heads rather than null messages).
//!
//! Concretely, [`ShardQueue`] maintains for the currently *selected*
//! shard a **horizon**: the smallest event key any other shard could
//! dispatch next. While the selected shard's head stays below the
//! horizon it pops from its own heap only (the fast path); cross-shard
//! sends lower the horizon as they are staged, which is exactly the
//! lookahead barrier. Events carry a `(time, seq)` key with a globally
//! unique sequence number, and the queue always dispatches the global
//! key minimum — so a sharded run is **event-for-event identical** to a
//! single-heap run, which `tests/shard_equivalence.rs` pins down
//! byte-for-byte. The delay floor `d − U` is therefore a *performance*
//! knob (larger floor → longer fast-path runs), never a correctness
//! input.
//!
//! Incoming events are staged in a per-shard **inbox** and merged into
//! the heap in bulk the next time the shard pops. A k-member cluster
//! pulse enqueues its k² fan-out entries as appends plus one
//! heapify-extend instead of k² sifting pushes.
//!
//! [`SchedulerKind::Parallel`] reuses the same per-shard heaps but
//! advances them on worker threads between lookahead barriers (see
//! [`crate::par`]); its tie-breaking key is supplied by the engine so
//! that the dispatch order is identical on every thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::NodeId;
use crate::time::SimTime;

/// Assignment of simulation nodes to scheduler shards.
///
/// Shard ids are dense (`0..shard_count`). A good partition puts nodes
/// that exchange low-latency messages in the same shard and lets only
/// `≥ d − U`-delayed traffic cross shards; for the paper's cluster
/// graphs that is one shard per cluster (see
/// `ftgcs::cluster::cluster_partition`).
///
/// # Examples
///
/// ```
/// use ftgcs_sim::shard::Partition;
/// use ftgcs_sim::node::NodeId;
///
/// // Two clusters of 4 nodes each.
/// let p = Partition::by_blocks(8, 4);
/// assert_eq!(p.shard_count(), 2);
/// assert_eq!(p.shard_of(NodeId(5)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shard_of: Vec<u32>,
    shard_count: usize,
}

impl Partition {
    /// All nodes in one shard — the degenerate case equivalent to a
    /// single global heap.
    #[must_use]
    pub fn single(nodes: usize) -> Self {
        Partition {
            shard_of: vec![0; nodes],
            shard_count: 1,
        }
    }

    /// Contiguous blocks of `block` nodes per shard (the layout of
    /// cluster graphs, whose cluster `c` owns nodes `c·k..(c+1)·k`).
    /// The last shard may be smaller when `block` does not divide
    /// `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    #[must_use]
    pub fn by_blocks(nodes: usize, block: usize) -> Self {
        assert!(block > 0, "shard block size must be positive");
        let shard_of: Vec<u32> = (0..nodes).map(|i| (i / block) as u32).collect();
        let shard_count = shard_of.last().map_or(1, |&s| s as usize + 1);
        Partition {
            shard_of,
            shard_count,
        }
    }

    /// An explicit node → shard assignment (may be ragged).
    ///
    /// The shard count is `max(assignment) + 1`; empty shards in the
    /// middle of the range are allowed and harmless.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` shards are requested.
    #[must_use]
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        let shard_count = assignment.iter().max().map_or(1, |&s| s + 1);
        assert!(
            u32::try_from(shard_count).is_ok(),
            "shard count {shard_count} exceeds u32 range"
        );
        let shard_of = assignment.into_iter().map(|s| s as u32).collect();
        Partition {
            shard_of,
            shard_count,
        }
    }

    /// Number of shards (always at least 1).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of nodes covered by the partition.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the partition.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// The dense node → shard map (one `u32` per node).
    pub(crate) fn shard_map(&self) -> &[u32] {
        &self.shard_of
    }
}

/// Environment variable pinning the worker-thread count of
/// [`SchedulerKind::Parallel`] to an exact value (capped only at the
/// shard count). Benches and CI set it to pin thread counts
/// deterministically; it takes precedence over both the requested
/// count and the core-count clamp.
pub const WORKERS_ENV: &str = "FTGCS_WORKERS";

/// Resolves the worker-thread count for a parallel run.
///
/// Precedence: the [`WORKERS_ENV`] environment variable pins an exact
/// count; otherwise `requested` (or, when `requested == 0`, the
/// machine's available parallelism) is used, additionally capped at the
/// available parallelism — spawning more OS threads than cores can only
/// add scheduling overhead, and the dispatch order is byte-identical on
/// every thread count, so the clamp is invisible to results. Everything
/// is clamped to `[1, shards]`: a shard is the unit of sequential work.
/// # Panics
///
/// Panics if [`WORKERS_ENV`] is set but is not a positive integer — a
/// mistyped pin silently falling back to auto would let CI's
/// pinned-worker equivalence jobs stop testing the multi-thread
/// barrier protocol without anyone noticing.
#[must_use]
pub fn resolve_workers(requested: usize, shards: usize) -> usize {
    let env = std::env::var(WORKERS_ENV).ok().map(|v| {
        v.trim()
            .parse::<usize>()
            .ok()
            .filter(|&w| w > 0)
            .unwrap_or_else(|| panic!("{WORKERS_ENV} must be a positive integer, got {v:?}"))
    });
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    resolve_workers_from(requested, env, avail, shards)
}

/// Pure core of [`resolve_workers`].
fn resolve_workers_from(
    requested: usize,
    env: Option<usize>,
    avail: usize,
    shards: usize,
) -> usize {
    let want = match env {
        Some(pinned) => pinned,
        None => {
            if requested > 0 {
                requested.min(avail.max(1))
            } else {
                avail
            }
        }
    };
    want.clamp(1, shards.max(1))
}

/// Builds the inter-shard adjacency underlying the parallel executor's
/// per-shard horizons: `graph[s]` lists the shards holding at least one
/// node adjacent to a node of shard `s` (deduped, no self-entries).
/// Messages travel only along node adjacency, so this graph bounds how
/// event influence can cross shards — it is undirected because node
/// adjacency is.
pub(crate) fn shard_adjacency(
    adjacency: &[Vec<NodeId>],
    shard_of: &[u32],
    nshards: usize,
) -> Vec<Vec<u32>> {
    let mut graph: Vec<Vec<u32>> = vec![Vec::new(); nshards];
    for (u, neighbors) in adjacency.iter().enumerate() {
        let su = shard_of[u];
        for v in neighbors {
            let sv = shard_of[v.index()];
            if sv != su {
                graph[su as usize].push(sv);
            }
        }
    }
    for list in &mut graph {
        list.sort_unstable();
        list.dedup();
    }
    graph
}

/// Which event scheduler a simulation uses.
///
/// Every variant dispatches events in the identical global order, so
/// switching the scheduler never changes a run's trace — only its
/// throughput. `Global` is literally the 1-shard degenerate case of the
/// sharded queue, and `Parallel` runs the same per-shard heaps on
/// worker threads between conservative lookahead barriers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// One global heap (the 1-shard degenerate case).
    #[default]
    Global,
    /// Per-shard heaps advanced under conservative lookahead,
    /// single-threaded. The partition must cover exactly the
    /// simulation's nodes.
    Sharded(Partition),
    /// Per-shard heaps advanced on a worker-thread pool between
    /// `d − U` lookahead barriers. The merged trace is byte-identical
    /// to the other schedulers on every worker count.
    Parallel {
        /// Node → shard assignment; must cover exactly the
        /// simulation's nodes.
        partition: Partition,
        /// Worker threads; `0` means auto (the [`WORKERS_ENV`]
        /// environment variable, else available parallelism), always
        /// capped at the shard count. See [`resolve_workers`].
        workers: usize,
    },
}

/// Total dispatch order: earliest time first, tie-break among equal
/// times. The tie is either an internal insertion sequence number (the
/// [`ShardQueue`] convenience API) or an engine-supplied deterministic
/// `(source, per-source counter)` encoding — the latter is what makes
/// the dispatch order independent of how events raced across worker
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Key {
    pub(crate) time: SimTime,
    pub(crate) tie: u128,
}

impl Key {
    /// Sentinel greater than every real key (empty-shard head).
    pub(crate) fn max() -> Key {
        Key {
            time: SimTime::from_secs(f64::INFINITY),
            tie: u128::MAX,
        }
    }
}

/// Deterministic tie for an event created by `node`: node events order
/// by `(node, counter)` among equal times, after engine-global events.
pub(crate) fn tie_for_node(node: NodeId, counter: u64) -> u128 {
    ((node.index() as u128 + 1) << 64) | u128::from(counter)
}

/// Deterministic tie for an engine-global event (periodic samples):
/// sorts before every node event at the same time, matching the serial
/// engine's behaviour of arming the sample chain first.
pub(crate) fn tie_for_engine(counter: u64) -> u128 {
    u128::from(counter)
}

pub(crate) struct Entry<T> {
    pub(crate) key: Key,
    pub(crate) payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key.cmp(&self.key)
    }
}

/// One shard: a heap of accepted events plus an inbox of staged
/// arrivals that are merged in bulk at the next pop.
pub(crate) struct Shard<T> {
    pub(crate) heap: BinaryHeap<Entry<T>>,
    pub(crate) inbox: Vec<Entry<T>>,
    /// Smallest key in `inbox` (`Key::max()` when empty).
    pub(crate) inbox_min: Key,
}

impl<T> Shard<T> {
    pub(crate) fn new() -> Self {
        Shard {
            heap: BinaryHeap::new(),
            inbox: Vec::new(),
            inbox_min: Key::max(),
        }
    }

    /// Smallest key this shard could dispatch next.
    pub(crate) fn head_key(&self) -> Key {
        let heap_min = self.heap.peek().map_or_else(Key::max, |e| e.key);
        heap_min.min(self.inbox_min)
    }

    /// Stages one entry in the inbox.
    pub(crate) fn stage(&mut self, entry: Entry<T>) {
        if entry.key < self.inbox_min {
            self.inbox_min = entry.key;
        }
        self.inbox.push(entry);
    }

    /// Pops the earliest event (merging the inbox first), or `None`
    /// when the shard is empty.
    pub(crate) fn pop_min(&mut self) -> Option<Entry<T>> {
        if !self.inbox.is_empty() {
            self.merge_inbox();
        }
        self.heap.pop()
    }

    /// Merges the inbox into the heap: one O(n+m) heapify when the
    /// batch is large relative to the heap (the k² pulse fan-out case),
    /// ordinary sifting pushes when it is small.
    pub(crate) fn merge_inbox(&mut self) {
        if self.inbox.is_empty() {
            return;
        }
        if self.inbox.len() >= self.heap.len() / 2 {
            let mut v = std::mem::take(&mut self.heap).into_vec();
            v.append(&mut self.inbox);
            self.heap = BinaryHeap::from(v);
        } else {
            self.heap.extend(self.inbox.drain(..));
        }
        self.inbox_min = Key::max();
    }
}

impl<T> std::fmt::Debug for Shard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Shard(heap={}, inbox={})",
            self.heap.len(),
            self.inbox.len()
        )
    }
}

/// Work counters exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Inbox → heap bulk merges performed (lookahead barriers crossed).
    pub merges: u64,
    /// Entries moved by those merges (telemetry: how much the staging
    /// path batches).
    pub merged_entries: u64,
    /// Shard re-selections (ends of fast-path runs).
    pub reselects: u64,
}

/// One entry of the head index: a shard advertising its earliest key.
/// Lazily invalidated — an entry is current iff `key` still equals the
/// shard's actual head key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Head {
    key: Key,
    shard: usize,
}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest-advertised-key first.
        other.key.cmp(&self.key)
    }
}

/// A partitioned event queue dispatching in global `(time, seq)` order.
///
/// See the [module docs](self) for the ordering and lookahead
/// invariants. The queue is generic over its payload so it can be
/// property-tested independently of the engine.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::shard::{Partition, ShardQueue};
/// use ftgcs_sim::node::NodeId;
/// use ftgcs_sim::time::SimTime;
///
/// let mut q = ShardQueue::new(&Partition::by_blocks(4, 2));
/// q.push_for(NodeId(3), SimTime::from_secs(2.0), "late");
/// q.push_for(NodeId(0), SimTime::from_secs(1.0), "early");
/// let horizon = SimTime::from_secs(10.0);
/// assert_eq!(q.pop_before(horizon), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop_before(horizon), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop_before(horizon), None);
/// ```
pub struct ShardQueue<T> {
    shards: Vec<Shard<T>>,
    shard_of: Vec<u32>,
    /// Next globally unique sequence number.
    seq: u64,
    /// Total queued events across all shards.
    len: usize,
    /// The shard currently holding the global minimum (may be stale;
    /// revalidated against `horizon` on every peek).
    selected: usize,
    /// Lower bound on every *other* shard's head key. Exact at
    /// re-selection, tightened by cross-shard pushes afterwards.
    horizon: Key,
    /// Lazy min-heap over advertised shard heads, so switching shards
    /// costs O(log s) instead of scanning every shard. Entries are
    /// advertised when a push improves a non-selected shard's head and
    /// when a shard is deselected; stale entries (key no longer the
    /// shard's actual head) are discarded during re-selection. Every
    /// non-empty, non-selected shard always has a current entry.
    heads: BinaryHeap<Head>,
    stats: QueueStats,
}

impl<T> ShardQueue<T> {
    /// Creates an empty queue over `partition`.
    #[must_use]
    pub fn new(partition: &Partition) -> Self {
        let count = partition.shard_count().max(1);
        let shards = (0..count).map(|_| Shard::new()).collect();
        ShardQueue {
            shards,
            shard_of: partition.shard_of.clone(),
            seq: 0,
            len: 0,
            selected: 0,
            horizon: Key::max(),
            heads: BinaryHeap::new(),
            stats: QueueStats::default(),
        }
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Work counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Next internal tie value (insertion order) for the convenience
    /// push API.
    fn next_seq_tie(&mut self) -> u128 {
        let tie = u128::from(self.seq);
        self.seq += 1;
        tie
    }

    /// `true` to stage in the inbox (bulk-merged later), `false` for a
    /// direct sifting push into the selected shard's heap.
    ///
    /// The caller supplies the tie-break; ties must be unique per key
    /// (the auto API uses an insertion counter, the engine a
    /// `(source, counter)` encoding — the two must not be mixed on one
    /// queue).
    fn push_to_shard(&mut self, shard: usize, time: SimTime, tie: u128, payload: T, stage: bool) {
        let key = Key { time, tie };
        if shard == self.selected && !stage {
            // Single event on the running shard: a direct heap push is
            // cheaper than staging one entry and merging it right back.
            self.shards[shard].heap.push(Entry { key, payload });
            self.len += 1;
            return;
        }
        if shard != self.selected {
            // A staged cross-shard arrival may now be the earliest
            // event another shard can dispatch: advertise the improved
            // head and shrink the selected shard's lookahead horizon.
            if key < self.shards[shard].head_key() {
                self.heads.push(Head { key, shard });
            }
            if key < self.horizon {
                self.horizon = key;
            }
        }
        let s = &mut self.shards[shard];
        s.inbox.push(Entry { key, payload });
        if key < s.inbox_min {
            s.inbox_min = key;
        }
        self.len += 1;
    }

    /// Enqueues a single event owned by `node` (dispatched on its
    /// shard), tie-broken by insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the partition the queue was built
    /// with.
    pub fn push_for(&mut self, node: NodeId, time: SimTime, payload: T) {
        let shard = self.shard_of[node.index()] as usize;
        let tie = self.next_seq_tie();
        self.push_to_shard(shard, time, tie, payload, false);
    }

    /// Enqueues one event of a fan-out batch (a broadcast's k messages):
    /// always staged in the destination shard's inbox so the whole batch
    /// is absorbed by one bulk heap merge instead of k sifting pushes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the partition the queue was built
    /// with.
    pub fn stage_for(&mut self, node: NodeId, time: SimTime, payload: T) {
        let shard = self.shard_of[node.index()] as usize;
        let tie = self.next_seq_tie();
        self.push_to_shard(shard, time, tie, payload, true);
    }

    /// Enqueues an engine-global event (samples); it is owned by shard
    /// 0 and still dispatched in global order.
    pub fn push_unowned(&mut self, time: SimTime, payload: T) {
        let tie = self.next_seq_tie();
        self.push_to_shard(0, time, tie, payload, false);
    }

    /// Keyed variant of [`ShardQueue::push_for`]: the caller supplies
    /// the tie-break (unique per queue). The engine uses this with its
    /// deterministic `(source, counter)` ties so dispatch order is
    /// identical across schedulers and thread counts.
    pub(crate) fn push_for_keyed(&mut self, node: NodeId, time: SimTime, tie: u128, payload: T) {
        let shard = self.shard_of[node.index()] as usize;
        self.push_to_shard(shard, time, tie, payload, false);
    }

    /// Keyed variant of [`ShardQueue::stage_for`].
    pub(crate) fn stage_for_keyed(&mut self, node: NodeId, time: SimTime, tie: u128, payload: T) {
        let shard = self.shard_of[node.index()] as usize;
        self.push_to_shard(shard, time, tie, payload, true);
    }

    /// Keyed variant of [`ShardQueue::push_unowned`].
    pub(crate) fn push_unowned_keyed(&mut self, time: SimTime, tie: u128, payload: T) {
        self.push_to_shard(0, time, tie, payload, false);
    }

    /// Recomputes the selected shard (global head-key minimum) and the
    /// horizon (minimum over the remaining shards) from the lazy head
    /// index. O(log s) amortized per switch.
    ///
    /// Precondition: the queue is non-empty.
    fn reselect(&mut self) -> Key {
        self.stats.reselects += 1;
        // Re-advertise the outgoing shard: its head moved while it was
        // selected, so its previous advertisement (if any) is stale.
        let cur = self.shards[self.selected].head_key();
        if cur < Key::max() {
            self.heads.push(Head {
                key: cur,
                shard: self.selected,
            });
        }
        // Select the earliest *current* advertisement. Every non-empty
        // shard has one (pushes advertise head improvements, the line
        // above covers the outgoing shard), so this loop always
        // terminates on a valid entry while the queue is non-empty.
        loop {
            let Head { key, shard } = self
                .heads
                .pop()
                .expect("non-empty queue must have an advertised head");
            if self.shards[shard].head_key() != key {
                continue; // stale advertisement
            }
            self.selected = shard;
            // Horizon: the earliest current head among the *other*
            // shards. Entries of the newly selected shard are dropped —
            // deselection re-advertises unconditionally, so that is
            // safe.
            loop {
                match self.heads.peek() {
                    None => {
                        self.horizon = Key::max();
                        break;
                    }
                    Some(&Head { key: k, shard: s }) => {
                        if s != self.selected && self.shards[s].head_key() == k {
                            self.horizon = k;
                            break;
                        }
                        self.heads.pop();
                    }
                }
            }
            return key;
        }
    }

    /// The key of the globally next event, revalidating the fast path.
    fn peek_key(&mut self) -> Option<Key> {
        if self.len == 0 {
            return None;
        }
        let k = self.shards[self.selected].head_key();
        if k < self.horizon {
            // Fast path: the selected shard is still strictly earliest.
            Some(k)
        } else {
            Some(self.reselect())
        }
    }

    /// Invariant check used by debug assertions and property tests: the
    /// fast-path head is the true global minimum.
    #[cfg(test)]
    fn true_min(&self) -> Key {
        self.shards
            .iter()
            .map(Shard::head_key)
            .min()
            .unwrap_or_else(Key::max)
    }

    /// Pops the globally earliest event if its time is at most `until`.
    pub fn pop_before(&mut self, until: SimTime) -> Option<(SimTime, T)> {
        self.pop_before_keyed(until).map(|(key, p)| (key.time, p))
    }

    /// Like [`ShardQueue::pop_before`], but returns the full dispatch
    /// key (the engine threads it into row tagging so serial and
    /// relaxed trace modes agree on event identity).
    pub(crate) fn pop_before_keyed(&mut self, until: SimTime) -> Option<(Key, T)> {
        let key = self.peek_key()?;
        if key.time > until {
            return None;
        }
        let s = &mut self.shards[self.selected];
        if !s.inbox.is_empty() {
            self.stats.merges += 1;
            self.stats.merged_entries += s.inbox.len() as u64;
            s.merge_inbox();
        }
        let e = s.heap.pop().expect("peeked key implies a queued event");
        debug_assert_eq!(e.key, key, "shard head changed between peek and pop");
        self.len -= 1;
        Some((e.key, e.payload))
    }
}

impl<T> std::fmt::Debug for ShardQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardQueue(shards={}, len={}, selected={})",
            self.shards.len(),
            self.len,
            self.selected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn partition_constructors() {
        let p = Partition::single(5);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.shard_of(NodeId(4)), 0);

        let p = Partition::by_blocks(10, 4);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.shard_of(NodeId(9)), 2);

        let p = Partition::from_assignment(vec![2, 0, 2, 1]);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.shard_of(NodeId(0)), 2);

        // Empty partitions still have one shard for unowned events.
        let q = ShardQueue::<u8>::new(&Partition::single(0));
        assert_eq!(q.shard_count(), 1);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        let _ = Partition::by_blocks(4, 0);
    }

    #[test]
    fn worker_resolution_precedence() {
        // Env pin wins over everything, capped only at the shard count.
        assert_eq!(resolve_workers_from(4, Some(2), 16, 64), 2);
        assert_eq!(resolve_workers_from(0, Some(8), 1, 64), 8);
        assert_eq!(resolve_workers_from(0, Some(100), 4, 16), 16);
        // Explicit request, capped at cores and shards.
        assert_eq!(resolve_workers_from(4, None, 16, 64), 4);
        assert_eq!(resolve_workers_from(8, None, 2, 64), 2);
        assert_eq!(resolve_workers_from(8, None, 16, 3), 3);
        // Auto: available parallelism, capped at shards.
        assert_eq!(resolve_workers_from(0, None, 16, 64), 16);
        assert_eq!(resolve_workers_from(0, None, 16, 4), 4);
        // Degenerate inputs still yield at least one worker.
        assert_eq!(resolve_workers_from(0, None, 0, 0), 1);
    }

    #[test]
    fn pops_in_global_time_order_across_shards() {
        let p = Partition::by_blocks(4, 1);
        let mut q = ShardQueue::new(&p);
        q.push_for(NodeId(0), t(3.0), 'a');
        q.push_for(NodeId(1), t(1.0), 'b');
        q.push_for(NodeId(2), t(2.0), 'c');
        q.push_for(NodeId(3), t(1.5), 'd');
        let order: Vec<char> =
            std::iter::from_fn(|| q.pop_before(t(10.0)).map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['b', 'd', 'c', 'a']);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let p = Partition::by_blocks(2, 1);
        let mut q = ShardQueue::new(&p);
        q.push_for(NodeId(1), t(1.0), "first");
        q.push_for(NodeId(0), t(1.0), "second");
        q.push_unowned(t(1.0), "third");
        assert_eq!(q.pop_before(t(1.0)).unwrap().1, "first");
        assert_eq!(q.pop_before(t(1.0)).unwrap().1, "second");
        assert_eq!(q.pop_before(t(1.0)).unwrap().1, "third");
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = ShardQueue::new(&Partition::single(1));
        q.push_for(NodeId(0), t(5.0), ());
        assert_eq!(q.pop_before(t(4.999)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(t(5.0)), Some((t(5.0), ())));
    }

    #[test]
    fn cross_shard_push_shrinks_horizon_mid_run() {
        // Shard 0 has a run of events; a later push lands an earlier
        // event in shard 1 which must preempt the rest of the run.
        let p = Partition::by_blocks(2, 1);
        let mut q = ShardQueue::new(&p);
        for i in 0..5 {
            q.push_for(NodeId(0), t(1.0 + f64::from(i)), 0usize);
        }
        assert_eq!(q.pop_before(t(100.0)).unwrap().0, t(1.0));
        // While "processing" shard 0, an event for shard 1 arrives at
        // t=2.5, between shard 0's pending events.
        q.push_for(NodeId(1), t(2.5), 1usize);
        let seq: Vec<(f64, usize)> =
            std::iter::from_fn(|| q.pop_before(t(100.0)).map(|(tm, s)| (tm.as_secs(), s)))
                .collect();
        assert_eq!(seq, vec![(2.0, 0), (2.5, 1), (3.0, 0), (4.0, 0), (5.0, 0)]);
    }

    #[test]
    fn fast_path_always_returns_the_global_minimum() {
        // Deterministic pseudo-random interleaving of pushes and pops
        // over 5 shards; every pop must match the exhaustive minimum.
        let p = Partition::from_assignment(vec![0, 1, 2, 3, 4, 0, 1, 2]);
        let mut q = ShardQueue::new(&p);
        let mut lcg: u64 = 0x243F_6A88_85A3_08D3;
        let mut step = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut now = 0.0f64;
        for _ in 0..4000 {
            let r = step();
            if r % 3 != 0 || q.is_empty() {
                let node = (step() % 8) as usize;
                let dt = (step() % 1000) as f64 * 1e-4;
                q.push_for(NodeId(node), t(now + dt), node);
            } else {
                let expect = q.true_min();
                let (tm, _) = q.pop_before(t(f64::MAX / 2.0)).expect("non-empty");
                assert_eq!(tm, expect.time, "queue skipped the global minimum");
                now = tm.as_secs();
            }
        }
        let mut last = SimTime::ZERO;
        while let Some((tm, _)) = q.pop_before(t(f64::MAX / 2.0)) {
            assert!(tm >= last);
            last = tm;
        }
    }

    #[test]
    fn bulk_merge_and_fast_path_counters_behave() {
        let p = Partition::by_blocks(8, 4);
        let mut q = ShardQueue::new(&p);
        // Staged burst of 16 events into shard 0 (a pulse fan-out), one
        // far event into shard 1.
        for i in 0..16 {
            q.stage_for(NodeId(i % 4), t(1.0 + 0.01 * i as f64), i);
        }
        q.push_for(NodeId(7), t(50.0), 99);
        while q.pop_before(t(2.0)).is_some() {}
        let stats = q.stats();
        assert!(stats.merges >= 1, "staged inbox must be bulk-merged");
        assert!(
            stats.reselects <= 3,
            "fast path must cover the burst (reselects = {})",
            stats.reselects
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn staged_and_direct_pushes_interleave_correctly() {
        let p = Partition::by_blocks(4, 2);
        let mut q = ShardQueue::new(&p);
        q.stage_for(NodeId(0), t(2.0), "staged-late");
        q.push_for(NodeId(0), t(1.0), "direct-early");
        q.stage_for(NodeId(3), t(1.5), "cross-staged");
        q.push_for(NodeId(2), t(0.5), "cross-direct");
        let order: Vec<&str> =
            std::iter::from_fn(|| q.pop_before(t(10.0)).map(|(_, s)| s)).collect();
        assert_eq!(
            order,
            vec![
                "cross-direct",
                "direct-early",
                "cross-staged",
                "staged-late"
            ]
        );
    }
}
