//! Runtime introspection for the engine: a strictly observational side
//! channel.
//!
//! The determinism contract of this codebase is that every scheduler —
//! global heap, sharded, parallel on any worker count — dispatches the
//! identical `(time, source, counter)` event order. Telemetry must
//! therefore never feed back into scheduling: everything in this module
//! is write-only from the engine's point of view (relaxed atomic
//! counters, wall-clock phase accumulators) and is read only when a
//! caller asks for a [`TelemetryReport`]. Traces are byte-identical
//! with telemetry on or off, pinned by `tests/telemetry_equivalence.rs`
//! in the `ftgcs` crate.
//!
//! Two kinds of numbers live here, and the report keeps them apart:
//!
//! - **Deterministic counters** — events dispatched, timers
//!   set/fired/cancelled, messages delivered, cross-shard messages
//!   staged at send time, windows planned, horizon spans. These are
//!   pure functions of `(seed, config)` and are identical across
//!   schedulers and worker counts (cross-shard and window counters
//!   within the family that has shards/windows at all).
//! - **Machine-dependent diagnostics** — dealt vs. stolen claim
//!   outcomes (the steal race resolves differently per machine), inbox
//!   merge batching, and all wall-clock phase timings. Only their
//!   invariants are stable (e.g. dealt + stolen shares sum to 1).
//!
//! Wall-clock readings are the one legitimate use of host time in the
//! simulation crates: they never enter the trace. The `ftgcs-lint`
//! `no-wall-clock` rule still applies file-by-file, so every `Instant`
//! touch below carries a scoped pragma — and the opaque [`Stamp`] /
//! [`Stopwatch`] wrappers exist precisely so *callers* (the engine, the
//! parallel executor, the bench driver) never name `Instant` and never
//! need a pragma of their own. The carve-out cannot leak into the hot
//! path; the lint fixture corpus pins both directions.
//!
//! When the simulation is built with telemetry disabled (the default),
//! every recording method is a single predictable branch and the struct
//! holds no per-shard storage: the overhead is a dead `bool` test.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::SimStats;
use crate::node::NodeId;
use crate::shard::QueueStats;

/// Process-wide allocation probe, in the style of the
/// `hot_path_alloc` test's counting allocator.
///
/// The sim crates never install a global allocator themselves (that is
/// a binary's decision); instead, a binary that wraps the system
/// allocator — `xp` does — calls [`note_alloc`] from its `alloc` hook,
/// and every [`TelemetryReport`] snapshots the counter so the report
/// can show how many heap allocations the process performed since the
/// simulation was built. Without such a wrapper the counter stays at
/// zero and the report says so. The counter is process-wide, so it is
/// only meaningful in single-simulation binaries.
pub mod alloc_probe {
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Records one heap allocation. Called from a binary's
    /// `GlobalAlloc` wrapper; must not allocate (it is a single relaxed
    /// `fetch_add`).
    pub fn note_alloc() {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }

    /// Total allocations recorded so far.
    #[must_use]
    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// A wall-clock phase of the parallel executor's barrier loop (plus the
/// whole-run total), accumulated by [`Telemetry::phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Coordinator barrier work: front scan, horizon fixpoint, deal-out.
    Barrier,
    /// Window execution (workers advancing shards).
    Execute,
    /// Row/result merging back into global order, plus sample firing.
    Merge,
    /// The whole `run_until` span (all schedulers).
    Total,
}

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::Barrier => 0,
            Phase::Execute => 1,
            Phase::Merge => 2,
            Phase::Total => 3,
        }
    }
}

/// An opaque wall-clock reading handed out by [`Telemetry::stamp`].
///
/// `None` when telemetry is disabled, so the disabled path never
/// touches the host clock. Callers cannot see through it — the only
/// consumer is [`Telemetry::phase`] — which keeps raw `Instant`s
/// confined to this module.
#[derive(Debug, Clone, Copy)]
// ftgcs-lint: allow(no-wall-clock) -- telemetry side channel: phase timings never enter the trace
pub struct Stamp(Option<std::time::Instant>);

/// A free-standing wall-clock stopwatch for drivers (bench harness,
/// progress heartbeats). Always on — it is not tied to a simulation's
/// telemetry flag — but still confined to the side channel: nothing it
/// measures can reach a trace or a dispatch decision.
#[derive(Debug, Clone, Copy)]
// ftgcs-lint: allow(no-wall-clock) -- telemetry side channel: driver stopwatch, host-side only
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts a stopwatch at the current host time.
    #[must_use]
    pub fn start() -> Self {
        // ftgcs-lint: allow(no-wall-clock) -- telemetry side channel: driver stopwatch, host-side only
        Stopwatch(std::time::Instant::now())
    }

    /// Seconds of host time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// One shard's counters, padded to a cache line so shards advanced by
/// different workers never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct ShardCounters {
    /// Events popped and dispatched on this shard (incl. stale timers).
    events: AtomicU64,
    /// Timers installed by this shard's nodes.
    timers_set: AtomicU64,
    /// Live timers fired.
    timers_fired: AtomicU64,
    /// Timers explicitly cancelled while still pending.
    timers_cancelled: AtomicU64,
    /// Messages delivered to this shard's nodes.
    messages: AtomicU64,
    /// Cross-shard messages staged *to* this shard, counted
    /// deterministically at send time.
    staged_in: AtomicU64,
    /// Entries drained from this shard's parallel arrival inbox
    /// (machine-dependent batching).
    merged_in: AtomicU64,
    /// Windows in which an executor advanced this shard.
    windows: AtomicU64,
}

/// One executor's claim outcomes, cache-line padded like
/// [`ShardCounters`].
#[derive(Debug, Default)]
#[repr(align(64))]
struct WorkerCounters {
    /// Shard windows this executor ran that the balancer dealt to it.
    dealt: AtomicU64,
    /// Shard windows this executor ran via the steal sweep.
    stolen: AtomicU64,
    _pad: [u64; 6],
}

/// Wall-clock phase accumulators, in nanoseconds.
#[derive(Debug, Default)]
struct PhaseNanos([AtomicU64; 4]);

/// The engine's runtime counters: shared read-only (it is all atomics)
/// by every dispatch path via `SimShared`.
///
/// Constructed once per simulation by `SimBuilder::build`. All
/// recording methods are no-ops when the simulation was configured with
/// `telemetry: false`.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// Node → shard map (copied from the partition; all-zero for the
    /// global scheduler). Empty when disabled.
    shard_of: Vec<u32>,
    shards: Vec<ShardCounters>,
    /// Indexed by executor id; executors never outnumber shards.
    workers: Vec<WorkerCounters>,
    /// Engine-global clock samples dispatched.
    samples: AtomicU64,
    /// Parallel barrier windows planned.
    windows: AtomicU64,
    /// Due shard-windows over all planned windows (what the deal-out
    /// distributed; executed claims must sum to the same number).
    planned_shard_windows: AtomicU64,
    /// Sum over due shard-windows of `cap_s − m_s`, in nanoseconds of
    /// simulated time: how much horizon each window granted.
    horizon_span_ns: AtomicU64,
    phase_ns: PhaseNanos,
    /// [`alloc_probe::allocs`] at construction time.
    alloc_base: u64,
}

impl Telemetry {
    /// Builds an active telemetry block for `nshards` shards with the
    /// given node → shard map.
    #[must_use]
    pub(crate) fn new(shard_of: Vec<u32>, nshards: usize) -> Self {
        let nshards = nshards.max(1);
        Telemetry {
            enabled: true,
            shard_of,
            shards: (0..nshards).map(|_| ShardCounters::default()).collect(),
            workers: (0..nshards).map(|_| WorkerCounters::default()).collect(),
            samples: AtomicU64::new(0),
            windows: AtomicU64::new(0),
            planned_shard_windows: AtomicU64::new(0),
            horizon_span_ns: AtomicU64::new(0),
            phase_ns: PhaseNanos::default(),
            alloc_base: alloc_probe::allocs(),
        }
    }

    /// The disabled block: every recording call is a dead branch, no
    /// per-shard storage exists.
    #[must_use]
    pub(crate) fn disabled() -> Self {
        Telemetry {
            enabled: false,
            shard_of: Vec::new(),
            shards: Vec::new(),
            workers: Vec::new(),
            samples: AtomicU64::new(0),
            windows: AtomicU64::new(0),
            planned_shard_windows: AtomicU64::new(0),
            horizon_span_ns: AtomicU64::new(0),
            phase_ns: PhaseNanos::default(),
            alloc_base: 0,
        }
    }

    /// Whether this simulation records telemetry.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn shard(&self, node: NodeId) -> &ShardCounters {
        &self.shards[self.shard_of[node.index()] as usize]
    }

    /// One event popped and dispatched on `node`'s shard.
    #[inline]
    pub(crate) fn event_dispatched(&self, node: NodeId) {
        if self.enabled {
            self.shard(node).events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One engine-global clock sample dispatched.
    #[inline]
    pub(crate) fn sample_dispatched(&self) {
        if self.enabled {
            self.samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `node` installed a timer.
    #[inline]
    pub(crate) fn timer_set(&self, node: NodeId) {
        if self.enabled {
            self.shard(node).timers_set.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A live timer fired on `node`.
    #[inline]
    pub(crate) fn timer_fired(&self, node: NodeId) {
        if self.enabled {
            self.shard(node)
                .timers_fired
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `node` cancelled `count` still-pending timers.
    #[inline]
    pub(crate) fn timers_cancelled(&self, node: NodeId, count: u64) {
        if self.enabled && count > 0 {
            self.shard(node)
                .timers_cancelled
                .fetch_add(count, Ordering::Relaxed);
        }
    }

    /// A message was delivered to `node`.
    #[inline]
    pub(crate) fn message_delivered(&self, node: NodeId) {
        if self.enabled {
            self.shard(node).messages.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A message was queued from `from` to `to`; counts toward the
    /// destination shard's `staged_in` iff the send crosses shards.
    /// Deterministic: it is counted at send time, which is part of the
    /// canonical dispatch sequence, not at (path-dependent) merge time.
    #[inline]
    pub(crate) fn message_queued(&self, from: NodeId, to: NodeId) {
        if self.enabled && self.shard_of[from.index()] != self.shard_of[to.index()] {
            self.shard(to).staged_in.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `count` staged arrivals were drained from shard `s`'s parallel
    /// inbox into its heap.
    #[inline]
    pub(crate) fn inbox_merged(&self, s: usize, count: u64) {
        if self.enabled && count > 0 {
            self.shards[s].merged_in.fetch_add(count, Ordering::Relaxed);
        }
    }

    /// An executor advanced shard `s` for one window.
    #[inline]
    pub(crate) fn shard_window(&self, s: usize) {
        if self.enabled {
            self.shards[s].windows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Executor `worker` won the claim on a shard-window; `dealt` says
    /// whether the balancer had planned that shard for this executor
    /// (else it was stolen).
    #[inline]
    pub(crate) fn claim(&self, worker: usize, dealt: bool) {
        if self.enabled {
            let w = &self.workers[worker];
            if dealt {
                w.dealt.fetch_add(1, Ordering::Relaxed);
            } else {
                w.stolen.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The coordinator planned one barrier window with `due_shards` due
    /// shard-windows granting `horizon_span_secs` of summed horizon.
    #[inline]
    pub(crate) fn window_planned(&self, due_shards: u64, horizon_span_secs: f64) {
        if self.enabled {
            self.windows.fetch_add(1, Ordering::Relaxed);
            self.planned_shard_windows
                .fetch_add(due_shards, Ordering::Relaxed);
            // Accumulated in integer nanoseconds so the sum is exact
            // and associative (f64 accumulation order would otherwise
            // vary with nothing to pin it).
            let ns = (horizon_span_secs * 1e9).round();
            if ns.is_finite() && ns > 0.0 {
                // The cast is exact: checked finite and positive above,
                // and bounded by the horizon clamp — far below u64
                // range in nanoseconds.
                self.horizon_span_ns.fetch_add(ns as u64, Ordering::Relaxed);
            }
        }
    }

    /// A wall-clock reading, or an inert stamp when disabled.
    #[inline]
    #[must_use]
    pub(crate) fn stamp(&self) -> Stamp {
        if self.enabled {
            // ftgcs-lint: allow(no-wall-clock) -- telemetry side channel: phase timings never enter the trace
            Stamp(Some(std::time::Instant::now()))
        } else {
            Stamp(None)
        }
    }

    /// Accumulates the time since `since` into `phase`.
    #[inline]
    pub(crate) fn phase(&self, phase: Phase, since: Stamp) {
        if let Some(t0) = since.0 {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.phase_ns.0[phase.index()].fetch_add(ns, Ordering::Relaxed);
        }
    }

    fn phase_secs(&self, phase: Phase) -> f64 {
        #[allow(clippy::cast_precision_loss)] // report rounding only
        let ns = self.phase_ns.0[phase.index()].load(Ordering::Relaxed) as f64;
        ns / 1e9
    }

    /// Assembles the report. The engine passes the run-level context
    /// telemetry cannot see on its own: scheduler identity, run stats,
    /// serial queue counters, and the parallel deal record.
    #[must_use]
    pub(crate) fn report(
        &self,
        scheduler: &'static str,
        workers: Option<usize>,
        stats: SimStats,
        queue: Option<QueueStats>,
        planned_events: Option<&[u64]>,
    ) -> TelemetryReport {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let per_shard: Vec<ShardReport> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, c)| ShardReport {
                shard: s,
                events: load(&c.events),
                timers_set: load(&c.timers_set),
                timers_fired: load(&c.timers_fired),
                timers_cancelled: load(&c.timers_cancelled),
                messages: load(&c.messages),
                staged_in: load(&c.staged_in),
                merged_in: load(&c.merged_in),
                windows: load(&c.windows),
            })
            .collect();
        let sum = |f: fn(&ShardReport) -> u64| per_shard.iter().map(f).sum::<u64>();
        let samples = load(&self.samples);
        let deterministic = DeterministicCounters {
            events: sum(|s| s.events) + samples,
            samples,
            timers_set: sum(|s| s.timers_set),
            timers_fired: sum(|s| s.timers_fired),
            timers_cancelled: sum(|s| s.timers_cancelled),
            messages_delivered: sum(|s| s.messages),
            cross_shard_staged: sum(|s| s.staged_in),
            windows: load(&self.windows),
            planned_shard_windows: load(&self.planned_shard_windows),
            #[allow(clippy::cast_precision_loss)] // report rounding only
            horizon_span_secs: load(&self.horizon_span_ns) as f64 / 1e9,
        };
        let nworkers = workers.unwrap_or(0);
        let per_worker: Vec<WorkerReport> = self
            .workers
            .iter()
            .take(nworkers)
            .enumerate()
            .map(|(w, c)| WorkerReport {
                worker: w,
                dealt: load(&c.dealt),
                stolen: load(&c.stolen),
                planned_events: planned_events.and_then(|p| p.get(w)).copied().unwrap_or(0),
            })
            .collect();
        let dealt = per_worker.iter().map(|w| w.dealt).sum::<u64>();
        let stolen = per_worker.iter().map(|w| w.stolen).sum::<u64>();
        let claims = dealt + stolen;
        #[allow(clippy::cast_precision_loss)] // report rounding only
        let share = |x: u64| {
            if claims == 0 {
                0.0
            } else {
                x as f64 / claims as f64
            }
        };
        let inbox_merged_entries = sum(|s| s.merged_in);
        let q = queue.unwrap_or_default();
        let total_secs = self.phase_secs(Phase::Total);
        #[allow(clippy::cast_precision_loss)] // report rounding only
        let events_per_sec = if total_secs > 0.0 {
            stats.events as f64 / total_secs
        } else {
            0.0
        };
        TelemetryReport {
            enabled: self.enabled,
            scheduler,
            shards: self.shards.len(),
            workers,
            deterministic,
            per_shard,
            diagnostics: Diagnostics {
                shards_dealt: dealt,
                shards_stolen: stolen,
                dealt_share: share(dealt),
                stolen_share: share(stolen),
                inbox_merged_entries,
                queue_merges: q.merges,
                queue_merged_entries: q.merged_entries,
                queue_reselects: q.reselects,
                per_worker,
            },
            wall: WallClock {
                total_secs,
                barrier_secs: self.phase_secs(Phase::Barrier),
                execute_secs: self.phase_secs(Phase::Execute),
                merge_secs: self.phase_secs(Phase::Merge),
                events_per_sec,
            },
            alloc: AllocReport {
                allocations: alloc_probe::allocs().saturating_sub(self.alloc_base),
            },
        }
    }
}

/// The machine-independent section of a [`TelemetryReport`]: pure
/// functions of `(seed, config)`, identical across schedulers and
/// worker counts (window counters are meaningful for the parallel
/// scheduler, zero elsewhere; cross-shard counters depend only on the
/// partition).
#[derive(Debug, Clone, PartialEq)]
pub struct DeterministicCounters {
    /// Events dispatched (timers + deliveries + samples, incl. stale
    /// timer pops) — matches `SimStats::events`.
    pub events: u64,
    /// Engine-global clock samples dispatched.
    pub samples: u64,
    /// Timers installed by behaviors.
    pub timers_set: u64,
    /// Live timers fired — matches `SimStats::timers`.
    pub timers_fired: u64,
    /// Timers explicitly cancelled while pending.
    pub timers_cancelled: u64,
    /// Messages delivered — matches `SimStats::messages`.
    pub messages_delivered: u64,
    /// Messages queued across a shard boundary, counted at send time.
    pub cross_shard_staged: u64,
    /// Parallel barrier windows planned.
    pub windows: u64,
    /// Due shard-windows summed over all planned windows.
    pub planned_shard_windows: u64,
    /// Summed horizon `cap_s − m_s` granted to due shards, in simulated
    /// seconds.
    pub horizon_span_secs: f64,
}

/// Per-shard counter block of a [`TelemetryReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Events dispatched on this shard.
    pub events: u64,
    /// Timers installed by this shard's nodes.
    pub timers_set: u64,
    /// Live timers fired on this shard.
    pub timers_fired: u64,
    /// Timers cancelled by this shard's nodes.
    pub timers_cancelled: u64,
    /// Messages delivered to this shard's nodes.
    pub messages: u64,
    /// Cross-shard messages staged to this shard (send-time count).
    pub staged_in: u64,
    /// Arrival-inbox entries bulk-merged (parallel path batching).
    pub merged_in: u64,
    /// Windows in which an executor advanced this shard.
    pub windows: u64,
}

/// Per-executor claim record of a [`TelemetryReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Executor index.
    pub worker: usize,
    /// Shard-windows run that were dealt to this executor.
    pub dealt: u64,
    /// Shard-windows run via the steal sweep.
    pub stolen: u64,
    /// Events the balancer dealt to this executor (the deterministic
    /// balance record, `Simulation::planned_worker_events`).
    pub planned_events: u64,
}

/// The machine-dependent section of a [`TelemetryReport`]: outcomes of
/// the steal race and merge batching. Individually unstable across
/// machines/runs; their invariants (dealt + stolen = executed windows,
/// shares sum to 1) are stable.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    /// Executed shard-windows won by the executor they were dealt to.
    pub shards_dealt: u64,
    /// Executed shard-windows won by a stealing executor.
    pub shards_stolen: u64,
    /// `shards_dealt / (shards_dealt + shards_stolen)` (0 when no
    /// claims).
    pub dealt_share: f64,
    /// `shards_stolen / (shards_dealt + shards_stolen)`.
    pub stolen_share: f64,
    /// Parallel arrival-inbox entries bulk-merged.
    pub inbox_merged_entries: u64,
    /// Serial queue: inbox → heap bulk merges performed.
    pub queue_merges: u64,
    /// Serial queue: entries moved by those merges.
    pub queue_merged_entries: u64,
    /// Serial queue: shard re-selections.
    pub queue_reselects: u64,
    /// Per-executor claim records.
    pub per_worker: Vec<WorkerReport>,
}

/// Wall-clock section of a [`TelemetryReport`]. Host-time measurements:
/// machine-dependent by definition, never part of any equivalence
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct WallClock {
    /// Total host seconds spent inside `run_until` calls.
    pub total_secs: f64,
    /// Coordinator barrier work (front scan, horizon fixpoint, deal).
    pub barrier_secs: f64,
    /// Window execution.
    pub execute_secs: f64,
    /// Row merging and sample firing at barriers.
    pub merge_secs: f64,
    /// `events / total_secs` (0 when no wall time was recorded).
    pub events_per_sec: f64,
}

/// Allocation section of a [`TelemetryReport`]; see [`alloc_probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocReport {
    /// Heap allocations recorded by the process-wide probe since the
    /// simulation was built (0 unless the binary installs a counting
    /// allocator).
    pub allocations: u64,
}

/// A machine-readable snapshot of everything the engine observed about
/// one run. Obtained from `Simulation::telemetry()`; serialized with
/// [`TelemetryReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Whether the simulation recorded telemetry (a disabled report is
    /// all zeros).
    pub enabled: bool,
    /// `"global"`, `"sharded"`, or `"parallel"`.
    pub scheduler: &'static str,
    /// Shard count (1 for the global scheduler).
    pub shards: usize,
    /// Resolved executor count (`None` on serial schedulers).
    pub workers: Option<usize>,
    /// Machine-independent counters.
    pub deterministic: DeterministicCounters,
    /// Per-shard counter blocks.
    pub per_shard: Vec<ShardReport>,
    /// Machine-dependent diagnostics.
    pub diagnostics: Diagnostics,
    /// Wall-clock phase timings.
    pub wall: WallClock,
    /// Allocation probe snapshot.
    pub alloc: AllocReport,
}

/// Identifies the report schema; bump on breaking shape changes.
pub const SCHEMA: &str = "ftgcs-telemetry-v1";

fn json_f64(x: f64) -> String {
    // JSON has no Infinity/NaN; the report never produces them from
    // real runs, but a serializer must not emit invalid output anyway.
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

impl TelemetryReport {
    /// Serializes the report as stable, hand-rolled JSON (offline, like
    /// `ftgcs_bench::spec` — no serde in this workspace). Keys and
    /// nesting are the `ftgcs-telemetry-v1` schema documented in
    /// EXPERIMENTS.md.
    #[must_use]
    #[allow(clippy::too_many_lines)] // a flat serializer reads best flat
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let d = &self.deterministic;
        let g = &self.diagnostics;
        let w = &self.wall;
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"enabled\": {},", self.enabled);
        let _ = writeln!(s, "  \"scheduler\": \"{}\",", self.scheduler);
        let _ = writeln!(s, "  \"shards\": {},", self.shards);
        match self.workers {
            Some(n) => {
                let _ = writeln!(s, "  \"workers\": {n},");
            }
            None => {
                let _ = writeln!(s, "  \"workers\": null,");
            }
        }
        let _ = writeln!(s, "  \"deterministic\": {{");
        let _ = writeln!(s, "    \"events\": {},", d.events);
        let _ = writeln!(s, "    \"samples\": {},", d.samples);
        let _ = writeln!(s, "    \"timers_set\": {},", d.timers_set);
        let _ = writeln!(s, "    \"timers_fired\": {},", d.timers_fired);
        let _ = writeln!(s, "    \"timers_cancelled\": {},", d.timers_cancelled);
        let _ = writeln!(s, "    \"messages_delivered\": {},", d.messages_delivered);
        let _ = writeln!(s, "    \"cross_shard_staged\": {},", d.cross_shard_staged);
        let _ = writeln!(s, "    \"windows\": {},", d.windows);
        let _ = writeln!(
            s,
            "    \"planned_shard_windows\": {},",
            d.planned_shard_windows
        );
        let _ = writeln!(
            s,
            "    \"horizon_span_secs\": {}",
            json_f64(d.horizon_span_secs)
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"per_shard\": [");
        for (i, sh) in self.per_shard.iter().enumerate() {
            let comma = if i + 1 < self.per_shard.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "    {{\"shard\": {}, \"events\": {}, \"timers_set\": {}, \
                 \"timers_fired\": {}, \"timers_cancelled\": {}, \"messages\": {}, \
                 \"staged_in\": {}, \"merged_in\": {}, \"windows\": {}}}{comma}",
                sh.shard,
                sh.events,
                sh.timers_set,
                sh.timers_fired,
                sh.timers_cancelled,
                sh.messages,
                sh.staged_in,
                sh.merged_in,
                sh.windows
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"diagnostics\": {{");
        let _ = writeln!(s, "    \"shards_dealt\": {},", g.shards_dealt);
        let _ = writeln!(s, "    \"shards_stolen\": {},", g.shards_stolen);
        let _ = writeln!(s, "    \"dealt_share\": {},", json_f64(g.dealt_share));
        let _ = writeln!(s, "    \"stolen_share\": {},", json_f64(g.stolen_share));
        let _ = writeln!(
            s,
            "    \"inbox_merged_entries\": {},",
            g.inbox_merged_entries
        );
        let _ = writeln!(s, "    \"queue_merges\": {},", g.queue_merges);
        let _ = writeln!(
            s,
            "    \"queue_merged_entries\": {},",
            g.queue_merged_entries
        );
        let _ = writeln!(s, "    \"queue_reselects\": {},", g.queue_reselects);
        let _ = writeln!(s, "    \"per_worker\": [");
        for (i, pw) in g.per_worker.iter().enumerate() {
            let comma = if i + 1 < g.per_worker.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{\"worker\": {}, \"dealt\": {}, \"stolen\": {}, \
                 \"planned_events\": {}}}{comma}",
                pw.worker, pw.dealt, pw.stolen, pw.planned_events
            );
        }
        let _ = writeln!(s, "    ]");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"wall\": {{");
        let _ = writeln!(s, "    \"total_secs\": {},", json_f64(w.total_secs));
        let _ = writeln!(s, "    \"barrier_secs\": {},", json_f64(w.barrier_secs));
        let _ = writeln!(s, "    \"execute_secs\": {},", json_f64(w.execute_secs));
        let _ = writeln!(s, "    \"merge_secs\": {},", json_f64(w.merge_secs));
        let _ = writeln!(s, "    \"events_per_sec\": {}", json_f64(w.events_per_sec));
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"alloc\": {{\"allocations\": {}}}",
            self.alloc.allocations
        );
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_records_nothing_and_allocates_no_blocks() {
        let tel = Telemetry::disabled();
        tel.sample_dispatched();
        tel.window_planned(3, 1.0);
        tel.claim(0, true);
        let r = tel.report("global", None, SimStats::default(), None, None);
        assert!(!r.enabled);
        assert_eq!(r.shards, 0);
        assert_eq!(r.deterministic.events, 0);
        assert_eq!(r.deterministic.windows, 0);
        assert_eq!(r.diagnostics.shards_dealt, 0);
    }

    #[test]
    fn counters_roll_up_per_shard_and_per_worker() {
        // Two shards: nodes 0,1 on shard 0, node 2 on shard 1.
        let tel = Telemetry::new(vec![0, 0, 1], 2);
        tel.event_dispatched(NodeId(0));
        tel.event_dispatched(NodeId(2));
        tel.event_dispatched(NodeId(2));
        tel.sample_dispatched();
        tel.timer_set(NodeId(1));
        tel.timer_fired(NodeId(1));
        tel.timers_cancelled(NodeId(0), 2);
        tel.message_delivered(NodeId(2));
        tel.message_queued(NodeId(0), NodeId(2)); // crosses 0 → 1
        tel.message_queued(NodeId(0), NodeId(1)); // same shard: not staged
        tel.inbox_merged(1, 4);
        tel.shard_window(0);
        tel.shard_window(1);
        tel.claim(0, true);
        tel.claim(1, false);
        tel.window_planned(2, 0.5);

        let stats = SimStats {
            events: 4,
            messages: 1,
            timers: 1,
        };
        let r = tel.report("parallel", Some(2), stats, None, Some(&[10, 20]));
        let d = &r.deterministic;
        assert_eq!(d.events, 4, "3 shard events + 1 sample");
        assert_eq!(d.samples, 1);
        assert_eq!(d.timers_set, 1);
        assert_eq!(d.timers_fired, 1);
        assert_eq!(d.timers_cancelled, 2);
        assert_eq!(d.messages_delivered, 1);
        assert_eq!(d.cross_shard_staged, 1);
        assert_eq!(d.windows, 1);
        assert_eq!(d.planned_shard_windows, 2);
        assert!((d.horizon_span_secs - 0.5).abs() < 1e-9);
        assert_eq!(r.per_shard[0].events, 1);
        assert_eq!(r.per_shard[1].events, 2);
        assert_eq!(r.per_shard[1].staged_in, 1);
        assert_eq!(r.per_shard[1].merged_in, 4);
        assert_eq!(r.diagnostics.shards_dealt, 1);
        assert_eq!(r.diagnostics.shards_stolen, 1);
        assert!((r.diagnostics.dealt_share + r.diagnostics.stolen_share - 1.0).abs() < 1e-12);
        assert_eq!(r.diagnostics.per_worker[1].planned_events, 20);
    }

    #[test]
    fn json_has_the_stable_schema_shape() {
        let tel = Telemetry::new(vec![0], 1);
        tel.event_dispatched(NodeId(0));
        let r = tel.report("global", None, SimStats::default(), None, None);
        let json = r.to_json();
        for key in [
            "\"schema\": \"ftgcs-telemetry-v1\"",
            "\"deterministic\": {",
            "\"per_shard\": [",
            "\"diagnostics\": {",
            "\"wall\": {",
            "\"events_per_sec\":",
            "\"alloc\": {\"allocations\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — the cheap structural sanity check
        // every hand-rolled serializer owes its consumers.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces:\n{json}");
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "unbalanced brackets:\n{json}"
        );
    }

    #[test]
    fn stopwatch_and_stamps_measure_nonnegative_time() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
        let tel = Telemetry::new(vec![0], 1);
        let t0 = tel.stamp();
        tel.phase(Phase::Total, t0);
        let r = tel.report("global", None, SimStats::default(), None, None);
        assert!(r.wall.total_secs >= 0.0);
        // Disabled stamps are inert.
        let off = Telemetry::disabled();
        let t1 = off.stamp();
        off.phase(Phase::Total, t1);
        assert_eq!(
            off.report("global", None, SimStats::default(), None, None)
                .wall
                .total_secs,
            0.0
        );
    }
}
