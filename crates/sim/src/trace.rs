//! Trace recording.
//!
//! The engine records two kinds of data for offline analysis:
//!
//! * **Clock samples** — the main logical clock `L_v(t)` of every node on a
//!   periodic Newtonian grid (plus hardware readings), which metrics code
//!   turns into skew curves.
//! * **Rows** — untyped, behavior-emitted records `(t, node, kind, values)`
//!   used for algorithm-internal quantities (round corrections `Δ_v(r)`,
//!   pulse times, trigger decisions, ...). Keeping rows untyped lets the
//!   substrate stay independent of any particular algorithm.

use crate::node::NodeId;
use crate::time::SimTime;

/// One periodic snapshot of every node's clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSample {
    /// Newtonian sample time.
    pub t: SimTime,
    /// Main logical clock `L_v(t)` per node, indexed by node id.
    pub logical: Vec<f64>,
    /// Hardware reading `H_v(t)` per node, indexed by node id.
    pub hardware: Vec<f64>,
}

/// One behavior-emitted record.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Newtonian emission time.
    pub t: SimTime,
    /// Emitting node.
    pub node: NodeId,
    /// Record kind, e.g. `"pulse"` or `"round"`. Kinds are defined by the
    /// emitting algorithm crate.
    pub kind: &'static str,
    /// Numeric payload; meaning is kind-specific.
    pub values: Vec<f64>,
}

/// Collected output of a simulation run.
///
/// # Examples
///
/// ```
/// use ftgcs_sim::trace::Trace;
///
/// let trace = Trace::default();
/// assert!(trace.samples.is_empty());
/// assert!(trace.rows_of_kind("pulse").next().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Periodic clock samples, in time order.
    pub samples: Vec<ClockSample>,
    /// Behavior-emitted rows, in emission order.
    pub rows: Vec<Row>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Iterates over rows of one kind.
    pub fn rows_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Row> + 'a {
        self.rows.iter().filter(move |r| r.kind == kind)
    }

    /// Iterates over rows of one kind emitted by one node.
    pub fn rows_of_node<'a>(
        &'a self,
        kind: &'a str,
        node: NodeId,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        self.rows_of_kind(kind).filter(move |r| r.node == node)
    }

    /// Returns the last sampled logical clock values, if any samples exist.
    #[must_use]
    pub fn final_logical(&self) -> Option<&[f64]> {
        self.samples.last().map(|s| s.logical.as_slice())
    }

    /// Canonical byte serialization of the whole trace: the samples CSV
    /// followed by one `Debug`-formatted line per row.
    ///
    /// This is the format the determinism and scheduler-equivalence
    /// suites compare — two runs are "byte-identical" exactly when
    /// their `to_bytes()` outputs are equal — so it lives here rather
    /// than being redefined per test crate.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_samples_csv(&mut buf)
            .expect("writing to a Vec cannot fail");
        for row in &self.rows {
            buf.extend_from_slice(format!("{row:?}\n").as_bytes());
        }
        buf
    }

    /// Whether two traces serialize to identical bytes
    /// ([`Trace::to_bytes`]).
    ///
    /// This is *the* equivalence the determinism and scheduler
    /// differential suites assert. Relaxed-ordering runs (the parallel
    /// scheduler) merge their per-shard row buffers back into global
    /// `(time, key)` order before the trace is observable, so the same
    /// comparison covers strict and relaxed traces without separate
    /// assertions.
    #[must_use]
    pub fn byte_identical(&self, other: &Trace) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// Writes the clock samples as CSV (`t,node0,node1,...`) to `out`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `out`.
    pub fn write_samples_csv<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        if let Some(first) = self.samples.first() {
            write!(out, "t")?;
            for i in 0..first.logical.len() {
                write!(out, ",n{i}")?;
            }
            writeln!(out)?;
        }
        for s in &self.samples {
            write!(out, "{}", s.t.as_secs())?;
            for v in &s.logical {
                write!(out, ",{v}")?;
            }
            writeln!(out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            samples: vec![
                ClockSample {
                    t: SimTime::from_secs(0.0),
                    logical: vec![0.0, 0.0],
                    hardware: vec![0.0, 0.0],
                },
                ClockSample {
                    t: SimTime::from_secs(1.0),
                    logical: vec![1.0, 1.1],
                    hardware: vec![1.0, 1.05],
                },
            ],
            rows: vec![
                Row {
                    t: SimTime::from_secs(0.5),
                    node: NodeId(0),
                    kind: "pulse",
                    values: vec![1.0],
                },
                Row {
                    t: SimTime::from_secs(0.6),
                    node: NodeId(1),
                    kind: "round",
                    values: vec![2.0, 3.0],
                },
            ],
        }
    }

    #[test]
    fn filters_by_kind_and_node() {
        let t = sample_trace();
        assert_eq!(t.rows_of_kind("pulse").count(), 1);
        assert_eq!(t.rows_of_kind("round").count(), 1);
        assert_eq!(t.rows_of_kind("nope").count(), 0);
        assert_eq!(t.rows_of_node("pulse", NodeId(0)).count(), 1);
        assert_eq!(t.rows_of_node("pulse", NodeId(1)).count(), 0);
    }

    #[test]
    fn final_logical_is_last_sample() {
        let t = sample_trace();
        assert_eq!(t.final_logical(), Some(&[1.0, 1.1][..]));
        assert_eq!(Trace::new().final_logical(), None);
    }

    #[test]
    fn csv_output_has_header_and_rows() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_samples_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t,n0,n1");
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with('1'));
    }
}
