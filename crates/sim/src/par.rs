//! The parallel shard executor.
//!
//! [`SchedulerKind::Parallel`](crate::shard::SchedulerKind) advances the
//! per-shard event heaps of [`crate::shard`] on a pool of worker threads
//! between **conservative lookahead barriers**. The model provides the
//! safety argument: every message is delayed by at least `d − U > 0`, so
//! an event chain starting at key time `t` in one shard cannot influence
//! a neighboring shard before `t + (d − U)` — the classic Chandy–Misra
//! argument, executed here truly in parallel.
//!
//! ## Per-shard horizons
//!
//! Each window gives every shard its *own* cap instead of one global
//! `T₀ + (d − U)`. Let `m_s` be shard `s`'s earliest pending key time
//! (heap head, staged inbox, and mutex inbox included) and `L = d − U`.
//! Messages travel only along node adjacency ([`crate::engine::Ctx`]
//! enforces it), so influence propagates along the **shard adjacency
//! graph**: the earliest time an event chain starting *outside* `s` can
//! deliver into `s` is governed by the fixpoint
//!
//! ```text
//! e_s   = min(m_s, min over neighbors s' of (e_s' + L))
//! cap_s = min over neighbors s' of (e_s' + L)      (∞ if no neighbors)
//! ```
//!
//! solved Dijkstra-style per barrier (uniform edge weight `L`). A shard
//! may process every local event with `time < cap_s` without consulting
//! anyone: any cross-shard arrival lands at or after `cap_s`. Note the
//! fixpoint — *not* the one-hop `min(other heads) + L` — is required: an
//! empty neighbor is itself constrained by *its* neighbors, and using
//! its bare head (∞) would let two-hop message bounces land in a
//! shard's already-processed past. The global minimum shard always gets
//! `cap ≥ T₀ + L`, so every window makes progress; far-ahead shards on
//! sparse shard graphs get caps that grow with their hop distance from
//! the frontier. Caps are additionally clamped at the next engine
//! sample time and at a large multiple of `L` (buffer hygiene); both
//! clamps only shrink windows and never affect soundness.
//!
//! ## Deterministic work stealing
//!
//! Shard → worker assignment is dynamic, per window. The coordinator
//! **deals** the shards that have work this window to workers by greedy
//! longest-processing-time packing over per-shard cost estimates
//! (events dispatched in the shard's last active window), then workers
//! **steal**: after finishing their dealt shards they sweep every shard
//! still unclaimed. A per-shard atomic claim flag makes ownership
//! exactly-once per window; shards are independent within a window, so
//! *any* executor may run *any* shard and only wall-clock changes. The
//! dealt shares are recorded per worker
//! ([`Simulation::planned_worker_events`]) — a deterministic balance
//! metric, independent of how the steal race resolves on a given
//! machine.
//!
//! ## Determinism and byte-identity
//!
//! * **Scheduler-independent keys.** Every event is stamped
//!   `(time, source, per-source counter)` by the node that creates it
//!   ([`crate::engine`]); within a shard, events dispatch in key order,
//!   and per-node state evolution is a pure function of that node's own
//!   event sequence (per-node RNG and delay streams included). Which
//!   thread runs a shard, and in which order shards are claimed, is
//!   invisible to results — pinned by the claim-order property test
//!   below and the stress suites.
//! * **Watermarked trace merge.** Workers buffer emitted rows per
//!   shard, tagged with the emitting event's key. Because caps differ
//!   per shard, windows no longer partition time — so the coordinator
//!   keeps a pending-row buffer and emits, each barrier, only rows with
//!   `time` strictly below the new global minimum pending time (and
//!   below the next sample): everything earlier can no longer be
//!   preceded by any future event or sample. The remainder flushes at
//!   run end. The result is exactly the serial engine's strict in-order
//!   stream.
//! * **Barrier-handled samples.** Periodic clock samples read *every*
//!   node's clock, so they are executed by the coordinator between
//!   windows. All caps are clamped at the earliest pending sample time,
//!   so when a sample fires no processed event at or after it exists —
//!   and at equal times samples sort before node events
//!   ([`crate::shard`]'s engine tie), matching the serial order.
//!
//! Cross-shard sends are batched in a per-worker outbox and flushed into
//! the destination shards' mutex-guarded inboxes once per window (one
//! lock per destination instead of one per message); owners absorb their
//! inbox when they next advance. The horizon floor guarantees staged
//! arrivals never land below the destination's cap, so flush/drain
//! ordering across workers is irrelevant — and a shard skipped as idle
//! cannot become due mid-window.
//!
//! The worker count is a pure throughput knob — results are
//! byte-identical on every count — so it is clamped to the machine's
//! available parallelism ([`crate::shard::resolve_workers`]), and a
//! resolved count of one skips the pool entirely and runs the same
//! windows inline on the calling thread ([`Simulation::pin_workers`]
//! overrides the resolution for balance measurement and tests). The
//! pool is hand-rolled (a spin/yield/park gate) because the build
//! environment has no crates.io access.
//!
//! **The pool persists across `run_until` calls.** Threads are spawned
//! on the first multi-worker window and stored in the simulation's event
//! store; between calls they park on a condvar, so a driver stepping the
//! simulation in fine increments pays no per-call thread-spawn cost.
//! Each `run_until` publishes a pointer to its per-run window state
//! through the gate; the stepping-granularity equivalence test in
//! `tests/observer_equivalence.rs` pins that stepping never changes the
//! trace.
//!
//! A lookahead below the f64 ulp of the current simulation time cannot
//! advance any window; the coordinator surfaces that as the structured
//! [`RunError::LookaheadVanished`] from [`Simulation::try_run_until`]
//! (with every processed row preserved and the workers parked cleanly)
//! instead of panicking mid-run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::engine::{
    run_event, take_sample, EventStore, NodeCell, Pending, QueueKind, RowSink, RunError, SimShared,
    SimStats, Simulation,
};
use crate::node::NodeId;
use crate::observe::Observer;
use crate::shard::{shard_adjacency, Entry, Key, Partition, Shard};
use crate::telemetry::Phase;
use crate::time::{SimDuration, SimTime};
use crate::trace::Row;

/// `f64::to_bits` of a time (the lock-free head/cap encoding).
fn time_to_bits(t: SimTime) -> u64 {
    t.as_secs().to_bits()
}

/// Inverse of [`time_to_bits`].
fn time_from_bits(bits: u64) -> SimTime {
    SimTime::from_secs(f64::from_bits(bits))
}

/// The "no pending event" sentinel.
fn time_inf() -> SimTime {
    SimTime::from_secs(f64::INFINITY)
}

/// Buffer-hygiene clamp: a shard's cap never exceeds its own front by
/// more than this many lookaheads, so one barrier's pending-row buffer
/// stays bounded even for degenerate shard graphs (e.g. a single shard,
/// whose horizon is otherwise infinite). Far larger than any hop
/// distance a real partition produces, so it never costs parallelism.
const HORIZON_WINDOW_FACTOR: f64 = 1024.0;

/// The parallel executor's event store: per-shard heaps plus the sample
/// chain (samples never enter a shard — they are engine-global) and the
/// persistent worker pool.
pub(crate) struct ParQueue<M> {
    pub(crate) shards: Vec<Shard<Pending<M>>>,
    pub(crate) shard_of: Vec<u32>,
    /// Resolved worker count (see [`crate::shard::resolve_workers`] and
    /// [`Simulation::pin_workers`]).
    pub(crate) workers: usize,
    /// Pending engine-global sample times (usually one; transiently more
    /// after `set_sample_interval` toggles, mirroring the serial queue).
    pub(crate) pending_samples: Vec<SimTime>,
    /// Worker threads, spawned lazily on the first multi-worker
    /// `run_until` and kept alive (parked between runs) until the
    /// simulation is dropped.
    pub(crate) pool: Option<PoolHandle>,
    /// Inter-shard adjacency (the horizon graph), built once on the
    /// first parallel window.
    pub(crate) shard_graph: Option<Vec<Vec<u32>>>,
    /// Per-shard cost estimate for the deal-out: events the shard
    /// dispatched in its last active window (halved while idle).
    pub(crate) shard_cost: Vec<u64>,
    /// Cumulative events dealt to each worker by the balancer — the
    /// deterministic load-balance record behind
    /// [`Simulation::planned_worker_events`].
    pub(crate) planned_events: Vec<u64>,
    /// Test-only knob: permute the inline path's shard claim order per
    /// window with this seed. Results must be invariant (pinned by the
    /// claim-order property test).
    pub(crate) claim_probe: Option<u64>,
}

impl<M> ParQueue<M> {
    pub(crate) fn new(partition: &Partition, workers: usize) -> Self {
        let count = partition.shard_count().max(1);
        ParQueue {
            shards: (0..count).map(|_| Shard::new()).collect(),
            shard_of: partition.shard_map().to_vec(),
            workers,
            pending_samples: Vec::new(),
            pool: None,
            shard_graph: None,
            shard_cost: vec![0; count],
            planned_events: Vec::new(),
            claim_probe: None,
        }
    }

    /// Serial-phase push (boot / between runs): straight into the owning
    /// shard's heap.
    pub(crate) fn push(&mut self, dst: NodeId, time: SimTime, tie: u128, payload: Pending<M>) {
        let shard = self.shard_of[dst.index()] as usize;
        self.shards[shard].heap.push(Entry {
            key: Key { time, tie },
            payload,
        });
    }
}

impl<M> std::fmt::Debug for ParQueue<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ParQueue(shards={}, workers={}, pool={})",
            self.shards.len(),
            self.workers,
            if self.pool.is_some() { "live" } else { "-" }
        )
    }
}

/// Staged cross-shard arrivals for one shard, with their running
/// minimum key so barrier head-scans are O(1).
struct InboxBuf<M> {
    entries: Vec<Entry<Pending<M>>>,
    min: Key,
}

/// One shard's arrival inbox: the buffer itself behind a mutex, plus a
/// lock-free mirror of the staged minimum's *time* so front scans need
/// no locks at all (matching the `heads` array).
pub(crate) struct Inbox<M> {
    buf: Mutex<InboxBuf<M>>,
    /// `f64::to_bits` of `buf.min.time` (`INFINITY` when empty).
    /// Written only while holding `buf`'s lock, with `Release`; read
    /// with `Acquire` by the coordinator's barrier scan and by workers'
    /// steal-pass due checks. The coordinator-vs-worker visibility also
    /// rides the gate's release/acquire edges (see [`Pool::heads`] for
    /// the pinned argument); the explicit edge covers the *mid-window*
    /// worker-vs-worker reads that stealing introduced. A momentarily
    /// stale value is harmless either way: due checks are a fast-path
    /// filter, and the claim CAS / inbox mutex arbitrate for real.
    min_time_bits: AtomicU64,
}

impl<M> Inbox<M> {
    fn new() -> Self {
        Inbox {
            buf: Mutex::new(InboxBuf {
                entries: Vec::new(),
                min: Key::max(),
            }),
            min_time_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// Appends one worker's window batch for this shard.
    fn stage_batch(&self, batch: &mut Vec<Entry<Pending<M>>>) {
        let mut buf = self.buf.lock().expect("inbox poisoned");
        for entry in batch.iter() {
            if entry.key < buf.min {
                buf.min = entry.key;
            }
        }
        let min_bits = buf.min.time.as_secs().to_bits();
        buf.entries.append(batch);
        self.min_time_bits.store(min_bits, Ordering::Release);
    }

    /// Moves all staged arrivals into `shard`'s bulk-merge inbox,
    /// returning how many entries moved (telemetry: merge batching).
    fn drain_into(&self, shard: &mut Shard<Pending<M>>) -> usize {
        let mut guard = self.buf.lock().expect("inbox poisoned");
        let buf = &mut *guard;
        if buf.entries.is_empty() {
            return 0;
        }
        if buf.min < shard.inbox_min {
            shard.inbox_min = buf.min;
        }
        let moved = buf.entries.len();
        shard.inbox.append(&mut buf.entries);
        buf.min = Key::max();
        self.min_time_bits
            .store(f64::INFINITY.to_bits(), Ordering::Release);
        moved
    }

    /// The staged minimum's time, lock-free (front scans only).
    fn min_time(&self) -> SimTime {
        SimTime::from_secs(f64::from_bits(self.min_time_bits.load(Ordering::Acquire)))
    }
}

/// One shard's window-processing state, owned by the executor that
/// claimed it during a window and by the coordinator between windows.
struct Task<M> {
    shard: Shard<Pending<M>>,
    /// Relaxed-mode trace rows: `(event key, row)`, in dispatch order.
    rows: Vec<(Key, Row)>,
    stats: SimStats,
    now: SimTime,
}

/// Raw-pointer view of the node cells, shared across the pool.
///
/// # Safety contract
///
/// Ownership of a cell is **dynamic, per window, per shard**: an
/// executor may dereference the cells of shard `s`'s nodes during a
/// window only if it *claimed* `s` for that window — either by winning
/// the `claims[s]` compare-exchange (pooled path) or by being the sole
/// inline executor. The partition maps each node to exactly one shard
/// and the claim flag flips `false → true` at most once per window, so
/// concurrent `&mut` accesses are disjoint. Happens-before for a cell
/// handed from window `k`'s owner to window `k+1`'s owner is the gate
/// chain: owner's `done.fetch_add(Release)` → coordinator's
/// `wait_done` `Acquire` loads → coordinator's claim reset and
/// `epoch.fetch_add(Release)` → new owner's `wait_epoch` `Acquire` →
/// new owner's claim CAS. Between windows (workers parked at the gate),
/// only the coordinator touches cells.
struct Cells<'a, M> {
    ptr: *mut NodeCell<M>,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [NodeCell<M>]>,
}

impl<M> Clone for Cells<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Cells<'_, M> {}

// SAFETY: sending a `Cells` to a worker moves only the raw pointer; the
// pointees (`NodeCell<M>`, which embed the boxed `Behavior` and staged
// `M` payloads) cross the thread boundary with it, hence `M: Send`.
// Which thread may then *dereference* which cell is governed by the
// struct-level claim contract above.
unsafe impl<M: Send> Send for Cells<'_, M> {}
// SAFETY: `&Cells` exposes no `&`-reachable cell data — every access
// goes through the `unsafe fn cell`/`all` below, whose callers must
// hold exclusive logical ownership (a window claim, or the coordinator
// between windows) per the struct-level contract, so sharing the handle
// itself between threads is sound (`M: Send`, not `M: Sync`, is the
// right bound: cells are handed off, never shared).
unsafe impl<M: Send> Sync for Cells<'_, M> {}

impl<'a, M> Cells<'a, M> {
    fn new(cells: &'a mut [NodeCell<M>]) -> Self {
        Cells {
            ptr: cells.as_mut_ptr(),
            len: cells.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// One node's cell.
    ///
    /// # Safety
    ///
    /// The caller must hold exclusive logical ownership of node `idx`
    /// per the struct-level contract: either it claimed `idx`'s shard
    /// for the current window (claim CAS won, or sole inline executor),
    /// or it is the coordinator between windows.
    #[allow(clippy::mut_from_ref)] // the &mut really is derived from a raw pointer, not from &self
    unsafe fn cell(&self, idx: usize) -> &mut NodeCell<M> {
        debug_assert!(idx < self.len);
        // SAFETY: `ptr..ptr+len` is a live `&mut [NodeCell<M>]` borrow
        // held exclusively by this `Cells` (constructor invariant), so
        // `idx < len` stays in bounds; uniqueness of the returned &mut
        // is the caller's obligation above.
        unsafe { &mut *self.ptr.add(idx) }
    }

    /// The whole slice.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread touching *any* cell — in
    /// practice, the coordinator between windows (workers parked at
    /// the gate).
    #[allow(clippy::mut_from_ref)] // the &mut really is derived from a raw pointer, not from &self
    unsafe fn all(&self) -> &mut [NodeCell<M>] {
        // SAFETY: `ptr` and `len` come verbatim from the exclusive
        // slice borrow captured at construction, which outlives `self`
        // via the PhantomData lifetime; exclusivity is the caller's
        // obligation above.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

/// Coordinator ⇄ worker rendezvous: a sense-counting gate that spins,
/// then yields, then parks on a condvar. The parking tier is what lets
/// the pool outlive a `run_until` call without burning CPU between
/// calls.
struct Gate {
    /// Incremented by the coordinator to open a window (or to release
    /// workers into shutdown when `stop` is set).
    epoch: AtomicU64,
    /// Count of workers finished with the current window.
    done: AtomicUsize,
    stop: AtomicBool,
    /// Set by a worker whose window processing panicked (it still
    /// counts itself done so the coordinator can notice and propagate
    /// instead of spinning forever).
    panicked: AtomicBool,
    /// Pointer to the current run's [`Pool`] window state, type-erased.
    /// Published before the run's first window, cleared after its last;
    /// workers dereference it only between an epoch open and their done
    /// acknowledgement.
    ctx: AtomicPtr<u8>,
    /// Condvar tier of the epoch wait (workers park here between runs).
    /// `open`/`shut_down` notify under the lock, so a worker that
    /// decided to wait while holding it cannot miss the wakeup.
    lock: Mutex<()>,
    parked: Condvar,
}

/// Yield iterations between the spin tier and the condvar tier of an
/// epoch wait. Within a run, the next window opens within microseconds,
/// so workers almost never reach the condvar; between runs they park
/// quickly instead of busy-yielding until the next `run_until` call.
const YIELDS_BEFORE_PARK: u32 = 64;

impl Gate {
    fn new() -> Self {
        Gate {
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            ctx: AtomicPtr::new(std::ptr::null_mut()),
            lock: Mutex::new(()),
            parked: Condvar::new(),
        }
    }

    /// Opens a window. The per-shard caps, claims, and deal stores all
    /// happen before this call on the coordinator thread, so the
    /// `Release` epoch bump publishes them to every worker's
    /// `wait_epoch` `Acquire`.
    fn open(&self) {
        self.done.store(0, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        // Wake any parked workers. Taking the lock orders this bump
        // against a worker's decision to wait: the worker re-checks the
        // epoch while holding the lock, so either it sees the new epoch
        // or it is already waiting when the notification fires.
        let _guard = self.lock.lock().expect("gate poisoned");
        self.parked.notify_all();
    }

    fn shut_down(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        let _guard = self.lock.lock().expect("gate poisoned");
        self.parked.notify_all();
    }

    /// Waits until the epoch differs from `seen`: spin, then yield, then
    /// park.
    fn wait_epoch(&self, seen: u64, spin_limit: u32) {
        let mut spins = 0u32;
        loop {
            if self.epoch.load(Ordering::Acquire) != seen {
                return;
            }
            if spins < spin_limit {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < spin_limit + YIELDS_BEFORE_PARK {
                spins += 1;
                std::thread::yield_now();
            } else {
                let mut guard = self.lock.lock().expect("gate poisoned");
                while self.epoch.load(Ordering::Acquire) == seen {
                    guard = self.parked.wait(guard).expect("gate poisoned");
                }
                return;
            }
        }
    }

    /// Waits until every worker has acknowledged the current window.
    /// A panicking worker counts itself done before unwinding, so this
    /// always terminates for an open window.
    fn wait_done(&self, workers: usize, spin_limit: u32) {
        spin_until(spin_limit, || self.done.load(Ordering::Acquire) >= workers);
    }
}

/// The persistent worker pool: the shared gate plus the OS threads.
/// Stored inside the simulation's event store; dropped (and joined)
/// with it.
pub(crate) struct PoolHandle {
    gate: Arc<Gate>,
    /// Worker count the threads were spawned with (later mutations of
    /// the requested count are ignored — the pool is fixed at spawn).
    workers: usize,
    /// Spin budget matched to the core count at spawn time.
    spin_limit: u32,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.gate.shut_down();
        for handle in self.handles.drain(..) {
            // A worker that panicked mid-run already delivered its
            // payload via the coordinator's propagation; the join
            // result is informational here.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolHandle(workers={})", self.workers)
    }
}

/// Spins up to `spin_limit` iterations, then yields. Windows are
/// microseconds apart, so a short spin usually wins — but when the
/// machine is oversubscribed (pinned worker counts above the core
/// count) the caller passes `0` and every wait yields immediately.
fn spin_until(spin_limit: u32, cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if spins < spin_limit {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Index and value of the earliest pending sample, if any.
fn earliest_sample(pending: &[SimTime]) -> Option<(usize, SimTime)> {
    pending
        .iter()
        .copied()
        .enumerate()
        .min_by(|a, b| a.1.cmp(&b.1))
}

/// Everything a window executor (worker thread or the inline path)
/// needs, bundled to keep signatures manageable.
struct Pool<'a, M> {
    tasks: &'a [Mutex<Task<M>>],
    inboxes: &'a [Inbox<M>],
    /// Post-window `head_key().time` bits per shard, published with
    /// `Release` by the claiming executor and read with `Acquire` by
    /// the coordinator's barrier scan and by other workers' steal-pass
    /// due checks. For the coordinator the gate edge alone would
    /// suffice (worker `done` `Release` → coordinator `wait_done`
    /// `Acquire` happens-before the scan), but the mid-window
    /// worker-vs-worker reads that stealing introduced have no gate
    /// edge — the explicit Release/Acquire pairing keeps every read of
    /// a head ordered after the advance that produced it. A stale head
    /// in a due check is still harmless: the claim CAS (an RMW, which
    /// always sees the latest claim value) arbitrates ownership.
    heads: &'a [AtomicU64],
    /// Per-shard window caps (exclusive, `f64::to_bits` of seconds),
    /// written by the coordinator between windows (`Relaxed`; published
    /// by the gate's `Release` epoch bump, read after the workers'
    /// `Acquire` epoch load).
    caps: &'a [AtomicU64],
    /// Per-shard claim flags, reset `false` by the coordinator between
    /// windows. The `false → true` compare-exchange is the claim: its
    /// atomicity makes window ownership exactly-once (see [`Cells`]).
    claims: &'a [AtomicBool],
    /// Per-shard dealt worker (`u32::MAX` = not dealt), written by the
    /// coordinator between windows like `caps`.
    planned: &'a [AtomicU32],
    cells: Cells<'a, M>,
    shared: &'a SimShared,
    shard_of: &'a [u32],
    until: SimTime,
}

impl<M> Clone for Pool<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Pool<'_, M> {}

impl<M> Pool<'_, M> {
    /// Shard `s`'s cap for the current window.
    fn cap(&self, s: usize) -> SimTime {
        time_from_bits(self.caps[s].load(Ordering::Relaxed))
    }
}

/// Reconstitutes the per-run window state from the gate's type-erased
/// context pointer.
///
/// # Safety
///
/// `ptr` must be the pointer published by the current run's coordinator,
/// and the caller must be inside the open-window span of the gate
/// protocol (the coordinator keeps the pointee alive until every worker
/// has acknowledged the window).
unsafe fn ctx_pool<'x, M>(ptr: *const u8) -> &'x Pool<'x, M> {
    debug_assert!(!ptr.is_null(), "window opened without a published ctx");
    // SAFETY: the coordinator stored this pointer from a live
    // `&Pool<M>` of the same monomorphization (workers and coordinator
    // share the simulation's single `M`) before opening the window, and
    // the caller contract pins the dereference inside the span where
    // the pointee is kept alive; `Pool` is `Copy + Sync`, so a shared
    // reference from another thread is sound. The `Ordering::Acquire`
    // load that produced `ptr` pairs with the coordinator's `Release`
    // store, making the pointee's initialization visible.
    unsafe { &*ptr.cast::<Pool<'x, M>>() }
}

impl<M> Simulation<M> {
    /// Overrides the parallel scheduler's resolved worker count.
    ///
    /// [`crate::shard::resolve_workers`] clamps the requested count to
    /// the machine's available parallelism at build time; this knob
    /// replaces that resolution outright (floored at 1), which is
    /// useful for pinning the pooled code path in tests and for
    /// measuring the deal-out balance ([`Simulation::planned_worker_events`])
    /// at a fixed logical worker count on any machine. Thread count
    /// never changes results — traces stay byte-identical. Must be
    /// called before the first parallel window: once the pool has
    /// spawned, the spawn-time count is fixed and later calls are
    /// ignored. No-op on serial schedulers.
    pub fn pin_workers(&mut self, workers: usize) {
        if let EventStore::Parallel(pq) = &mut self.store {
            pq.workers = workers.max(1);
        }
    }

    /// Cumulative per-worker totals of events *dealt* by the parallel
    /// executor's window balancer, or `None` on serial schedulers.
    ///
    /// Entry `w` sums, over all windows so far, the events dispatched
    /// by the shards the coordinator dealt to worker `w` in that
    /// window. This is the scheduler's load-balance record: it is a
    /// pure function of `(seed, config, worker count)` — unlike the
    /// per-thread *execution* shares, which depend on how the steal
    /// race resolves on a given machine — so benches and tests can
    /// assert on it deterministically.
    #[must_use]
    pub fn planned_worker_events(&self) -> Option<&[u64]> {
        match &self.store {
            EventStore::Parallel(pq) => Some(&pq.planned_events),
            EventStore::Serial(_) => None,
        }
    }
}

impl<M: Clone + Send + 'static> Simulation<M> {
    /// The parallel twin of the serial `run_until` loop. Called with the
    /// boot phase already done.
    pub(crate) fn run_parallel(
        &mut self,
        until: SimTime,
        obs: &mut dyn Observer,
    ) -> Result<(), RunError> {
        let Simulation {
            now,
            shared,
            cells,
            store,
            stats,
            ..
        } = self;
        let EventStore::Parallel(pq) = store else {
            unreachable!("run_parallel on a serial store");
        };
        let lookahead = shared.config.delay.min_delay();
        debug_assert!(
            lookahead.is_positive(),
            "parallel scheduler built with zero lookahead"
        );
        let nshards = pq.shards.len();
        let shared: &SimShared = shared;

        // Effective executor count: the resolved request, except that a
        // pool spawned by an earlier call fixes it for the simulation's
        // lifetime.
        let mut nworkers = pq.workers.clamp(1, nshards);
        let mut gate_bits: Option<(Arc<Gate>, usize, u32)> = None;
        if nworkers > 1 {
            let handle = pq
                .pool
                .get_or_insert_with(|| spawn_pool::<M>(nworkers, nshards));
            assert!(
                !handle.gate.panicked.load(Ordering::Relaxed),
                "a parallel worker died in a previous run; the pool cannot be reused"
            );
            nworkers = handle.workers;
            gate_bits = Some((Arc::clone(&handle.gate), handle.workers, handle.spin_limit));
        }
        if pq.shard_graph.is_none() {
            pq.shard_graph = Some(shard_adjacency(&shared.adjacency, &pq.shard_of, nshards));
        }
        if pq.planned_events.len() < nworkers {
            pq.planned_events.resize(nworkers, 0);
        }
        let claim_probe = pq.claim_probe;

        let tasks: Vec<Mutex<Task<M>>> = pq
            .shards
            .drain(..)
            .map(|shard| {
                Mutex::new(Task {
                    shard,
                    rows: Vec::new(),
                    stats: SimStats::default(),
                    now: *now,
                })
            })
            .collect();
        let inboxes: Vec<Inbox<M>> = (0..nshards).map(|_| Inbox::new()).collect();
        let heads: Vec<AtomicU64> = tasks
            .iter()
            .map(|t| {
                let time = t.lock().expect("task poisoned").shard.head_key().time;
                AtomicU64::new(time.as_secs().to_bits())
            })
            .collect();
        let caps: Vec<AtomicU64> = (0..nshards)
            .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
            .collect();
        let claims: Vec<AtomicBool> = (0..nshards).map(|_| AtomicBool::new(true)).collect();
        let planned: Vec<AtomicU32> = (0..nshards).map(|_| AtomicU32::new(u32::MAX)).collect();
        let pool = Pool {
            tasks: &tasks,
            inboxes: &inboxes,
            heads: &heads,
            caps: &caps,
            claims: &claims,
            planned: &planned,
            cells: Cells::new(cells),
            shared,
            shard_of: &pq.shard_of,
            until,
        };
        let mut windows = Windows {
            pending_samples: &mut pq.pending_samples,
            obs,
            stats,
            lookahead,
            until,
            graph: pq.shard_graph.as_deref().expect("graph built above"),
            nworkers,
            shard_cost: &mut pq.shard_cost,
            planned_events: &mut pq.planned_events,
            pending_rows: Vec::new(),
            m: vec![time_inf(); nshards],
            e: Vec::with_capacity(nshards),
            dijkstra: BinaryHeap::new(),
            order: Vec::with_capacity(nshards),
            bins: vec![0; nworkers],
            planned_of: vec![u32::MAX; nshards],
            prev_events: vec![0; nshards],
        };

        let result = if let Some((gate, workers, spin_limit)) = gate_bits {
            // Publish this run's window state. Workers read the pointer
            // only between an epoch open and their done acknowledgement,
            // and the coordinator keeps `pool` (and everything it
            // borrows) alive until after the final wait_done — so the
            // lifetime-erased dereference in the workers stays inside
            // the pointee's real lifetime.
            gate.ctx.store(
                std::ptr::from_ref(&pool).cast::<u8>().cast_mut(),
                Ordering::Release,
            );
            let result = windows.coordinate(pool, || {
                gate.open();
                gate.wait_done(workers, spin_limit);
                if gate.panicked.load(Ordering::Relaxed) {
                    // Every worker has acknowledged this window (the
                    // panicking one counts itself done before
                    // unwinding), so no thread still touches the
                    // per-run state we are about to unwind. Survivors
                    // park at the gate; the pool is poisoned and the
                    // next run (or drop) shuts it down.
                    panic!("a parallel worker panicked during a lookahead window");
                }
            });
            gate.ctx.store(std::ptr::null_mut(), Ordering::Release);
            result
        } else {
            // Single executor: same windows, same code path, no pool —
            // the calling thread claims every due shard itself, in an
            // order the claim probe may permute (results are invariant;
            // the property test below pins it).
            let mut outbox: Vec<Vec<Entry<Pending<M>>>> =
                (0..nshards).map(|_| Vec::new()).collect();
            let mut order: Vec<u32> = (0..nshards as u32).collect();
            let mut window_index = 0u64;
            windows.coordinate(pool, || {
                if let Some(seed) = claim_probe {
                    permute(&mut order, seed, window_index);
                }
                window_index += 1;
                for &s in &order {
                    let s = s as usize;
                    if shard_due(s, &pool) {
                        // The sole inline executor is worker 0, and the
                        // single-bin deal plans every due shard for it —
                        // record the claim so dealt + stolen still sums
                        // to the executed shard-windows.
                        let dealt = pool.planned[s].load(Ordering::Relaxed) == 0;
                        pool.shared.telemetry.claim(0, dealt);
                        advance_shard(s, pool, &mut outbox);
                    }
                }
                flush_outbox(&mut outbox, &inboxes);
            })
        };

        for task in tasks {
            let task = task.into_inner().expect("task poisoned");
            stats.absorb(task.stats);
            pq.shards.push(task.shard);
        }
        // Arrivals staged after a shard's last window (all beyond the
        // final caps) survive into the next run_until call.
        for (s, inbox) in inboxes.iter().enumerate() {
            let drained = inbox.drain_into(&mut pq.shards[s]);
            shared.telemetry.inbox_merged(s, drained as u64);
        }
        match result {
            Ok(()) => {
                *now = until;
                Ok(())
            }
            Err(err) => {
                // The stuck barrier time: everything below it was
                // processed and emitted, nothing at or above it ran.
                let RunError::LookaheadVanished { at, .. } = err;
                *now = (*now).max(at);
                Err(err)
            }
        }
    }
}

/// Spawns the persistent worker threads for a parallel simulation.
fn spawn_pool<M: Clone + Send + 'static>(nworkers: usize, nshards: usize) -> PoolHandle {
    let gate = Arc::new(Gate::new());
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // The coordinator thread also wants a core while workers run.
    let spin_limit = if avail > nworkers { 256 } else { 0 };
    let handles = (0..nworkers)
        .map(|w| {
            let gate = Arc::clone(&gate);
            std::thread::Builder::new()
                .name(format!("ftgcs-worker-{w}"))
                .spawn(move || worker_loop::<M>(w, nshards, &gate, spin_limit))
                .expect("spawn parallel worker thread")
        })
        .collect();
    PoolHandle {
        gate,
        workers: nworkers,
        spin_limit,
        handles,
    }
}

/// The coordinator's per-run state: the sample chain, the observer/stat
/// accumulators, the horizon solver's scratch, and the deal-out
/// bookkeeping it owns between windows.
struct Windows<'a> {
    pending_samples: &'a mut Vec<SimTime>,
    obs: &'a mut dyn Observer,
    stats: &'a mut SimStats,
    lookahead: SimDuration,
    until: SimTime,
    /// Inter-shard adjacency (deduped, no self-edges).
    graph: &'a [Vec<u32>],
    /// Deal-out bin count (= executor count this run).
    nworkers: usize,
    /// Persistent per-shard cost estimates (see [`ParQueue`]).
    shard_cost: &'a mut [u64],
    /// Persistent per-worker dealt-event totals (see [`ParQueue`]).
    planned_events: &'a mut [u64],
    /// Rows merged from finished windows but not yet emitted: with
    /// per-shard horizons, a row's time may exceed a *different*
    /// shard's pending front, so rows wait until the global front
    /// passes them.
    pending_rows: Vec<(Key, Row)>,
    /// Per-shard front `m_s` of the current barrier.
    m: Vec<SimTime>,
    /// Earliest-influence fixpoint `e_s` of the current barrier.
    e: Vec<SimTime>,
    /// Dijkstra frontier for the `e` relaxation.
    dijkstra: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Due shards of the current window, heaviest-cost first.
    order: Vec<u32>,
    /// Per-worker dealt cost this window (LPT packing state).
    bins: Vec<u64>,
    /// Worker each shard was dealt to this window (`u32::MAX` = idle).
    planned_of: Vec<u32>,
    /// Per-shard cumulative event counts at the previous barrier, for
    /// windowed deltas.
    prev_events: Vec<u64>,
}

impl Windows<'_> {
    /// The barrier loop: collect the last window's results, scan shard
    /// fronts, emit matured rows, fire due samples, solve per-shard
    /// horizons, deal shards to executors, run the window.
    fn coordinate<M: Clone + Send>(
        &mut self,
        pool: Pool<'_, M>,
        mut run_window: impl FnMut(),
    ) -> Result<(), RunError> {
        let nshards = pool.tasks.len();
        let tel = &pool.shared.telemetry;
        let mut ran_window = false;
        loop {
            // Telemetry phase clock: collect + scan + row emission +
            // samples are the coordinator's "merge" work. Inert stamps
            // when telemetry is off.
            let t_merge = tel.stamp();
            // Collect the previous window's results: merge the relaxed
            // row buffers into the pending buffer and account per-shard
            // event deltas to the cost model and the deal record.
            // (Skipped before the first window so persisted costs are
            // not decayed by stepping runs that open zero windows.)
            if ran_window {
                for (s, task) in pool.tasks.iter().enumerate() {
                    let mut task = task.lock().expect("task poisoned");
                    self.pending_rows.append(&mut task.rows);
                    let events = task.stats.events;
                    let delta = events - self.prev_events[s];
                    self.prev_events[s] = events;
                    self.shard_cost[s] = if delta > 0 {
                        delta
                    } else {
                        self.shard_cost[s] / 2
                    };
                    let w = self.planned_of[s];
                    if w != u32::MAX {
                        self.planned_events[w as usize] += delta;
                    }
                }
            }

            // Scan shard fronts (published heads + staged inboxes) for
            // the global minimum pending time.
            let mut t_min = time_inf();
            for s in 0..nshards {
                // Acquire pairs with the claiming executor's Release
                // head publication (see `Pool::heads`).
                let head = time_from_bits(pool.heads[s].load(Ordering::Acquire));
                let m = head.min(pool.inboxes[s].min_time());
                self.m[s] = m;
                t_min = t_min.min(m);
            }
            let t_min = (t_min < time_inf()).then_some(t_min);

            // Emit every pending row strictly below the watermark: no
            // future event (all at/after `t_min`) or sample can emit
            // below it, and ties at the watermark itself must wait (an
            // unprocessed event at `t_min` may carry a smaller tie).
            let mut watermark = t_min.unwrap_or_else(time_inf);
            if let Some((_, ts)) = earliest_sample(self.pending_samples) {
                watermark = watermark.min(ts);
            }
            self.emit_rows_below(watermark);

            // Fire due samples: engine-global reads, dispatched here at
            // the barrier. Every cap is clamped at the sample time, so
            // no processed event at or after it exists — and at equal
            // times samples sort before node events, so firing now
            // matches the serial tie-break.
            while let Some((idx, ts)) = earliest_sample(self.pending_samples) {
                if ts > self.until || t_min.is_some_and(|tm| ts > tm) {
                    break;
                }
                self.pending_samples.swap_remove(idx);
                self.stats.events += 1;
                tel.sample_dispatched();
                // SAFETY: workers are parked at the gate; the
                // coordinator is the only thread touching node state.
                take_sample(unsafe { pool.cells.all() }, ts, self.obs);
                if let Some(interval) = pool.shared.config.sample_interval {
                    self.pending_samples.push(ts + interval);
                }
            }

            let Some(tm) = t_min else {
                tel.phase(Phase::Merge, t_merge);
                break;
            };
            if tm > self.until {
                tel.phase(Phase::Merge, t_merge);
                break;
            }
            tel.phase(Phase::Merge, t_merge);

            // Solve per-shard horizons and deal shards to executors;
            // fails (cleanly, workers parked) if the lookahead has
            // vanished below the f64 ulp at this magnitude.
            let t_barrier = tel.stamp();
            let planned = self.plan_window(&pool, tm);
            tel.phase(Phase::Barrier, t_barrier);
            if let Err(err) = planned {
                // Everything processed so far is real — flush it so the
                // partial trace survives the error.
                self.emit_rows_below(time_inf());
                return Err(err);
            }
            ran_window = true;
            let t_exec = tel.stamp();
            run_window();
            tel.phase(Phase::Execute, t_exec);
        }
        // Run complete: every pending event is beyond `until`, so all
        // buffered rows are final.
        self.emit_rows_below(time_inf());
        Ok(())
    }

    /// Emits pending rows with `time < watermark`, in global key order.
    fn emit_rows_below(&mut self, watermark: SimTime) {
        if self.pending_rows.is_empty() {
            return;
        }
        // Stable sort: a single event's rows share its key and must
        // keep their emission order.
        self.pending_rows.sort_by_key(|&(key, _)| key);
        let cut = self
            .pending_rows
            .partition_point(|&(key, _)| key.time < watermark);
        for (_, row) in self.pending_rows.drain(..cut) {
            self.obs.on_row_owned(row);
        }
    }

    /// Computes this window's per-shard caps (the earliest-influence
    /// fixpoint over the shard graph), checks progress, and deals the
    /// due shards to executors (greedy LPT over cost estimates). All
    /// stores are published to workers by the subsequent gate open.
    fn plan_window<M>(&mut self, pool: &Pool<'_, M>, tm: SimTime) -> Result<(), RunError> {
        let nshards = self.m.len();
        let inf = time_inf();

        // e_s = min(m_s, min over neighbors s' of e_s' + L), by
        // Dijkstra with uniform weight L: pop the smallest tentative
        // value, relax its neighbors. Monotone (weights ≥ 0), so each
        // shard settles at its true fixpoint value.
        self.e.clear();
        self.e.extend_from_slice(&self.m);
        self.dijkstra.clear();
        for s in 0..nshards {
            if self.e[s] < inf && !self.graph[s].is_empty() {
                self.dijkstra.push(Reverse((self.e[s], s as u32)));
            }
        }
        while let Some(Reverse((t, s))) = self.dijkstra.pop() {
            if t > self.e[s as usize] {
                continue; // stale frontier entry
            }
            let reach = t + self.lookahead;
            for &n in &self.graph[s as usize] {
                if reach < self.e[n as usize] {
                    self.e[n as usize] = reach;
                    self.dijkstra.push(Reverse((reach, n)));
                }
            }
        }

        // cap_s: the earliest any neighbor's influence can arrive. The
        // progress check runs on the raw caps: if no shard at the
        // global front can advance, `L` has vanished below the f64 ulp
        // at this magnitude and every future window would be empty.
        let next_sample = earliest_sample(self.pending_samples).map(|(_, ts)| ts);
        let mut progress = false;
        let mut horizon_span = 0.0f64;
        self.order.clear();
        for s in 0..nshards {
            let mut cap = inf;
            for &n in &self.graph[s] {
                cap = cap.min(self.e[n as usize] + self.lookahead);
            }
            if self.m[s] == tm && cap > tm {
                progress = true;
            }
            // Clamps: never past the next engine sample (samples must
            // dispatch before any event at/after them), and never more
            // than a fixed horizon past the shard's own front (bounds
            // the pending-row buffer; costs no real parallelism).
            if let Some(ts) = next_sample {
                cap = cap.min(ts);
            }
            if self.m[s] < inf {
                cap = cap.min(self.m[s] + self.lookahead * HORIZON_WINDOW_FACTOR);
            }
            pool.caps[s].store(time_to_bits(cap), Ordering::Relaxed);
            self.planned_of[s] = u32::MAX;
            if self.m[s] < cap && self.m[s] <= self.until {
                // Due shard: `cap − m` is the horizon this window
                // grants it (both finite here — a finite front clamps
                // its own cap).
                horizon_span += cap.as_secs() - self.m[s].as_secs();
                self.order.push(s as u32);
            }
        }
        if !progress {
            return Err(RunError::LookaheadVanished {
                at: tm,
                lookahead: self.lookahead,
            });
        }
        pool.shared
            .telemetry
            .window_planned(self.order.len() as u64, horizon_span);

        // Deal-out: due shards, heaviest estimated cost first, each to
        // the currently lightest bin (ties to the lowest worker). The
        // assignment is a pure function of simulation state, so the
        // recorded balance is machine-independent; the steal pass only
        // redistributes *execution*, never the record.
        self.order
            .sort_by_key(|&s| (Reverse(self.shard_cost[s as usize]), s));
        self.bins.clear();
        self.bins.resize(self.nworkers, 0);
        for &s in &self.order {
            let mut w = 0usize;
            for b in 1..self.nworkers {
                if self.bins[b] < self.bins[w] {
                    w = b;
                }
            }
            self.planned_of[s as usize] = w as u32;
            self.bins[w] += self.shard_cost[s as usize] + 1;
        }
        for s in 0..nshards {
            pool.planned[s].store(self.planned_of[s], Ordering::Relaxed);
            // Reset the claim; workers are parked, and the gate's
            // Release epoch bump publishes the reset together with the
            // caps and the deal.
            pool.claims[s].store(false, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Whether shard `s` has any event below its cap this window. A pure
/// fast-path filter: a stale head/inbox read can only mis-report a
/// shard as due (the claim CAS then arbitrates) or as idle after
/// another executor already claimed it — never skip real work, because
/// mid-window arrivals always land at or beyond `cap_s` (the horizon
/// floor), so a shard idle at the barrier stays idle all window.
fn shard_due<M>(s: usize, pool: &Pool<'_, M>) -> bool {
    let cap = pool.cap(s);
    let head = time_from_bits(pool.heads[s].load(Ordering::Acquire));
    let m = head.min(pool.inboxes[s].min_time());
    m < cap && m <= pool.until
}

/// Claims shard `s` for this window and advances it; no-ops if the
/// shard is idle or another executor holds the claim. `me` identifies
/// the claiming executor for the telemetry dealt/stolen record.
fn try_claim_advance<M: Clone + Send>(
    s: usize,
    pool: Pool<'_, M>,
    outbox: &mut [Vec<Entry<Pending<M>>>],
    me: u32,
) {
    if !shard_due(s, &pool) {
        return;
    }
    // The claim. Success ordering Acquire: pairs with the previous
    // owner's Release head store for the fast path, though the real
    // inter-window visibility edge is the gate chain documented on
    // `Cells` (claims are reset only between windows, so within a
    // window the flag flips false → true at most once — that atomicity
    // alone makes cell ownership exclusive).
    if pool.claims[s]
        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        return;
    }
    // Won the claim: record whether this shard was dealt to us or
    // stolen. A pure side-channel write — the claim outcome itself is
    // machine-dependent, the dealt/stolen *sum* is not.
    let dealt = pool.planned[s].load(Ordering::Relaxed) == me;
    pool.shared.telemetry.claim(me as usize, dealt);
    advance_shard(s, pool, outbox);
}

/// One worker: waits at the gate (spin → yield → park), processes the
/// shards the coordinator dealt it, then sweeps every shard still
/// unclaimed (work stealing), and flushes its outbox. Lives for the
/// whole simulation; between `run_until` calls it parks on the gate's
/// condvar.
fn worker_loop<M: Clone + Send>(worker: usize, nshards: usize, gate: &Gate, spin_limit: u32) {
    let mut outbox: Vec<Vec<Entry<Pending<M>>>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut seen = 0u64;
    let me = worker as u32;
    loop {
        gate.wait_epoch(seen, spin_limit);
        seen = seen.wrapping_add(1);
        if gate.stop.load(Ordering::Relaxed) {
            return;
        }
        // SAFETY: the coordinator published this run's Pool before
        // opening the window and keeps it alive until every worker has
        // acknowledged; we acknowledge only after the last dereference.
        let pool = unsafe { ctx_pool::<M>(gate.ctx.load(Ordering::Acquire)) };
        // A panicking behavior must not strand the coordinator: catch,
        // flag, count this worker done, and re-raise so the panic is
        // reported on this thread. (Unwind safety: the run is being
        // torn down — the poisoned task mutexes are never read.)
        let window = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Pass 1: the shards dealt to this worker (the balanced
            // plan), claimed so a stealing peer cannot double-run them.
            for s in 0..nshards {
                if pool.planned[s].load(Ordering::Relaxed) == me {
                    try_claim_advance(s, *pool, &mut outbox, me);
                }
            }
            // Pass 2: steal — sweep every shard still unclaimed, so an
            // executor that finished its plan early drains stragglers
            // instead of idling at the barrier.
            for s in 0..nshards {
                try_claim_advance(s, *pool, &mut outbox, me);
            }
            flush_outbox(&mut outbox, pool.inboxes);
        }));
        if let Err(payload) = window {
            gate.panicked.store(true, Ordering::Relaxed);
            gate.done.fetch_add(1, Ordering::Release);
            std::panic::resume_unwind(payload);
        }
        gate.done.fetch_add(1, Ordering::Release);
    }
}

/// Delivers a window's batched cross-shard sends: one inbox lock per
/// destination shard instead of one per message.
fn flush_outbox<M>(outbox: &mut [Vec<Entry<Pending<M>>>], inboxes: &[Inbox<M>]) {
    for (dst, batch) in outbox.iter_mut().enumerate() {
        if !batch.is_empty() {
            inboxes[dst].stage_batch(batch);
        }
    }
}

/// Advances one shard through the window: absorb staged arrivals,
/// pop-and-dispatch every local event below the shard's cap, publish
/// the new head.
fn advance_shard<M: Clone + Send>(
    s: usize,
    pool: Pool<'_, M>,
    outbox: &mut [Vec<Entry<Pending<M>>>],
) {
    let cap = pool.cap(s);
    let tel = &pool.shared.telemetry;
    tel.shard_window(s);
    let mut task = pool.tasks[s].lock().expect("task poisoned");
    let task = &mut *task;
    let drained = pool.inboxes[s].drain_into(&mut task.shard);
    tel.inbox_merged(s, drained as u64);
    loop {
        let head = task.shard.head_key();
        if head == Key::max() || head.time >= cap || head.time > pool.until {
            break;
        }
        let entry = task.shard.pop_min().expect("non-empty head implies entry");
        debug_assert!(entry.key.time >= task.now, "shard time went backwards");
        task.now = entry.key.time;
        task.stats.events += 1;
        let node = entry
            .payload
            .owner()
            .expect("samples never enter shard heaps");
        tel.event_dispatched(node);
        debug_assert_eq!(
            pool.shard_of[node.index()] as usize,
            s,
            "event on wrong shard"
        );
        // SAFETY: this executor claimed shard `s` for the current
        // window (claim CAS won, or sole inline executor), so it holds
        // exclusive logical ownership of every node mapped to `s` —
        // see the `Cells` contract.
        let cell = unsafe { pool.cells.cell(node.index()) };
        run_event(
            cell,
            node,
            pool.shared,
            QueueKind::Worker {
                local: &mut task.shard,
                outbox,
                shard_of: pool.shard_of,
                my_shard: s as u32,
            },
            RowSink::Buffered(&mut task.rows),
            &mut task.stats,
            entry.key.time,
            entry.key,
            entry.payload,
        );
    }
    // Release pairs with the Acquire loads in the coordinator scan and
    // in peers' steal-pass due checks (see `Pool::heads`).
    pool.heads[s].store(
        task.shard.head_key().time.as_secs().to_bits(),
        Ordering::Release,
    );
}

/// splitmix64 step — the claim probe's permutation source. Not a
/// simulation RNG: it only shuffles the inline claim order, which is
/// invisible to results.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates over the inline path's claim order, keyed by the probe
/// seed and the window index.
fn permute(order: &mut [u32], seed: u64, window: u64) {
    let mut state = seed ^ window.wrapping_mul(0xD1B5_4A32_D192_ED03);
    for i in (1..order.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{Ctx, RunError, SimBuilder, SimConfig};
    use crate::node::{Behavior, NodeId, TimerTag, TrackId};
    use crate::shard::{Partition, SchedulerKind};
    use crate::time::{SimDuration, SimTime};
    use proptest::prelude::*;

    /// A minimal churn workload without shared test state, so the
    /// parallel smoke test needs no synchronization of its own.
    struct Beater;

    impl Behavior<u32> for Beater {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer_at(TrackId::MAIN, 0.005, TimerTag::new(0));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _tag: TimerTag) {
            let token = ctx.rng().next_u32();
            ctx.broadcast(token);
            let next = ctx.track_value(TrackId::MAIN) + 0.005;
            ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: &u32) {
            ctx.emit("beat", vec![from.index() as f64, f64::from(*msg % 64)]);
        }
    }

    fn ring_sim(n: usize, scheduler: SchedulerKind) -> crate::engine::Simulation<u32> {
        let config = SimConfig {
            seed: 11,
            sample_interval: Some(SimDuration::from_millis(20.0)),
            scheduler,
            ..SimConfig::default()
        };
        let mut b = SimBuilder::new(config);
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node(Box::new(Beater))).collect();
        for i in 0..n {
            b.add_edge(ids[i], ids[(i + 1) % n]);
        }
        b.build()
    }

    fn run(scheduler: SchedulerKind) -> Vec<u8> {
        let mut sim = ring_sim(8, scheduler);
        sim.run_until(SimTime::from_secs(0.5));
        sim.run_for(SimDuration::from_secs(0.25));
        sim.into_trace().to_bytes()
    }

    #[test]
    fn parallel_matches_global_heap_on_every_worker_count() {
        let reference = run(SchedulerKind::Global);
        assert!(!reference.is_empty());
        for workers in [1usize, 2, 3, 8] {
            let parallel = run(SchedulerKind::Parallel {
                partition: Partition::by_blocks(8, 2),
                workers,
            });
            assert_eq!(
                parallel, reference,
                "parallel trace diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn pool_survives_many_fine_grained_steps() {
        // Stepping in many small increments must reuse the persistent
        // pool (one spawn) and reproduce the one-shot trace exactly.
        let one_shot = run(SchedulerKind::Parallel {
            partition: Partition::by_blocks(8, 2),
            workers: 2,
        });
        let mut sim = ring_sim(
            8,
            SchedulerKind::Parallel {
                partition: Partition::by_blocks(8, 2),
                workers: 2,
            },
        );
        // Force the pooled path regardless of this machine's cores.
        sim.pin_workers(2);
        for _ in 0..150 {
            sim.run_for(SimDuration::from_millis(5.0));
        }
        if let crate::engine::EventStore::Parallel(pq) = &sim.store {
            assert!(pq.pool.is_some(), "pool must persist across steps");
        }
        assert_eq!(
            sim.into_trace().to_bytes(),
            one_shot,
            "stepping granularity changed the trace"
        );
    }

    #[test]
    fn deal_out_balances_a_ragged_partition() {
        // Hub-and-spoke shard sizes: one 12-node shard plus 20 singles
        // on a 32-ring. Under the old static `shard % workers` split,
        // worker 0 owned the hub shard *plus* every fourth spoke; the
        // deal-out packs the hub alone against spread spokes, so no
        // worker's dealt share exceeds the hub's own ~37.5% by much —
        // and never the 60% the acceptance bar sets.
        let mut assignment = vec![0usize; 12];
        assignment.extend(1..=20usize);
        let mut sim = ring_sim(
            32,
            SchedulerKind::Parallel {
                partition: Partition::from_assignment(assignment),
                workers: 1,
            },
        );
        // Fixed logical worker count => machine-independent balance.
        sim.pin_workers(4);
        sim.run_until(SimTime::from_secs(0.5));
        let loads = sim
            .planned_worker_events()
            .expect("parallel scheduler records dealt loads")
            .to_vec();
        assert_eq!(loads.len(), 4);
        let total: u64 = loads.iter().sum();
        assert!(total > 0, "no events dealt");
        for (w, &load) in loads.iter().enumerate() {
            let share = load as f64 / total as f64;
            assert!(
                share < 0.6,
                "worker {w} dealt {share:.2} of all events ({loads:?})"
            );
        }
        // The trace must still match the serial reference exactly.
        let reference = {
            let mut s = ring_sim(32, SchedulerKind::Global);
            s.run_until(SimTime::from_secs(0.5));
            s.into_trace().to_bytes()
        };
        assert_eq!(
            sim.into_trace().to_bytes(),
            reference,
            "deal-out changed the trace"
        );
    }

    /// A behavior whose second timer lands at a magnitude where the
    /// configured (pathologically small) lookahead is below the f64
    /// ulp, so no parallel window can advance past it.
    struct FarTimer {
        fired: bool,
    }

    impl Behavior<()> for FarTimer {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            // ulp(1e-4) ≈ 1.4e-20 < the one-ulp lookahead below: this
            // first timer still fits in a window and emits a row.
            ctx.set_timer_at(TrackId::MAIN, 1.0e-4, TimerTag::new(0));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _tag: TimerTag) {
            if !self.fired {
                self.fired = true;
                ctx.emit("early", vec![1.0]);
                // ulp(0.01) ≈ 1.7e-18 > the lookahead: vanishes here.
                ctx.set_timer_at(TrackId::MAIN, 0.01, TimerTag::new(0));
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
    }

    /// A pathological `d − U` of exactly one ulp of `d = 1 ms`
    /// (≈ 2.2e-19 s): positive, so the builder accepts it, but below
    /// the f64 time resolution everywhere past t ≈ 1e-3.
    fn far_timer_sim(workers: usize) -> crate::engine::Simulation<()> {
        use crate::network::{DelayConfig, DelayDistribution};
        let d = 0.001f64;
        let u = f64::from_bits(d.to_bits() - 1);
        let config = SimConfig {
            rho: 0.0, // exact track == Newtonian time for the test
            delay: DelayConfig::new(
                SimDuration::from_secs(d),
                SimDuration::from_secs(u),
                DelayDistribution::Uniform,
            ),
            sample_interval: None,
            scheduler: SchedulerKind::Parallel {
                partition: Partition::from_assignment(vec![0, 1]),
                workers,
            },
            ..SimConfig::default()
        };
        let mut b = SimBuilder::new(config);
        let a = b.add_node(Box::new(FarTimer { fired: false }));
        let z = b.add_node(Box::new(FarTimer { fired: false }));
        // The edge is what constrains the horizon: without neighbors a
        // shard's cap is infinite and no livelock is possible.
        b.add_edge(a, z);
        b.build()
    }

    #[test]
    fn vanishing_lookahead_is_a_structured_error() {
        let mut sim = far_timer_sim(1);
        let err = sim
            .try_run_until(SimTime::from_secs(1.0))
            .expect_err("lookahead must vanish at t = 0.01");
        let RunError::LookaheadVanished { at, lookahead } = err;
        assert_eq!(at, SimTime::from_secs(0.01));
        assert!(lookahead.is_positive());
        assert!(err.to_string().contains("vanishes"), "got: {err}");
        // The partial trace (the rows emitted at t = 1e-4) survives.
        assert!(
            !sim.trace().to_bytes().is_empty(),
            "partial trace lost on error"
        );
        // The clock stopped at the stuck barrier, and retrying reports
        // the same error instead of wedging or panicking.
        assert_eq!(sim.now(), SimTime::from_secs(0.01));
        let again = sim.try_run_until(SimTime::from_secs(1.0));
        assert_eq!(again, Err(err));
    }

    #[test]
    #[should_panic(expected = "vanishes")]
    fn vanishing_lookahead_panics_via_run_until() {
        // The pooled path: the error must come out of `run_until` as a
        // panic *after* a clean barrier stop — workers parked, pool
        // reusable/joinable — not as a mid-window deadlock. Dropping
        // the simulation during unwind joins the pool, which hangs (and
        // fails the test) if any worker were stranded.
        let mut sim = far_timer_sim(2);
        sim.pin_workers(2);
        sim.run_until(SimTime::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates_instead_of_hanging() {
        struct Bomb;
        impl Behavior<()> for Bomb {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer_at(TrackId::MAIN, 0.01, TimerTag::new(0));
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {
                panic!("behavior exploded");
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
        }
        let mut b = SimBuilder::<()>::new(SimConfig {
            scheduler: SchedulerKind::Parallel {
                partition: Partition::by_blocks(2, 1),
                workers: 2,
            },
            ..SimConfig::default()
        });
        b.add_node(Box::new(Bomb));
        b.add_node(Box::new(Bomb));
        let mut sim = b.build();
        // Force two real OS threads regardless of this machine's core
        // count (thread count never changes results; this only selects
        // the pooled code path).
        sim.pin_workers(2);
        sim.run_until(SimTime::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        use crate::network::{DelayConfig, DelayDistribution};
        let config = SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_millis(1.0),
                SimDuration::from_millis(1.0),
                DelayDistribution::Uniform,
            ),
            scheduler: SchedulerKind::Parallel {
                partition: Partition::single(1),
                workers: 2,
            },
            ..SimConfig::default()
        };
        let mut b = SimBuilder::<()>::new(config);
        struct Quiet;
        impl Behavior<()> for Quiet {
            fn on_start(&mut self, _: &mut Ctx<'_, ()>) {}
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {}
        }
        b.add_node(Box::new(Quiet));
        let _ = b.build();
    }

    proptest! {
        /// Any per-window shard claim order yields the identical merged
        /// trace: shards are independent within a window, so ownership
        /// order is invisible to results. The probe shuffles the inline
        /// executor's claim sequence; the pooled paths' racy claim
        /// orders are a subset of these (and are stress-tested across
        /// real threads in `tests/shard_stealing.rs`).
        #[test]
        fn claim_order_never_changes_the_trace(probe in 1u64..u64::MAX) {
            static REFERENCE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
            let reference = REFERENCE.get_or_init(|| run(SchedulerKind::Global));
            let mut sim = ring_sim(
                8,
                SchedulerKind::Parallel {
                    partition: Partition::by_blocks(8, 2),
                    workers: 1,
                },
            );
            if let crate::engine::EventStore::Parallel(pq) = &mut sim.store {
                pq.claim_probe = Some(probe);
            }
            sim.run_until(SimTime::from_secs(0.5));
            sim.run_for(SimDuration::from_secs(0.25));
            prop_assert!(
                &sim.into_trace().to_bytes() == reference,
                "claim order {} changed the trace",
                probe
            );
        }
    }
}
