//! The parallel shard executor.
//!
//! [`SchedulerKind::Parallel`](crate::shard::SchedulerKind) advances the
//! per-shard event heaps of [`crate::shard`] on a pool of worker threads
//! between **conservative lookahead barriers**. The model provides the
//! safety argument: every message is delayed by at least `d − U > 0`, so
//! if `T₀` is the globally earliest pending event, *no* event created
//! during the window can land before `T₀ + (d − U)`. Each shard may
//! therefore process all of its own events with `time < T₀ + (d − U)`
//! without consulting the others — the classic Chandy–Misra window,
//! executed here truly in parallel.
//!
//! Determinism and byte-identity with the serial engines come from three
//! ingredients, none of which involve cross-thread ordering:
//!
//! * **Scheduler-independent keys.** Every event is stamped
//!   `(time, source, per-source counter)` by the node that creates it
//!   ([`crate::engine`]); within a shard, events dispatch in key order,
//!   and the per-node state evolution is a pure function of that node's
//!   own event sequence (per-node RNG and delay streams included).
//! * **Relaxed trace buffers.** Workers buffer emitted rows per shard,
//!   tagged with the emitting event's key; the coordinator merges them
//!   into global key order at each barrier and streams the merged batch
//!   to the run's [`Observer`]. Since windows partition time, the
//!   concatenation of merged windows is exactly the serial engine's
//!   strict in-order stream.
//! * **Barrier-handled samples.** Periodic clock samples read *every*
//!   node's clock, so they are executed by the coordinator between
//!   windows (windows are capped at the next sample time), exactly where
//!   the serial engine dispatches them.
//!
//! Cross-shard sends are batched in a per-worker outbox and flushed into
//! the destination shards' mutex-guarded inboxes once per window (one
//! lock per destination instead of one per message); owners absorb their
//! inbox when they next enter a window. The lookahead floor guarantees
//! staged arrivals never belong to the window they were created in, so
//! flush/drain ordering across workers is irrelevant.
//!
//! The worker count is a pure throughput knob — results are
//! byte-identical on every count — so it is clamped to the machine's
//! available parallelism ([`crate::shard::resolve_workers`]), and a
//! resolved count of one skips the pool entirely and runs the same
//! windows inline on the calling thread. The pool is hand-rolled
//! (a spin/yield/park gate) because the build environment has no
//! crates.io access; windows are short, so the gate spins briefly before
//! yielding — and yields immediately when the machine is oversubscribed.
//!
//! **The pool persists across `run_until` calls.** Threads are spawned
//! on the first multi-worker window and stored in the simulation's event
//! store; between calls they park on a condvar, so a driver stepping the
//! simulation in fine increments pays no per-call thread-spawn cost.
//! Each `run_until` publishes a pointer to its per-run window state
//! through the gate; the stepping-granularity equivalence test in
//! `tests/observer_equivalence.rs` pins that stepping never changes the
//! trace.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::engine::{
    run_event, take_sample, EventStore, NodeCell, Pending, QueueKind, RowSink, SimShared, SimStats,
    Simulation,
};
use crate::node::NodeId;
use crate::observe::Observer;
use crate::shard::{Entry, Key, Partition, Shard};
use crate::time::{SimDuration, SimTime};
use crate::trace::Row;

/// The parallel executor's event store: per-shard heaps plus the sample
/// chain (samples never enter a shard — they are engine-global) and the
/// persistent worker pool.
pub(crate) struct ParQueue<M> {
    pub(crate) shards: Vec<Shard<Pending<M>>>,
    pub(crate) shard_of: Vec<u32>,
    /// Resolved worker count (see [`crate::shard::resolve_workers`]).
    pub(crate) workers: usize,
    /// Pending engine-global sample times (usually one; transiently more
    /// after `set_sample_interval` toggles, mirroring the serial queue).
    pub(crate) pending_samples: Vec<SimTime>,
    /// Worker threads, spawned lazily on the first multi-worker
    /// `run_until` and kept alive (parked between runs) until the
    /// simulation is dropped.
    pub(crate) pool: Option<PoolHandle>,
}

impl<M> ParQueue<M> {
    pub(crate) fn new(partition: &Partition, workers: usize) -> Self {
        let count = partition.shard_count().max(1);
        ParQueue {
            shards: (0..count).map(|_| Shard::new()).collect(),
            shard_of: partition.shard_map().to_vec(),
            workers,
            pending_samples: Vec::new(),
            pool: None,
        }
    }

    /// Serial-phase push (boot / between runs): straight into the owning
    /// shard's heap.
    pub(crate) fn push(&mut self, dst: NodeId, time: SimTime, tie: u128, payload: Pending<M>) {
        let shard = self.shard_of[dst.index()] as usize;
        self.shards[shard].heap.push(Entry {
            key: Key { time, tie },
            payload,
        });
    }
}

impl<M> std::fmt::Debug for ParQueue<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ParQueue(shards={}, workers={}, pool={})",
            self.shards.len(),
            self.workers,
            if self.pool.is_some() { "live" } else { "-" }
        )
    }
}

/// Staged cross-shard arrivals for one shard, with their running
/// minimum key so barrier head-scans are O(1).
struct InboxBuf<M> {
    entries: Vec<Entry<Pending<M>>>,
    min: Key,
}

/// One shard's arrival inbox: the buffer itself behind a mutex, plus a
/// lock-free mirror of the staged minimum's *time* so the coordinator's
/// per-barrier scan needs no locks at all (matching the `heads` array).
pub(crate) struct Inbox<M> {
    buf: Mutex<InboxBuf<M>>,
    /// `f64::to_bits` of `buf.min.time` (`INFINITY` when empty).
    /// Written only while holding `buf`'s lock; read `Relaxed` by the
    /// barrier scan, whose visibility rides the gate's release/acquire
    /// edges exactly like the shard heads.
    min_time_bits: AtomicU64,
}

impl<M> Inbox<M> {
    fn new() -> Self {
        Inbox {
            buf: Mutex::new(InboxBuf {
                entries: Vec::new(),
                min: Key::max(),
            }),
            min_time_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// Appends one worker's window batch for this shard.
    fn stage_batch(&self, batch: &mut Vec<Entry<Pending<M>>>) {
        let mut buf = self.buf.lock().expect("inbox poisoned");
        for entry in batch.iter() {
            if entry.key < buf.min {
                buf.min = entry.key;
            }
        }
        let min_bits = buf.min.time.as_secs().to_bits();
        buf.entries.append(batch);
        self.min_time_bits.store(min_bits, Ordering::Relaxed);
    }

    /// Moves all staged arrivals into `shard`'s bulk-merge inbox.
    fn drain_into(&self, shard: &mut Shard<Pending<M>>) {
        let mut guard = self.buf.lock().expect("inbox poisoned");
        let buf = &mut *guard;
        if buf.entries.is_empty() {
            return;
        }
        if buf.min < shard.inbox_min {
            shard.inbox_min = buf.min;
        }
        shard.inbox.append(&mut buf.entries);
        buf.min = Key::max();
        self.min_time_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
    }

    /// The staged minimum's time, lock-free (barrier scan only).
    fn min_time(&self) -> SimTime {
        SimTime::from_secs(f64::from_bits(self.min_time_bits.load(Ordering::Relaxed)))
    }
}

/// One shard's window-processing state, owned by its worker during a
/// window and by the coordinator between windows.
struct Task<M> {
    shard: Shard<Pending<M>>,
    /// Relaxed-mode trace rows: `(event key, row)`, in dispatch order.
    rows: Vec<(Key, Row)>,
    stats: SimStats,
    now: SimTime,
}

/// Raw-pointer view of the node cells, shared across the pool.
///
/// # Safety contract
///
/// During a window, worker `w` dereferences only cells of nodes whose
/// shard is statically assigned to `w` (`shard % workers == w`), and the
/// partition maps each node to exactly one shard — so concurrent `&mut`
/// accesses are disjoint. Between windows (workers parked at the gate),
/// only the coordinator touches cells. Visibility is established by the
/// gate's release/acquire edges and the task mutexes.
struct Cells<'a, M> {
    ptr: *mut NodeCell<M>,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [NodeCell<M>]>,
}

impl<M> Clone for Cells<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Cells<'_, M> {}

// SAFETY: sending a `Cells` to a worker moves only the raw pointer; the
// pointees (`NodeCell<M>`, which embed the boxed `Behavior` and staged
// `M` payloads) cross the thread boundary with it, hence `M: Send`.
// Which thread may then *dereference* which cell is governed by the
// struct-level contract above.
unsafe impl<M: Send> Send for Cells<'_, M> {}
// SAFETY: `&Cells` exposes no `&`-reachable cell data — every access
// goes through the `unsafe fn cell`/`all` below, whose callers must
// hold exclusive logical ownership per the struct-level contract, so
// sharing the handle itself between threads is sound (`M: Send`, not
// `M: Sync`, is the right bound: cells are handed off, never shared).
unsafe impl<M: Send> Sync for Cells<'_, M> {}

impl<'a, M> Cells<'a, M> {
    fn new(cells: &'a mut [NodeCell<M>]) -> Self {
        Cells {
            ptr: cells.as_mut_ptr(),
            len: cells.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// One node's cell.
    ///
    /// # Safety
    ///
    /// The caller must hold exclusive logical ownership of node `idx`
    /// per the struct-level contract: either it is the worker whose
    /// window currently owns `idx`'s shard, or it is the coordinator
    /// between windows.
    #[allow(clippy::mut_from_ref)] // the &mut really is derived from a raw pointer, not from &self
    unsafe fn cell(&self, idx: usize) -> &mut NodeCell<M> {
        debug_assert!(idx < self.len);
        // SAFETY: `ptr..ptr+len` is a live `&mut [NodeCell<M>]` borrow
        // held exclusively by this `Cells` (constructor invariant), so
        // `idx < len` stays in bounds; uniqueness of the returned &mut
        // is the caller's obligation above.
        unsafe { &mut *self.ptr.add(idx) }
    }

    /// The whole slice.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread touching *any* cell — in
    /// practice, the coordinator between windows (workers parked at
    /// the gate).
    #[allow(clippy::mut_from_ref)] // the &mut really is derived from a raw pointer, not from &self
    unsafe fn all(&self) -> &mut [NodeCell<M>] {
        // SAFETY: `ptr` and `len` come verbatim from the exclusive
        // slice borrow captured at construction, which outlives `self`
        // via the PhantomData lifetime; exclusivity is the caller's
        // obligation above.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

/// Coordinator ⇄ worker rendezvous: a sense-counting gate that spins,
/// then yields, then parks on a condvar. The parking tier is what lets
/// the pool outlive a `run_until` call without burning CPU between
/// calls.
struct Gate {
    /// Incremented by the coordinator to open a window (or to release
    /// workers into shutdown when `stop` is set).
    epoch: AtomicU64,
    /// Count of workers finished with the current window.
    done: AtomicUsize,
    stop: AtomicBool,
    /// Set by a worker whose window processing panicked (it still
    /// counts itself done so the coordinator can notice and propagate
    /// instead of spinning forever).
    panicked: AtomicBool,
    /// Window cap (exclusive), as `f64::to_bits` of seconds.
    cap_bits: AtomicU64,
    /// Pointer to the current run's [`Pool`] window state, type-erased.
    /// Published before the run's first window, cleared after its last;
    /// workers dereference it only between an epoch open and their done
    /// acknowledgement.
    ctx: AtomicPtr<u8>,
    /// Condvar tier of the epoch wait (workers park here between runs).
    /// `open`/`shut_down` notify under the lock, so a worker that
    /// decided to wait while holding it cannot miss the wakeup.
    lock: Mutex<()>,
    parked: Condvar,
}

/// Yield iterations between the spin tier and the condvar tier of an
/// epoch wait. Within a run, the next window opens within microseconds,
/// so workers almost never reach the condvar; between runs they park
/// quickly instead of busy-yielding until the next `run_until` call.
const YIELDS_BEFORE_PARK: u32 = 64;

impl Gate {
    fn new() -> Self {
        Gate {
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            cap_bits: AtomicU64::new(0),
            ctx: AtomicPtr::new(std::ptr::null_mut()),
            lock: Mutex::new(()),
            parked: Condvar::new(),
        }
    }

    fn open(&self, cap: SimTime) {
        self.cap_bits
            .store(cap.as_secs().to_bits(), Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        // Wake any parked workers. Taking the lock orders this bump
        // against a worker's decision to wait: the worker re-checks the
        // epoch while holding the lock, so either it sees the new epoch
        // or it is already waiting when the notification fires.
        let _guard = self.lock.lock().expect("gate poisoned");
        self.parked.notify_all();
    }

    fn shut_down(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Release);
        let _guard = self.lock.lock().expect("gate poisoned");
        self.parked.notify_all();
    }

    /// Waits until the epoch differs from `seen`: spin, then yield, then
    /// park.
    fn wait_epoch(&self, seen: u64, spin_limit: u32) {
        let mut spins = 0u32;
        loop {
            if self.epoch.load(Ordering::Acquire) != seen {
                return;
            }
            if spins < spin_limit {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < spin_limit + YIELDS_BEFORE_PARK {
                spins += 1;
                std::thread::yield_now();
            } else {
                let mut guard = self.lock.lock().expect("gate poisoned");
                while self.epoch.load(Ordering::Acquire) == seen {
                    guard = self.parked.wait(guard).expect("gate poisoned");
                }
                return;
            }
        }
    }

    /// Waits until every worker has acknowledged the current window.
    /// A panicking worker counts itself done before unwinding, so this
    /// always terminates for an open window.
    fn wait_done(&self, workers: usize, spin_limit: u32) {
        spin_until(spin_limit, || self.done.load(Ordering::Acquire) >= workers);
    }

    fn cap(&self) -> SimTime {
        SimTime::from_secs(f64::from_bits(self.cap_bits.load(Ordering::Relaxed)))
    }
}

/// The persistent worker pool: the shared gate plus the OS threads.
/// Stored inside the simulation's event store; dropped (and joined)
/// with it.
pub(crate) struct PoolHandle {
    gate: Arc<Gate>,
    /// Worker count the threads were spawned with (later mutations of
    /// the requested count are ignored — the pool is fixed at spawn).
    workers: usize,
    /// Spin budget matched to the core count at spawn time.
    spin_limit: u32,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.gate.shut_down();
        for handle in self.handles.drain(..) {
            // A worker that panicked mid-run already delivered its
            // payload via the coordinator's propagation; the join
            // result is informational here.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolHandle(workers={})", self.workers)
    }
}

/// Spins up to `spin_limit` iterations, then yields. Windows are
/// microseconds apart, so a short spin usually wins — but when the
/// machine is oversubscribed (pinned worker counts above the core
/// count) the caller passes `0` and every wait yields immediately.
fn spin_until(spin_limit: u32, cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if spins < spin_limit {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Index and value of the earliest pending sample, if any.
fn earliest_sample(pending: &[SimTime]) -> Option<(usize, SimTime)> {
    pending
        .iter()
        .copied()
        .enumerate()
        .min_by(|a, b| a.1.cmp(&b.1))
}

/// Everything a window executor (worker thread or the inline path)
/// needs, bundled to keep signatures manageable.
struct Pool<'a, M> {
    tasks: &'a [Mutex<Task<M>>],
    inboxes: &'a [Inbox<M>],
    /// Post-window `head_key().time` bits per shard, published by the
    /// advancing worker so the coordinator's scan needs no task locks.
    heads: &'a [AtomicU64],
    cells: Cells<'a, M>,
    shared: &'a SimShared,
    shard_of: &'a [u32],
    until: SimTime,
}

impl<M> Clone for Pool<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Pool<'_, M> {}

/// Reconstitutes the per-run window state from the gate's type-erased
/// context pointer.
///
/// # Safety
///
/// `ptr` must be the pointer published by the current run's coordinator,
/// and the caller must be inside the open-window span of the gate
/// protocol (the coordinator keeps the pointee alive until every worker
/// has acknowledged the window).
unsafe fn ctx_pool<'x, M>(ptr: *const u8) -> &'x Pool<'x, M> {
    debug_assert!(!ptr.is_null(), "window opened without a published ctx");
    // SAFETY: the coordinator stored this pointer from a live
    // `&Pool<M>` of the same monomorphization (workers and coordinator
    // share the simulation's single `M`) before opening the window, and
    // the caller contract pins the dereference inside the span where
    // the pointee is kept alive; `Pool` is `Copy + Sync`, so a shared
    // reference from another thread is sound. The `Ordering::Acquire`
    // load that produced `ptr` pairs with the coordinator's `Release`
    // store, making the pointee's initialization visible.
    unsafe { &*ptr.cast::<Pool<'x, M>>() }
}

impl<M: Clone + Send + 'static> Simulation<M> {
    /// The parallel twin of the serial `run_until` loop. Called with the
    /// boot phase already done.
    pub(crate) fn run_parallel(&mut self, until: SimTime, obs: &mut dyn Observer) {
        let Simulation {
            now,
            shared,
            cells,
            store,
            stats,
            ..
        } = self;
        let EventStore::Parallel(pq) = store else {
            unreachable!("run_parallel on a serial store");
        };
        let lookahead = shared.config.delay.min_delay();
        debug_assert!(
            lookahead.is_positive(),
            "parallel scheduler built with zero lookahead"
        );
        let nshards = pq.shards.len();
        let nworkers = pq.workers.clamp(1, nshards);
        let shared: &SimShared = shared;

        let tasks: Vec<Mutex<Task<M>>> = pq
            .shards
            .drain(..)
            .map(|shard| {
                Mutex::new(Task {
                    shard,
                    rows: Vec::new(),
                    stats: SimStats::default(),
                    now: *now,
                })
            })
            .collect();
        let inboxes: Vec<Inbox<M>> = (0..nshards).map(|_| Inbox::new()).collect();
        let heads: Vec<AtomicU64> = tasks
            .iter()
            .map(|t| {
                let time = t.lock().expect("task poisoned").shard.head_key().time;
                AtomicU64::new(time.as_secs().to_bits())
            })
            .collect();
        let pool = Pool {
            tasks: &tasks,
            inboxes: &inboxes,
            heads: &heads,
            cells: Cells::new(cells),
            shared,
            shard_of: &pq.shard_of,
            until,
        };
        let mut windows = Windows {
            pending_samples: &mut pq.pending_samples,
            obs,
            stats,
            lookahead,
            until,
            rows_batch: Vec::new(),
        };

        if nworkers == 1 {
            // Single worker: same windows, same code path, no pool — the
            // calling thread advances every shard itself.
            let mut outbox: Vec<Vec<Entry<Pending<M>>>> =
                (0..nshards).map(|_| Vec::new()).collect();
            windows.coordinate(pool, |cap| {
                for s in 0..nshards {
                    advance_shard(s, cap, pool, &mut outbox);
                }
                flush_outbox(&mut outbox, &inboxes);
            });
        } else {
            let handle = pq
                .pool
                .get_or_insert_with(|| spawn_pool::<M>(nworkers, nshards));
            assert!(
                !handle.gate.panicked.load(Ordering::Relaxed),
                "a parallel worker died in a previous run; the pool cannot be reused"
            );
            let gate = Arc::clone(&handle.gate);
            let workers = handle.workers;
            let spin_limit = handle.spin_limit;
            // Publish this run's window state. Workers read the pointer
            // only between an epoch open and their done acknowledgement,
            // and the coordinator keeps `pool` (and everything it
            // borrows) alive until after the final wait_done — so the
            // lifetime-erased dereference in the workers stays inside
            // the pointee's real lifetime.
            gate.ctx.store(
                std::ptr::from_ref(&pool).cast::<u8>().cast_mut(),
                Ordering::Release,
            );
            windows.coordinate(pool, |cap| {
                gate.open(cap);
                gate.wait_done(workers, spin_limit);
                if gate.panicked.load(Ordering::Relaxed) {
                    // Every worker has acknowledged this window (the
                    // panicking one counts itself done before
                    // unwinding), so no thread still touches the
                    // per-run state we are about to unwind. Survivors
                    // park at the gate; the pool is poisoned and the
                    // next run (or drop) shuts it down.
                    panic!("a parallel worker panicked during a lookahead window");
                }
            });
            gate.ctx.store(std::ptr::null_mut(), Ordering::Release);
        }

        for task in tasks {
            let task = task.into_inner().expect("task poisoned");
            stats.absorb(task.stats);
            pq.shards.push(task.shard);
        }
        // Arrivals staged after a shard's last window (all beyond the
        // final cap) survive into the next run_until call.
        for (s, inbox) in inboxes.iter().enumerate() {
            inbox.drain_into(&mut pq.shards[s]);
        }
        *now = until;
    }
}

/// Spawns the persistent worker threads for a parallel simulation.
fn spawn_pool<M: Clone + Send + 'static>(nworkers: usize, nshards: usize) -> PoolHandle {
    let gate = Arc::new(Gate::new());
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // The coordinator thread also wants a core while workers run.
    let spin_limit = if avail > nworkers { 256 } else { 0 };
    let handles = (0..nworkers)
        .map(|w| {
            let gate = Arc::clone(&gate);
            std::thread::Builder::new()
                .name(format!("ftgcs-worker-{w}"))
                .spawn(move || worker_loop::<M>(w, nworkers, nshards, &gate, spin_limit))
                .expect("spawn parallel worker thread")
        })
        .collect();
    PoolHandle {
        gate,
        workers: nworkers,
        spin_limit,
        handles,
    }
}

/// The coordinator's per-run state: the sample chain and the
/// observer/stat accumulators it owns between windows.
struct Windows<'a> {
    pending_samples: &'a mut Vec<SimTime>,
    obs: &'a mut dyn Observer,
    stats: &'a mut SimStats,
    lookahead: SimDuration,
    until: SimTime,
    rows_batch: Vec<(Key, Row)>,
}

impl Windows<'_> {
    /// The barrier loop: scan heads, fire due samples, open lookahead
    /// windows via `run_window`, merge the relaxed row buffers.
    fn coordinate<M: Clone + Send>(
        &mut self,
        pool: Pool<'_, M>,
        mut run_window: impl FnMut(SimTime),
    ) {
        let nshards = pool.tasks.len();
        loop {
            // Earliest pending event over all shard heads (published by
            // the last window's workers) and staged inboxes.
            let mut t_min: Option<SimTime> = None;
            for s in 0..nshards {
                let mut time =
                    SimTime::from_secs(f64::from_bits(pool.heads[s].load(Ordering::Relaxed)));
                time = time.min(pool.inboxes[s].min_time());
                if time < SimTime::from_secs(f64::INFINITY) {
                    t_min = Some(t_min.map_or(time, |m| m.min(time)));
                }
            }

            // Fire due samples: engine-global reads, dispatched here at
            // the barrier — before any node event at the same time,
            // matching the serial tie-break.
            while let Some((idx, ts)) = earliest_sample(self.pending_samples) {
                if ts > self.until || t_min.is_some_and(|tm| ts > tm) {
                    break;
                }
                self.pending_samples.swap_remove(idx);
                self.stats.events += 1;
                // SAFETY: workers are parked at the gate; the
                // coordinator is the only thread touching node state.
                take_sample(unsafe { pool.cells.all() }, ts, self.obs);
                if let Some(interval) = pool.shared.config.sample_interval {
                    self.pending_samples.push(ts + interval);
                }
            }

            let Some(tm) = t_min else { break };
            if tm > self.until {
                break;
            }

            // Window [tm, cap): the lookahead bound, tightened to the
            // next sample time so no node event overtakes a sample.
            let mut cap = tm + self.lookahead;
            // A lookahead below the f64 ulp of the current time would
            // open empty windows forever; fail loudly instead of
            // silently livelocking. (Build already rejects d == U; this
            // catches pathological d − U ≪ t.)
            assert!(
                cap > tm,
                "lookahead {} s vanishes at t = {tm} (below f64 resolution): \
                 parallel windows cannot advance",
                self.lookahead
            );
            if let Some((_, ts)) = earliest_sample(self.pending_samples) {
                cap = cap.min(ts);
            }
            run_window(cap);

            // Merge this window's relaxed row buffers into global key
            // order and stream them to the observer. Windows partition
            // time, so the merged windows concatenate to exactly the
            // strict serial order.
            for task in pool.tasks.iter() {
                self.rows_batch
                    .append(&mut task.lock().expect("task poisoned").rows);
            }
            self.rows_batch.sort_by_key(|&(key, _)| key);
            for (_, row) in self.rows_batch.drain(..) {
                self.obs.on_row_owned(row);
            }
        }
    }
}

/// One worker: waits at the gate (spin → yield → park), then advances
/// each of its statically assigned shards to the window cap and flushes
/// its outbox. Lives for the whole simulation; between `run_until`
/// calls it parks on the gate's condvar.
fn worker_loop<M: Clone + Send>(
    worker: usize,
    nworkers: usize,
    nshards: usize,
    gate: &Gate,
    spin_limit: u32,
) {
    let mut outbox: Vec<Vec<Entry<Pending<M>>>> = (0..nshards).map(|_| Vec::new()).collect();
    let mut seen = 0u64;
    loop {
        gate.wait_epoch(seen, spin_limit);
        seen = seen.wrapping_add(1);
        if gate.stop.load(Ordering::Relaxed) {
            return;
        }
        // SAFETY: the coordinator published this run's Pool before
        // opening the window and keeps it alive until every worker has
        // acknowledged; we acknowledge only after the last dereference.
        let pool = unsafe { ctx_pool::<M>(gate.ctx.load(Ordering::Acquire)) };
        let cap = gate.cap();
        // A panicking behavior must not strand the coordinator: catch,
        // flag, count this worker done, and re-raise so the panic is
        // reported on this thread. (Unwind safety: the run is being
        // torn down — the poisoned task mutexes are never read.)
        let window = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s = worker;
            while s < nshards {
                advance_shard(s, cap, *pool, &mut outbox);
                s += nworkers;
            }
            flush_outbox(&mut outbox, pool.inboxes);
        }));
        if let Err(payload) = window {
            gate.panicked.store(true, Ordering::Relaxed);
            gate.done.fetch_add(1, Ordering::Release);
            std::panic::resume_unwind(payload);
        }
        gate.done.fetch_add(1, Ordering::Release);
    }
}

/// Delivers a window's batched cross-shard sends: one inbox lock per
/// destination shard instead of one per message.
fn flush_outbox<M>(outbox: &mut [Vec<Entry<Pending<M>>>], inboxes: &[Inbox<M>]) {
    for (dst, batch) in outbox.iter_mut().enumerate() {
        if !batch.is_empty() {
            inboxes[dst].stage_batch(batch);
        }
    }
}

/// Advances one shard through the window: absorb staged arrivals,
/// pop-and-dispatch every local event below the cap, publish the new
/// head.
fn advance_shard<M: Clone + Send>(
    s: usize,
    cap: SimTime,
    pool: Pool<'_, M>,
    outbox: &mut [Vec<Entry<Pending<M>>>],
) {
    let mut task = pool.tasks[s].lock().expect("task poisoned");
    let task = &mut *task;
    pool.inboxes[s].drain_into(&mut task.shard);
    loop {
        let head = task.shard.head_key();
        if head == Key::max() || head.time >= cap || head.time > pool.until {
            break;
        }
        let entry = task.shard.pop_min().expect("non-empty head implies entry");
        debug_assert!(entry.key.time >= task.now, "shard time went backwards");
        task.now = entry.key.time;
        task.stats.events += 1;
        let node = entry
            .payload
            .owner()
            .expect("samples never enter shard heaps");
        debug_assert_eq!(
            pool.shard_of[node.index()] as usize,
            s,
            "event on wrong shard"
        );
        // SAFETY: nodes of shard `s` are touched only by this worker
        // during the window (static shard→worker assignment over a
        // disjoint partition).
        let cell = unsafe { pool.cells.cell(node.index()) };
        run_event(
            cell,
            node,
            pool.shared,
            QueueKind::Worker {
                local: &mut task.shard,
                outbox,
                shard_of: pool.shard_of,
                my_shard: s as u32,
            },
            RowSink::Buffered(&mut task.rows),
            &mut task.stats,
            entry.key.time,
            entry.key,
            entry.payload,
        );
    }
    pool.heads[s].store(
        task.shard.head_key().time.as_secs().to_bits(),
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use crate::engine::{Ctx, SimBuilder, SimConfig};
    use crate::node::{Behavior, NodeId, TimerTag, TrackId};
    use crate::shard::{Partition, SchedulerKind};
    use crate::time::{SimDuration, SimTime};

    /// A minimal churn workload without shared test state, so the
    /// parallel smoke test needs no synchronization of its own.
    struct Beater;

    impl Behavior<u32> for Beater {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer_at(TrackId::MAIN, 0.005, TimerTag::new(0));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _tag: TimerTag) {
            let token = ctx.rng().next_u32();
            ctx.broadcast(token);
            let next = ctx.track_value(TrackId::MAIN) + 0.005;
            ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(0));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: &u32) {
            ctx.emit("beat", vec![from.index() as f64, f64::from(*msg % 64)]);
        }
    }

    fn run(scheduler: SchedulerKind) -> Vec<u8> {
        let config = SimConfig {
            seed: 11,
            sample_interval: Some(SimDuration::from_millis(20.0)),
            scheduler,
            ..SimConfig::default()
        };
        let mut b = SimBuilder::new(config);
        let n = 8;
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node(Box::new(Beater))).collect();
        for i in 0..n {
            b.add_edge(ids[i], ids[(i + 1) % n]);
        }
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(0.5));
        sim.run_for(SimDuration::from_secs(0.25));
        sim.into_trace().to_bytes()
    }

    #[test]
    fn parallel_matches_global_heap_on_every_worker_count() {
        let reference = run(SchedulerKind::Global);
        assert!(!reference.is_empty());
        for workers in [1usize, 2, 3, 8] {
            let parallel = run(SchedulerKind::Parallel {
                partition: Partition::by_blocks(8, 2),
                workers,
            });
            assert_eq!(
                parallel, reference,
                "parallel trace diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn pool_survives_many_fine_grained_steps() {
        // Stepping in many small increments must reuse the persistent
        // pool (one spawn) and reproduce the one-shot trace exactly.
        let one_shot = run(SchedulerKind::Parallel {
            partition: Partition::by_blocks(8, 2),
            workers: 2,
        });
        let config = SimConfig {
            seed: 11,
            sample_interval: Some(SimDuration::from_millis(20.0)),
            scheduler: SchedulerKind::Parallel {
                partition: Partition::by_blocks(8, 2),
                workers: 2,
            },
            ..SimConfig::default()
        };
        let mut b = SimBuilder::new(config);
        let n = 8;
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node(Box::new(Beater))).collect();
        for i in 0..n {
            b.add_edge(ids[i], ids[(i + 1) % n]);
        }
        let mut sim = b.build();
        if let crate::engine::EventStore::Parallel(pq) = &mut sim.store {
            pq.workers = 2; // force the pooled path regardless of cores
        }
        for _ in 0..150 {
            sim.run_for(SimDuration::from_millis(5.0));
        }
        if let crate::engine::EventStore::Parallel(pq) = &sim.store {
            assert!(pq.pool.is_some(), "pool must persist across steps");
        }
        assert_eq!(
            sim.into_trace().to_bytes(),
            one_shot,
            "stepping granularity changed the trace"
        );
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates_instead_of_hanging() {
        struct Bomb;
        impl Behavior<()> for Bomb {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer_at(TrackId::MAIN, 0.01, TimerTag::new(0));
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {
                panic!("behavior exploded");
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
        }
        let mut b = SimBuilder::<()>::new(SimConfig {
            scheduler: SchedulerKind::Parallel {
                partition: Partition::by_blocks(2, 1),
                workers: 2,
            },
            ..SimConfig::default()
        });
        b.add_node(Box::new(Bomb));
        b.add_node(Box::new(Bomb));
        let mut sim = b.build();
        // Force two real OS threads regardless of this machine's core
        // count, using the crate-internal knob rather than the
        // FTGCS_WORKERS env var (mutating the environment would race
        // sibling tests' getenv). Thread count never changes results;
        // this only selects the pooled code path.
        if let crate::engine::EventStore::Parallel(pq) = &mut sim.store {
            pq.workers = 2;
        }
        sim.run_until(SimTime::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        use crate::network::{DelayConfig, DelayDistribution};
        let config = SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_millis(1.0),
                SimDuration::from_millis(1.0),
                DelayDistribution::Uniform,
            ),
            scheduler: SchedulerKind::Parallel {
                partition: Partition::single(1),
                workers: 2,
            },
            ..SimConfig::default()
        };
        let mut b = SimBuilder::<()>::new(config);
        struct Quiet;
        impl Behavior<()> for Quiet {
            fn on_start(&mut self, _: &mut Ctx<'_, ()>) {}
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: &()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {}
        }
        b.add_node(Box::new(Quiet));
        let _ = b.build();
    }
}
