//! Thin wrapper: feeds the checked-in `experiments/f2_local_skew_vs_diameter.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/f2_local_skew_vs_diameter.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin f2_local_skew_vs_diameter
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/f2_local_skew_vs_diameter.spec",
        include_str!("../../../../experiments/f2_local_skew_vs_diameter.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
