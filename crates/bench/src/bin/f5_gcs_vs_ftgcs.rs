//! Thin wrapper: feeds the checked-in `experiments/f5_gcs_vs_ftgcs.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/f5_gcs_vs_ftgcs.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin f5_gcs_vs_ftgcs
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/f5_gcs_vs_ftgcs.spec",
        include_str!("../../../../experiments/f5_gcs_vs_ftgcs.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
