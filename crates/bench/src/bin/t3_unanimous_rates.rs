//! Thin wrapper: feeds the checked-in `experiments/t3_unanimous_rates.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/t3_unanimous_rates.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin t3_unanimous_rates
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/t3_unanimous_rates.spec",
        include_str!("../../../../experiments/t3_unanimous_rates.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
