//! Thin wrapper: feeds the checked-in `experiments/f1_cluster_convergence.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/f1_cluster_convergence.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin f1_cluster_convergence
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/f1_cluster_convergence.spec",
        include_str!("../../../../experiments/f1_cluster_convergence.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
