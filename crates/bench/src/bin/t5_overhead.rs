//! Thin wrapper: feeds the checked-in `experiments/t5_overhead.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/t5_overhead.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin t5_overhead
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/t5_overhead.spec",
        include_str!("../../../../experiments/t5_overhead.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
