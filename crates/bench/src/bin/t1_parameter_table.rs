//! Thin wrapper: feeds the checked-in `experiments/t1_parameter_table.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/t1_parameter_table.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin t1_parameter_table
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/t1_parameter_table.spec",
        include_str!("../../../../experiments/t1_parameter_table.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
