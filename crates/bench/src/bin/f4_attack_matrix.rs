//! Thin wrapper: feeds the checked-in `experiments/f4_attack_matrix.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/f4_attack_matrix.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin f4_attack_matrix
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/f4_attack_matrix.spec",
        include_str!("../../../../experiments/f4_attack_matrix.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
