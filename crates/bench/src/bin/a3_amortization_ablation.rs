//! Thin wrapper: feeds the checked-in `experiments/a3_amortization_ablation.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/a3_amortization_ablation.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin a3_amortization_ablation
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/a3_amortization_ablation.spec",
        include_str!("../../../../experiments/a3_amortization_ablation.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
