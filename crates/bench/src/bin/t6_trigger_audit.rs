//! Thin wrapper: feeds the checked-in `experiments/t6_trigger_audit.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/t6_trigger_audit.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin t6_trigger_audit
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/t6_trigger_audit.spec",
        include_str!("../../../../experiments/t6_trigger_audit.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
