//! Thin wrapper: feeds the checked-in `experiments/t2_reliability.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/t2_reliability.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin t2_reliability
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/t2_reliability.spec",
        include_str!("../../../../experiments/t2_reliability.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
