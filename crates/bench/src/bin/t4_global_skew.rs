//! Thin wrapper: feeds the checked-in `experiments/t4_global_skew.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/t4_global_skew.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin t4_global_skew
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/t4_global_skew.spec",
        include_str!("../../../../experiments/t4_global_skew.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
