//! `xp` — the unified experiment driver.
//!
//! ```sh
//! xp run <spec-file>                # execute one experiment
//! xp sweep <spec-file> key=v1,v2 …  # cartesian sweep over spec keys
//! xp list [dir]                     # validate + list specs (default: experiments/)
//! ```
//!
//! Spec files (`experiments/*.spec`) either name an `analysis` —
//! dispatching into the figure/table/ablation code the legacy binaries
//! wrap — or describe a plain scenario, which runs **streaming**:
//! samples and rows flow through bounded-memory observers into
//! `results/*.csv`, never materializing a full trace.
//!
//! ```sh
//! cargo run --release -p ftgcs-bench --bin xp -- run experiments/f1_cluster_convergence.spec
//! cargo run --release -p ftgcs-bench --bin xp -- sweep experiments/long_line_demo.spec seed=1,2,3
//! ```

use std::path::Path;
use std::process::ExitCode;

use ftgcs_bench::driver::{self, SweepAxis};

const USAGE: &str = "usage:
  xp run <spec-file>
  xp sweep <spec-file> key=v1,v2[,…] [key=…]
  xp list [dir]        (default dir: experiments)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => match args.get(1) {
            Some(path) if args.len() == 2 => driver::run_file(Path::new(path)),
            _ => Err(USAGE.to_string()),
        },
        Some("sweep") => match args.get(1) {
            Some(path) if args.len() >= 3 => args[2..]
                .iter()
                .map(|a| SweepAxis::parse(a))
                .collect::<Result<Vec<_>, _>>()
                .and_then(|axes| driver::sweep_file(Path::new(path), &axes)),
            _ => Err(USAGE.to_string()),
        },
        Some("list") => {
            let dir = args.get(1).map_or("experiments", String::as_str);
            match args.len() {
                1 | 2 => driver::list_dir(Path::new(dir)),
                _ => Err(USAGE.to_string()),
            }
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xp: {e}");
            ExitCode::FAILURE
        }
    }
}
