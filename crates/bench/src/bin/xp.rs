//! `xp` — the unified experiment driver.
//!
//! ```sh
//! xp run <spec-file> [--telemetry <out.json>] [--progress]
//! xp sweep <spec-file> key=v1,v2 … [--parallel [--jobs N]]
//! xp serve --addr 127.0.0.1:PORT [--jobs N] [--cache DIR] [--queue N]
//! xp run-cell [--row] [--dir D]     # child half of the executor (spec on stdin)
//! xp list [dir]                     # validate + list specs (default: experiments/)
//! ```
//!
//! Spec files (`experiments/*.spec`) either name an `analysis` —
//! dispatching into the figure/table/ablation code the legacy binaries
//! wrap — or describe a plain scenario, which runs **streaming**:
//! samples and rows flow through bounded-memory observers into
//! `results/*.csv`, never materializing a full trace.
//!
//! `--telemetry <out.json>` turns on the engine's side-channel counters
//! and writes the machine-readable run report (schema
//! `ftgcs-telemetry-v1`); `--progress` adds a stderr heartbeat. Both
//! leave stdout, the CSVs, and the simulated trace byte-identical.
//!
//! `sweep --parallel` runs cells as `xp run-cell` child processes over
//! a bounded job pool with a content-addressed result cache
//! (`results/cache/`, override with `FTGCS_CACHE_DIR`); stdout stays
//! byte-identical to the sequential sweep. `xp serve` exposes the same
//! executor as a long-running HTTP results service (see
//! EXPERIMENTS.md, "Sweep service").
//!
//! ```sh
//! cargo run --release -p ftgcs-bench --bin xp -- run experiments/f1_cluster_convergence.spec
//! cargo run --release -p ftgcs-bench --bin xp -- run experiments/long_line_demo.spec --telemetry results/long_line_demo_telemetry.json
//! cargo run --release -p ftgcs-bench --bin xp -- sweep experiments/long_line_demo.spec seed=1,2,3 --parallel --jobs 4
//! cargo run --release -p ftgcs-bench --bin xp -- serve --addr 127.0.0.1:7171
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ftgcs_bench::driver::{self, RunOptions, SweepAxis, SweepOptions};
use ftgcs_sim::telemetry::alloc_probe;

/// Feeds every heap allocation this process makes into the telemetry
/// allocation probe, so the `alloc.allocations` field of a
/// `--telemetry` report counts real allocator traffic (the same
/// discipline `crates/sim/tests/hot_path_alloc.rs` enforces in CI).
/// When no report is requested the probe is still bumped — one relaxed
/// atomic add per allocation, unobservable next to the allocation
/// itself.
struct CountingAlloc;

// SAFETY: every operation delegates directly to `System`, inheriting
// its `GlobalAlloc` contract; the added relaxed counter bump touches no
// allocator state and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_probe::note_alloc();
        System.alloc(layout)
    }
    // SAFETY: forwards `ptr`/`layout` unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    // SAFETY: forwards all arguments unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        alloc_probe::note_alloc();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "usage:
  xp run <spec-file> [--telemetry <out.json>] [--progress]
  xp sweep <spec-file> key=v1,v2[,…] [key=…] [--parallel [--jobs N]]
  xp serve --addr <host:port> [--jobs N] [--cache <dir>] [--queue N]
  xp run-cell [--row] [--dir <dir>]   (spec text on stdin)
  xp list [dir]        (default dir: experiments)";

/// Parses `xp run`'s operands: the spec path plus optional
/// `--telemetry <out.json>` / `--progress` flags, in any order after
/// the path.
fn parse_run(args: &[String]) -> Result<(PathBuf, RunOptions), String> {
    let mut spec: Option<PathBuf> = None;
    let mut opts = RunOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--telemetry" => {
                let out = it
                    .next()
                    .ok_or_else(|| format!("--telemetry needs an output path\n{USAGE}"))?;
                opts.telemetry = Some(PathBuf::from(out));
            }
            "--progress" => opts.progress = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}\n{USAGE}"));
            }
            path => {
                if spec.replace(PathBuf::from(path)).is_some() {
                    return Err(USAGE.to_string());
                }
            }
        }
    }
    let spec = spec.ok_or_else(|| USAGE.to_string())?;
    Ok((spec, opts))
}

/// Parses `xp sweep`'s trailing operands: `key=v1,v2` axes mixed with
/// the optional `--parallel` / `--jobs N` flags.
fn parse_sweep(args: &[String]) -> Result<(Vec<SweepAxis>, SweepOptions), String> {
    let mut axes = Vec::new();
    let mut opts = SweepOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--parallel" => opts.parallel = true,
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--jobs needs a positive integer\n{USAGE}"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}\n{USAGE}"));
            }
            axis => axes.push(SweepAxis::parse(axis)?),
        }
    }
    if axes.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok((axes, opts))
}

/// Parses `xp serve`'s operands.
fn parse_serve(args: &[String]) -> Result<(String, usize, Option<PathBuf>, usize), String> {
    let mut addr: Option<String> = None;
    let mut jobs = 1usize;
    let mut cache: Option<PathBuf> = None;
    let mut queue = 64usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--jobs needs a positive integer\n{USAGE}"))?;
            }
            "--cache" => cache = Some(PathBuf::from(value("--cache")?)),
            "--queue" => {
                queue = value("--queue")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--queue needs a positive integer\n{USAGE}"))?;
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let addr = addr.ok_or_else(|| format!("serve needs --addr <host:port>\n{USAGE}"))?;
    Ok((addr, jobs, cache, queue))
}

/// Parses `xp run-cell`'s operands.
fn parse_run_cell(args: &[String]) -> Result<(bool, Option<PathBuf>), String> {
    let mut row = false;
    let mut dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--row" => row = true,
            "--dir" => {
                let d = it
                    .next()
                    .ok_or_else(|| format!("--dir needs a directory\n{USAGE}"))?;
                dir = Some(PathBuf::from(d));
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok((row, dir))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") if args.len() >= 2 => {
            parse_run(&args[1..]).and_then(|(spec, opts)| driver::run_file_with(&spec, &opts))
        }
        Some("sweep") => match args.get(1) {
            Some(path) if args.len() >= 3 => parse_sweep(&args[2..])
                .and_then(|(axes, opts)| driver::sweep_file_with(Path::new(path), &axes, &opts)),
            _ => Err(USAGE.to_string()),
        },
        Some("serve") => parse_serve(&args[1..]).and_then(|(addr, jobs, cache, queue)| {
            driver::serve_cmd(&addr, jobs, cache.as_deref(), queue)
        }),
        Some("run-cell") => parse_run_cell(&args[1..])
            .and_then(|(row, dir)| driver::run_cell_cmd(row, dir.as_deref())),
        Some("list") => {
            let dir = args.get(1).map_or("experiments", String::as_str);
            match args.len() {
                1 | 2 => driver::list_dir(Path::new(dir)),
                _ => Err(USAGE.to_string()),
            }
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xp: {e}");
            ExitCode::FAILURE
        }
    }
}
