//! Thin wrapper: feeds the checked-in `experiments/f3_skew_traces.spec`
//! through the shared `xp` driver ([`ftgcs_bench::driver`]), so this
//! binary and `xp run experiments/f3_skew_traces.spec`
//! emit byte-identical output by construction.
//!
//! ```sh
//! cargo run -p ftgcs-bench --release --bin f3_skew_traces
//! ```

fn main() {
    ftgcs_bench::driver::run_text(
        "experiments/f3_skew_traces.spec",
        include_str!("../../../../experiments/f3_skew_traces.spec"),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
}
