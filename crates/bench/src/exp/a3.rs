//! **A3 — Ablation: the amortization constant c₁ = 1/ϕ** (Lemma 3.1,
//! Eq. 5).
//!
//! Phase 3 spreads each round's correction `Δ_v` over `τ₃ = ϑ_g·c₁·(E+U)`
//! of logical time by modulating `δ_v`; `c₁ = Θ(1/ρ)` keeps the logical
//! clock drift at `O(ρ)`. Smaller `c₁` (larger `ϕ`) means shorter rounds
//! — faster convergence per wall-second — but worse worst-case rates
//! `ϑ_max = (1 + 2ϕ/(1−ϕ))(1+µ)(1+ρ)`, which inflates every downstream
//! bound. We sweep `ε` (which sets `c₁ = ((1/2)−ε)/((1+c₂)ρ)`) and
//! measure intra-cluster skew, the observed logical-rate range, and the
//! round length.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{intra_cluster_skew_series, FaultMask};
use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph};

use crate::emit_table;
use crate::spec::SpecFile;

/// Runs the analysis (spec: environment, seed base of the ε sweep).
pub fn run(spec: &SpecFile) {
    println!("A3: amortization ablation via epsilon (c1 = ((1/2)-eps)/((1+c2) rho))\n");
    let (rho, d, u) = spec.env();
    let mut table = Table::new(&[
        "eps",
        "c1",
        "phi",
        "T (s)",
        "theta_max - 1",
        "intra max (s)",
        "intra bound (s)",
        "rate range observed",
    ]);

    for (i, eps) in [0.02f64, 0.1, 0.25, 0.4].iter().enumerate() {
        let params = match Params::builder(rho, d, u, 1).epsilon(*eps).build() {
            Ok(p) => p,
            Err(e) => {
                table.row(&[
                    format!("{eps}"),
                    format!("infeasible: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        let cg = ClusterGraph::new(generators::line(2), params.cluster_size, params.f);
        let n = cg.physical().node_count();
        let mut s = Scenario::new(cg.clone(), params.clone());
        s.seed(spec.seed() + i as u64)
            .initial_offset_spread(params.e);
        let run = s.run_for(40.0 * params.t_round);
        let mask = FaultMask::none(n);
        let intra = intra_cluster_skew_series(&run.trace, &cg, &mask)
            .after(5.0 * params.t_round)
            .max()
            .unwrap_or(0.0);

        // Observed logical rate range between samples.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for pair in run.trace.samples.windows(2) {
            let dt = pair[1].t.as_secs() - pair[0].t.as_secs();
            if dt <= 0.0 {
                continue;
            }
            for v in 0..n {
                let r = (pair[1].logical[v] - pair[0].logical[v]) / dt;
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }

        let bound = params.intra_cluster_skew_bound();
        table.row(&[
            format!("{eps}"),
            format!("{:.1}", params.c1),
            format!("{:.3e}", params.phi),
            format!("{:.3e}", params.t_round),
            format!("{:.3e}", params.theta_max - 1.0),
            format!("{intra:.3e}"),
            format!("{bound:.3e}"),
            format!("[{lo:.6}, {hi:.6}]"),
        ]);
        assert!(intra <= bound, "eps={eps}: intra bound violated");
        assert!(
            lo >= 1.0 - 1e-9 && hi <= params.theta_max + 1e-9,
            "eps={eps}: rates [{lo}, {hi}] escape [1, theta_max]"
        );
    }
    emit_table("a3_amortization_ablation", &table);
    println!("\nshape: smaller eps -> larger c1 -> longer rounds and tighter rate envelope");
    println!("(theta_max - 1 shrinks toward mu + rho); larger eps buys shorter rounds at the");
    println!("cost of a visibly wider rate envelope, exactly the Lemma 3.1 trade-off.");
}
