//! **T3 — Amortized rates of unanimous clusters** (Lemma 3.6,
//! Corollary 4.7).
//!
//! The gradient layer only works because a cluster that has been
//! unanimously fast for `k` rounds gains an amortized rate of at least
//! `(1+ϕ)(1+⅞µ)`, while an unanimously slow cluster stays within
//! `(1+ϕ)(1±⅛µ)`. Injects inter-cluster skew on a 2-cluster line (so
//! one cluster triggers fast, the other slow), extracts each node's
//! per-round amortized rate `ΔL_v/Δt` from the mode-decision rows, and
//! checks the Lemma 3.6 windows after `k` unanimous rounds.

use std::collections::BTreeMap;

use ftgcs::node::ROW_MODE;
use ftgcs::runner::Scenario;
use ftgcs_metrics::stats::Summary;
use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph};

use crate::emit_table;
use crate::spec::SpecFile;

/// Per-round observation reconstructed from a node's mode rows.
#[derive(Debug, Clone, Copy)]
struct RoundObs {
    gamma: bool,
    rate: f64,
}

/// Runs the analysis (spec: environment, seed).
pub fn run(spec: &SpecFile) {
    println!("T3: amortized per-round rates in unanimous fast/slow clusters\n");
    let params = spec.params_with_f(1);
    let cg = ClusterGraph::new(generators::line(2), params.cluster_size, params.f);
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    // Cluster 1 starts ahead by 2.5κ — above the FT engagement threshold
    // 2κ−δ — so cluster 0 satisfies the fast condition and cluster 1 the
    // slow condition for the tens of rounds it takes the gap to close to
    // the threshold. That window supplies the unanimous fast/slow rounds
    // Lemma 3.6 speaks about.
    scenario
        .seed(spec.seed())
        .cluster_offset(1, 2.5 * params.kappa);
    let horizon = 2.5 * params.kappa / (params.mu / 4.0) + 20.0 * params.t_round;
    let run = scenario.run_for(horizon);

    // node -> round -> (t, L, gamma).
    let mut per_node: BTreeMap<usize, Vec<(f64, f64, bool)>> = BTreeMap::new();
    for row in run.trace.rows_of_kind(ROW_MODE) {
        // values = [cluster, round, gamma, ft, st, own_logical, max_est]
        per_node.entry(row.node.index()).or_default().push((
            row.t.as_secs(),
            row.values[5],
            row.values[2] > 0.5,
        ));
    }

    // Build per-node per-round amortized rates.
    let mut fast_rates = Vec::new();
    let mut slow_rates = Vec::new();
    let k_needed = params.k_rounds;
    for rows in per_node.values() {
        let mut obs: Vec<RoundObs> = Vec::new();
        for pair in rows.windows(2) {
            let (t0, l0, gamma) = pair[0];
            let (t1, l1, _) = pair[1];
            if t1 > t0 {
                obs.push(RoundObs {
                    gamma,
                    rate: (l1 - l0) / (t1 - t0),
                });
            }
        }
        // A round counts as "unanimous fast/slow for k rounds" if this
        // node's own mode was stable for the k preceding rounds. (With
        // per-cluster offsets and no faults, triggers fire cluster-wide;
        // the t6 audit checks unanimity explicitly.) The first dozen
        // rounds are excluded: Lemma 3.6 presupposes e(r−k) ≤ 2e∞, which
        // the offset-injection transient violates.
        let first_eligible = (k_needed + 12).min(obs.len());
        for i in first_eligible..obs.len() {
            let window = &obs[i - k_needed..=i];
            if window.iter().all(|o| o.gamma) {
                fast_rates.push(obs[i].rate);
            } else if window.iter().all(|o| !o.gamma) {
                slow_rates.push(obs[i].rate);
            }
        }
    }

    let (fast_min, slow_min, slow_max) = params.unanimous_rate_bounds();
    let fast = Summary::of(&fast_rates);
    let slow = Summary::of(&slow_rates);

    let mut table = Table::new(&[
        "mode",
        "rounds",
        "rate min",
        "rate mean",
        "rate max",
        "lemma 3.6 window",
    ]);
    table.row(&[
        "fast (k unanimous)".into(),
        fast_rates.len().to_string(),
        format!("{:.6}", fast.min),
        format!("{:.6}", fast.mean),
        format!("{:.6}", fast.max),
        format!(">= {fast_min:.6}"),
    ]);
    table.row(&[
        "slow (k unanimous)".into(),
        slow_rates.len().to_string(),
        format!("{:.6}", slow.min),
        format!("{:.6}", slow.mean),
        format!("{:.6}", slow.max),
        format!("[{slow_min:.6}, {slow_max:.6}]"),
    ]);
    emit_table("t3_unanimous_rates", &table);

    assert!(
        !fast_rates.is_empty() && !slow_rates.is_empty(),
        "scenario failed to produce unanimous rounds"
    );
    assert!(
        fast.min >= fast_min,
        "fast amortized rate {:.6} below Lemma 3.6 part 1 bound {fast_min:.6}",
        fast.min
    );
    // The exact ±µ/8 window is proved for the paper's ε = 1/4096 (Claim
    // B.17), which requires ρ ≲ 2e-6. Params::practical uses ε = 0.1, so
    // the steady-state ratio e∞_s/e∞_g is larger and the formal window
    // widens slightly; we allow µ/64 of slack and report the excess.
    let tol = params.mu / 64.0;
    if slow.max > slow_max {
        println!(
            "note: slow max exceeds the paper window by {:.1e} (practical-epsilon slack, < mu/64 = {:.1e})",
            slow.max - slow_max, tol
        );
    }
    assert!(
        slow.min >= slow_min - tol && slow.max <= slow_max + tol,
        "slow amortized rates [{:.6}, {:.6}] outside Lemma 3.6 part 2 window even with practical-epsilon slack",
        slow.min,
        slow.max
    );
    // The separation that makes GCS work: slowest fast round beats the
    // fastest slow round.
    assert!(
        fast.min > slow.max,
        "fast clusters must outrun slow clusters"
    );
    println!(
        "\nfast clusters outrun slow clusters by a margin of {:.2e} in rate —",
        fast.min - slow.max
    );
    println!("exactly the gap Corollary 4.7 feeds into the GCS black box.");
}
