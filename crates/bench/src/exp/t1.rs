//! **T1 — Parameter feasibility and derived constants** (Eqs. 5, 10, 11).
//!
//! For a grid of network characteristics `(ρ, d, U)` — anchored at the
//! spec's environment — this prints the derived algorithm constants and
//! the predicted skew bounds. A final section evaluates the paper's
//! *exact* constants (`c₂ = 32`, `ε = 1/4096`), showing how small `ρ`
//! must be before they contract (≈ `2·10⁻⁶`).

use ftgcs::params::Params;
use ftgcs_metrics::table::Table;

use crate::emit_table;
use crate::spec::SpecFile;

/// Runs the analysis (spec: base environment of the grid).
pub fn run(spec: &SpecFile) {
    println!("T1: derived parameters across network characteristics (f = 1)\n");
    let mut table = Table::new(&[
        "rho",
        "d (s)",
        "U (s)",
        "mu",
        "phi",
        "alpha",
        "E (s)",
        "T (s)",
        "delta (s)",
        "kappa (s)",
        "intra bound (s)",
        "local bound D=8 (s)",
    ]);

    let (rho0, d0, u0) = spec.env();
    let envs = [
        (rho0, d0, u0),        // the spec's environment (default LAN-ish)
        (rho0, d0, u0 / 10.0), // tighter jitter
        (rho0 / 10.0, d0, u0), // better crystal
        (1e-5, 1e-8, 1e-9),    // on-chip
        (1e-6, 1e-4, 1e-5),    // datacenter
        (5e-4, 1e-2, 1e-3),    // WAN-ish, large drift
    ];
    for &(rho, d, u) in &envs {
        match Params::practical(rho, d, u, 1) {
            Ok(p) => table.row(&[
                format!("{rho:.0e}"),
                format!("{d:.0e}"),
                format!("{u:.0e}"),
                format!("{:.3e}", p.mu),
                format!("{:.3e}", p.phi),
                format!("{:.4}", p.alpha),
                format!("{:.3e}", p.e),
                format!("{:.3e}", p.t_round),
                format!("{:.3e}", p.delta),
                format!("{:.3e}", p.kappa),
                format!("{:.3e}", p.intra_cluster_skew_bound()),
                format!("{:.3e}", p.local_skew_bound(8)),
            ]),
            Err(e) => table.row(&[
                format!("{rho:.0e}"),
                format!("{d:.0e}"),
                format!("{u:.0e}"),
                format!("infeasible: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    emit_table("t1_parameter_table", &table);

    println!("\npaper-exact constants (c2 = 32, eps = 1/4096): feasibility threshold in rho");
    let mut paper_table = Table::new(&["rho", "feasible", "alpha", "E (s)"]);
    for &rho in &[1e-4, 1e-5, 5e-6, 2e-6, 1e-6, 1e-7] {
        match Params::paper(rho, d0, u0, 1) {
            Ok(p) => paper_table.row(&[
                format!("{rho:.0e}"),
                "yes".into(),
                format!("{:.5}", p.alpha),
                format!("{:.3e}", p.e),
            ]),
            Err(_) => paper_table.row(&[
                format!("{rho:.0e}"),
                "no (alpha >= 1)".into(),
                String::new(),
                String::new(),
            ]),
        }
    }
    emit_table("t1_paper_exact", &paper_table);

    // Structural sanity of Eq. 10 at the spec's point.
    let p = spec.params_with_f(1);
    assert!((p.kappa - 3.0 * p.delta).abs() < 1e-12, "kappa = 3*delta");
    assert!(p.tau3 > p.tau1 + p.tau2, "round dominated by phase 3");
    assert!(p.alpha < 1.0);
    println!("\nE scales like O(rho*d + U): compare rows 1-2 (U /= 10) and 1-3 (rho /= 10).");
}
