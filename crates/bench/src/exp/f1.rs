//! **F1 — Cluster convergence** (Proposition B.14, Corollary 3.2).
//!
//! A single cluster started with spread-out clocks converges
//! geometrically: the per-round pulse diameter `‖p(r)‖` follows the
//! recursion `e(r+1) = α·e(r) + β` down to the steady state
//! `E = β/(1−α)`, and the logical-clock skew stays below `2·ϑ_g·E`.
//!
//! Runs one cluster for each `f ∈ {0, 1, 2}` (with `k = 3f+1`) by
//! cloning the spec's single-cluster scenario along the `f` axis,
//! injects an initial offset spread of `E` (the largest spread the
//! analysis admits), and prints measured `‖p(r)‖` per round next to
//! the theory curve.

use ftgcs::cluster::ROW_PULSE;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{intra_cluster_skew_series, pulse_diameters, FaultMask};
use ftgcs_metrics::table::Table;

use crate::emit_table;
use crate::spec::SpecFile;

const ROUNDS_SHOWN: usize = 12;

/// Runs the analysis (spec: environment, seed base, topology, horizon).
pub fn run(spec: &SpecFile) {
    println!("F1: single-cluster pulse-diameter convergence vs theory\n");
    let mut table = Table::new(&[
        "f",
        "k",
        "round",
        "measured |p(r)| (s)",
        "theory e(r) (s)",
        "steady E (s)",
    ]);
    for f in [0usize, 1, 2] {
        // One spec cell per fault budget: same environment and
        // topology, `k = 3f+1`, per-cell seed derived from the base.
        let mut cell = spec.scenario.clone();
        cell.f = f;
        cell.cluster_size = 3 * f + 1;
        cell.seed = spec.seed() + f as u64;
        let params = cell.params().expect("spec environment must be feasible");
        let mut scenario = Scenario::from_spec(&cell).expect("spec cell must build");
        scenario.initial_offset_spread(params.e);
        let cg = scenario.cluster_graph().clone();
        let run = scenario.run_for(cell.duration.resolve(&params));

        let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
        let diam = pulse_diameters(&run.trace, &cg, &mask, ROW_PULSE);
        let theory = params.error_recursion(params.e, ROUNDS_SHOWN);

        for (r, e_theory) in theory.iter().enumerate() {
            let measured = diam[0].get(r).copied().flatten().unwrap_or(f64::NAN);
            table.row(&[
                f.to_string(),
                params.cluster_size.to_string(),
                (r + 1).to_string(),
                format!("{measured:.3e}"),
                format!("{e_theory:.3e}"),
                format!("{:.3e}", params.e),
            ]);
            // Shape check: measurements must respect the theory bound.
            if measured.is_finite() {
                assert!(
                    measured <= *e_theory * 1.0001,
                    "round {} diameter {measured} exceeds theory {e_theory}",
                    r + 1
                );
            }
        }

        // Corollary 3.2: skew below 2*theta_g*E at all times.
        let skew = intra_cluster_skew_series(&run.trace, &cg, &mask);
        let bound = params.intra_cluster_skew_bound();
        let max_skew = skew.max().unwrap_or(0.0);
        println!(
            "f = {f}: max intra-cluster skew {max_skew:.3e} s <= bound {bound:.3e} s : {}",
            if max_skew <= bound { "OK" } else { "VIOLATED" }
        );
        assert!(max_skew <= bound, "Corollary 3.2 violated for f = {f}");
    }
    println!();
    emit_table("f1_cluster_convergence", &table);
    println!("\nshape: measured diameters sit below the geometric theory curve and flatten at E.");
}
