//! **F6 — Crash–recover churn**: nodes that die and come back.
//!
//! The paper's fault budget is *per instant*: Theorem 1.1 needs at most
//! `f` faulty nodes per cluster at any time, not over the whole
//! execution. Crash–recover churn probes exactly that gap — every
//! churner is down for `downtime` out of every `period` seconds, the
//! downtime starts staggered so the budget holds at every instant, and
//! a recovering node re-initializes and rejoins through the ordinary
//! `f+1` confirmation machinery (see `ftgcs::faults::LifecycleNode`).
//!
//! The grid sweeps churner count and downtime fraction on a 3-cluster
//! line. Skews are measured over the never-faulty nodes (the engine
//! masks every node that was down at *some* point); all cells keep the
//! instantaneous budget, so every cell must hold the paper's bounds.

use ftgcs::runner::Scenario;
use ftgcs::spec::{DurationSpec, ScenarioSpec, TopologySpec};
use ftgcs::FaultKind;
use ftgcs_metrics::table::Table;

use crate::spec::SpecFile;
use crate::{emit_table, measure_skews, warmup};

const DIAMETER: usize = 2;
const CLUSTERS: usize = DIAMETER + 1;

/// Runs the analysis (spec: environment, seed base — cell `i` runs at
/// `seed + i`). The churn grid is analysis-internal: counts
/// `{1, …, f·C}` × downtime fractions `{0.2, 0.4}` of a 5-round period.
pub fn run(spec: &SpecFile) {
    println!("F6: crash-recover churn (time-windowed fault budget)\n");
    let mut table = Table::new(&[
        "f",
        "churners",
        "period (rounds)",
        "downtime (rounds)",
        "outages",
        "intra (s)",
        "intra bound (s)",
        "local (s)",
        "local bound (s)",
        "ok",
    ]);

    let mut violations = 0;
    let mut cell = 0u64;
    for f in [1usize, 2] {
        let params = spec.params_with_f(f);
        let horizon = params.suggested_horizon(DIAMETER);
        let period = 5.0 * params.t_round;
        let intra_bound = params.intra_cluster_skew_bound();
        let local_bound = params.local_skew_bound(DIAMETER);
        for count in [1, f * CLUSTERS] {
            for downtime_frac in [0.2, 0.4] {
                let downtime = downtime_frac * period;
                let mut s = ScenarioSpec::new("f6cell", TopologySpec::Line(CLUSTERS), f);
                s.cluster_size = params.cluster_size;
                (s.rho, s.d, s.u) = spec.env();
                s.seed = spec.seed() + cell;
                cell += 1;
                s.duration = DurationSpec::Secs(horizon);
                s.churn.push((count, FaultKind::Silent, period, downtime));
                let scenario = Scenario::from_spec(&s).expect("churn cell must assemble");
                assert!(
                    !scenario.faults_exceed_budget(),
                    "staggered churn must keep the instantaneous budget"
                );
                let outages = scenario.to_spec().expect("spec-built").fault_windows.len();
                let run = scenario.run_for(horizon);
                let skews = measure_skews(&run, scenario.cluster_graph(), warmup(&params));
                let ok = skews.intra <= intra_bound && skews.local <= local_bound;
                if !ok {
                    violations += 1;
                }
                table.row(&[
                    f.to_string(),
                    count.to_string(),
                    format!("{:.1}", period / params.t_round),
                    format!("{:.1}", downtime / params.t_round),
                    outages.to_string(),
                    format!("{:.3e}", skews.intra),
                    format!("{intra_bound:.3e}"),
                    format!("{:.3e}", skews.local),
                    format!("{local_bound:.3e}"),
                    if ok { "yes".into() } else { "NO".into() },
                ]);
            }
        }
    }

    emit_table("f6_churn", &table);
    assert_eq!(
        violations, 0,
        "{violations} in-budget churn cells broke a bound"
    );
    println!("\nall churn cells keep the instantaneous f-budget and hold the bounds.");
}
