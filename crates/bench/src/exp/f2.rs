//! **F2 — Local skew vs diameter: FTGCS vs master/slave vs free-run**
//! (Theorem 1.1; §1 "compress the full global skew onto a single edge").
//!
//! The adversary schedule is the classic one for master/slave
//! synchronization: run with *maximal* delays long enough for the tree
//! to settle into its stretched steady state (every hop lags `U/2`
//! beyond the compensation), then switch to *minimal* delays. The next
//! beacon wave then jumps node `j` forward by `≈ j·U`, and while the
//! wavefront passes, that entire correction sits across a single edge:
//! the tree's local skew is `Θ(D·U)` — linear in the diameter.
//!
//! FTGCS under the *same* schedule keeps the local skew bounded by the
//! `O((ρd+U)·log D)` curve of Theorem 1.1: rate-based corrections never
//! jump, and the trigger slack `δ` absorbs the delay-regime switch.
//!
//! Absolute numbers cross over: fault tolerance costs FTGCS a constant
//! factor `Θ(1/ρ)·U` in `κ`, so on *short* lines the tree looks better;
//! by `D ≈ 512` the linear tree term overtakes. Both shapes — linear vs
//! near-flat — are asserted, as is the crossover.

use ftgcs::runner::Scenario;
use ftgcs_baselines::{build_free_run_sim, build_tree_sim, Correction, ROW_TREE_JUMP};
use ftgcs_metrics::skew::{local_skew_series, FaultMask};
use ftgcs_metrics::table::Table;
use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::SimConfig;
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_topology::{generators, ClusterGraph, Graph};

use crate::spec::SpecFile;
use crate::{emit_table, measure_skews, warmup};

/// Beacon period of the tree baseline (seconds).
const BEACON: f64 = 5.0;
/// Stretch phase length (maximal delays), then compress phase.
const STRETCH: f64 = 25.0;
const COMPRESS: f64 = 15.0;

fn baseline_config(env: (f64, f64, f64), seed: u64) -> SimConfig {
    let (rho, d, u) = env;
    SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_secs(d),
            SimDuration::from_secs(u),
            DelayDistribution::Maximal,
        ),
        rho,
        rate_model: RateModel::RandomConstant,
        seed,
        sample_interval: Some(SimDuration::from_millis(20.0)),
        ..SimConfig::default()
    }
}

/// Runs the tree under stretch→compress and returns the worst post-switch
/// correction jump — the skew the wavefront carries across one edge.
fn run_tree(g: &Graph, env: (f64, f64, f64), seed: u64) -> f64 {
    let mut sim = build_tree_sim(g, 0, baseline_config(env, seed), BEACON, Correction::Jump);
    sim.run_until(SimTime::from_secs(STRETCH));
    sim.set_delay_distribution(DelayDistribution::Minimal);
    sim.run_until(SimTime::from_secs(STRETCH + COMPRESS));
    sim.trace()
        .rows_of_kind(ROW_TREE_JUMP)
        .filter(|r| r.t.as_secs() > STRETCH)
        .map(|r| r.values[0])
        .fold(0.0, f64::max)
}

fn run_free(g: &Graph, env: (f64, f64, f64), seed: u64) -> f64 {
    let mut sim = build_free_run_sim(g, baseline_config(env, seed));
    sim.run_until(SimTime::from_secs(STRETCH + COMPRESS));
    let mask = FaultMask::none(g.node_count());
    local_skew_series(sim.trace(), g, &mask)
        .after(1.0)
        .max()
        .unwrap_or(0.0)
}

fn run_ftgcs(spec: &SpecFile, base: &Graph, seed: u64) -> (f64, f64) {
    let params = spec.params_with_f(1);
    let cg = ClusterGraph::new(base.clone(), params.cluster_size, params.f);
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario.seed(seed);
    let mut sim = scenario.build();
    sim.run_until(SimTime::from_secs(STRETCH));
    sim.set_delay_distribution(DelayDistribution::Minimal);
    sim.run_until(SimTime::from_secs(STRETCH + COMPRESS));
    let run = ftgcs::runner::ScenarioRun {
        faulty: Vec::new(),
        stats: sim.stats(),
        trace: sim.into_trace(),
    };
    let skews = measure_skews(&run, &cg, warmup(&params));
    (skews.local, params.local_skew_bound(base.node_count() - 1))
}

/// Runs the analysis (spec: environment, seed base — tree at
/// `seed + D`, free-run at `seed + 1 + D`; the FTGCS side is seeded by
/// the diameter alone, its claims being bound-based rather than
/// seed-based).
pub fn run(spec: &SpecFile) {
    println!("F2: worst local skew vs diameter under the stretch->compress schedule\n");
    let mut table = Table::new(&[
        "D",
        "ftgcs local (s)",
        "ftgcs bound (s)",
        "tree wavefront (s)",
        "tree theory D*U (s)",
        "free-run local (s)",
    ]);
    let env = spec.env();
    let (_, _, u) = env;
    let mut ftgcs_curve = Vec::new();
    let mut tree_curve = Vec::new();

    for diameter in [8usize, 32, 128, 512] {
        let base = generators::line(diameter + 1);
        let tree = run_tree(&base, env, spec.seed() + diameter as u64);
        let free = run_free(&base, env, spec.seed() + 1 + diameter as u64);
        let (ftgcs_local, bound) = run_ftgcs(spec, &base, diameter as u64);
        ftgcs_curve.push((diameter as f64, ftgcs_local));
        tree_curve.push((diameter as f64, tree));
        table.row(&[
            diameter.to_string(),
            format!("{ftgcs_local:.3e}"),
            format!("{bound:.3e}"),
            format!("{tree:.3e}"),
            format!("{:.3e}", diameter as f64 * u),
            format!("{free:.3e}"),
        ]);
        assert!(
            ftgcs_local <= bound,
            "FTGCS exceeded the Theorem 1.1 bound at D = {diameter}"
        );
    }
    emit_table("f2_local_skew_vs_diameter", &table);

    // Shape assertions: tree grows ~linearly (x64 diameter ⇒ ≥ x16
    // wavefront even with slack), FTGCS stays near-flat (≤ x4 over the
    // same range), and the curves cross before D = 512.
    let tree_growth = tree_curve[3].1 / tree_curve[0].1;
    let ftgcs_growth = ftgcs_curve[3].1 / ftgcs_curve[0].1;
    println!("\ngrowth D=8 -> D=512: tree x{tree_growth:.1}, ftgcs x{ftgcs_growth:.2}");
    assert!(
        tree_growth >= 16.0,
        "tree wavefront should grow ~linearly in D"
    );
    assert!(ftgcs_growth <= 4.0, "ftgcs local skew should be near-flat");
    assert!(
        tree_curve[3].1 > ftgcs_curve[3].1,
        "by D = 512 the tree's linear term must dwarf FTGCS"
    );
    println!("shape: master/slave compresses Theta(D*U) onto one edge and loses at every");
    println!("measured D under this adversary; the gap widens linearly with the diameter,");
    println!("exactly the asymptotic separation Theorem 1.1 claims.");
}
