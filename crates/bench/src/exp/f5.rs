//! **F5 — Plain GCS collapses under one Byzantine node; FTGCS does not**
//! (§1: "The GCS algorithm utterly fails in face of non-benign faults").
//!
//! Side A: the non-fault-tolerant GCS algorithm of [LLW'10] on a ring of
//! 8 nodes, with a single Byzantine "liar". Its local skew between
//! *correct* neighbors grows without bound.
//!
//! Side B: FTGCS on the same abstract ring, each cluster containing one
//! two-faced Byzantine node (8 attackers total, vs 1 for side A). Local
//! skew stays below the Theorem 1.1 bound for the whole run.

use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_baselines::{build_gcs_sim, GcsConfig};
use ftgcs_metrics::skew::{cluster_local_skew_series, local_skew_series, FaultMask};
use ftgcs_metrics::table::Table;
use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::SimConfig;
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_topology::{generators, ClusterGraph};

use crate::emit_table;
use crate::spec::SpecFile;

const POINTS: usize = 20;

/// Runs the analysis (spec: environment, horizon, seed base — plain GCS
/// at `seed`, FTGCS at `seed + 1`).
pub fn run(spec: &SpecFile) {
    println!("F5: plain GCS vs FTGCS under Byzantine faults (ring of 8)\n");
    let (rho, d, u) = spec.env();
    let params = spec.params_with_f(1);
    let horizon = spec.scenario.duration.resolve(&params);
    let ring = generators::ring(8);

    // --- Side A: plain GCS, one liar at node 0. ---
    let gcs_cfg = GcsConfig::for_network(rho, d, u);
    let kappa = gcs_cfg.kappa;
    let config = SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_secs(d),
            SimDuration::from_secs(u),
            DelayDistribution::Uniform,
        ),
        rho,
        rate_model: RateModel::RandomConstant,
        seed: spec.seed(),
        sample_interval: Some(SimDuration::from_millis(50.0)),
        ..SimConfig::default()
    };
    let mut gcs = build_gcs_sim(&ring, gcs_cfg, config, &[0]);
    gcs.run_until(SimTime::from_secs(horizon));
    let gcs_mask = FaultMask::from_nodes(8, &[0]);
    let gcs_local = local_skew_series(gcs.trace(), &ring, &gcs_mask);

    // --- Side B: FTGCS, one two-faced node in EVERY cluster. ---
    let cg = ClusterGraph::new(ring.clone(), params.cluster_size, params.f);
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario
        .seed(spec.seed() + 1)
        .rate_model(RateModel::RandomConstant)
        .with_fault_per_cluster(
            &FaultKind::TwoFaced {
                amplitude: 0.9 * params.phi * params.tau3,
            },
            1,
        );
    let run = scenario.run_for(horizon);
    let ft_mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let ft_local = cluster_local_skew_series(&run.trace, &cg, &ft_mask);

    let ft_bound = params.local_skew_bound(4);
    let mut table = Table::new(&[
        "t (s)",
        "plain GCS local (s)",
        "ftgcs local (s)",
        "ftgcs bound (s)",
    ]);
    for i in 0..POINTS {
        let t = horizon * (i as f64 + 1.0) / POINTS as f64;
        table.row(&[
            format!("{t:.0}"),
            format!("{:.3e}", gcs_local.value_at_or_before(t).unwrap_or(0.0)),
            format!("{:.3e}", ft_local.value_at_or_before(t).unwrap_or(0.0)),
            format!("{ft_bound:.3e}"),
        ]);
    }
    emit_table("f5_gcs_vs_ftgcs", &table);

    let gcs_early = gcs_local.value_at_or_before(horizon / 10.0).unwrap_or(0.0);
    let gcs_late = gcs_local.last().unwrap_or(0.0);
    let ft_max = ft_local.after(5.0 * params.t_round).max().unwrap_or(0.0);
    println!(
        "\nplain GCS (1 attacker):  local skew {gcs_early:.3e} s -> {gcs_late:.3e} s (kappa = {kappa:.3e} s): divergence"
    );
    println!(
        "FTGCS (8 attackers):     local skew max {ft_max:.3e} s <= bound {ft_bound:.3e} s: bounded"
    );
    assert!(
        gcs_late > 2.0 * gcs_early.max(kappa),
        "expected plain-GCS divergence"
    );
    assert!(ft_max <= ft_bound, "FTGCS bound violated");
    println!("shape: monotone divergence vs flat bounded curve — the paper's motivating contrast.");
}
