//! **F3 — Skew traces over time: the gradient property** (Theorem 1.1,
//! Theorem C.3).
//!
//! On a line of clusters (the spec's topology) under the adversarial
//! fast/slow rate split, records the *local* (adjacent cluster clocks)
//! and *global* skew as time series. The gradient property is visible
//! as a growing global skew (up to its `Θ(D)` ceiling) while the local
//! skew stays pinned near its logarithmic bound.

use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{cluster_local_skew_series, global_skew_series, FaultMask};
use ftgcs_metrics::table::Table;

use crate::spec::SpecFile;
use crate::{adversarial_rate_split, emit_table, warmup};

const POINTS: usize = 24;

/// Runs the analysis (spec: environment, seed, line topology).
pub fn run(spec: &SpecFile) {
    let params = spec.params();
    let mut scenario = Scenario::from_spec(&spec.scenario).expect("spec must build");
    let cg = scenario.cluster_graph().clone();
    let diameter = cg.cluster_count() - 1;
    println!(
        "F3: local vs global skew over time (line of {} clusters, adversarial rates)\n",
        cg.cluster_count()
    );
    // Start on a steep ramp (1.5κ per hop — each adjacent gap just below
    // the fast-trigger threshold 2κ−δ, the total far above the catch-up
    // threshold c·δ) and keep adversarial drift pressure on throughout.
    // This puts the run in the trigger-active regime from t = 0: the
    // gradient layer visibly redistributes and compresses the skew
    // instead of idling below its thresholds.
    scenario.cluster_offset_ramp(1.5 * params.kappa);
    adversarial_rate_split(&mut scenario, &cg);
    let horizon = params.suggested_horizon(diameter);
    println!("running for {horizon:.1} simulated seconds...");
    let run = scenario.run_for(horizon);

    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let local = cluster_local_skew_series(&run.trace, &cg, &mask);
    let global = global_skew_series(&run.trace, &mask);
    let local_bound = params.local_skew_bound(diameter);
    let global_bound = params.global_skew_bound(diameter);

    let mut table = Table::new(&["t (s)", "local skew (s)", "global skew (s)", "local/global"]);
    for i in 0..POINTS {
        let t = horizon * (i as f64 + 1.0) / POINTS as f64;
        let l = local.value_at_or_before(t).unwrap_or(0.0);
        let g = global.value_at_or_before(t).unwrap_or(0.0);
        table.row(&[
            format!("{t:.1}"),
            format!("{l:.3e}"),
            format!("{g:.3e}"),
            format!("{:.3}", if g > 0.0 { l / g } else { 1.0 }),
        ]);
    }
    emit_table("f3_skew_traces", &table);

    let w = warmup(&params);
    let local_max = local.after(w).max().unwrap_or(0.0);
    // The injected ramp deliberately *starts* above the steady-state
    // global bound; Theorem C.3 promises the catch-up rule compresses it
    // below the bound, so the bound applies to the settled tail of the
    // run.
    let global_settled = global.after(0.75 * horizon).max().unwrap_or(0.0);
    println!("\npost-warmup local max {local_max:.3e} s (bound {local_bound:.3e} s),");
    println!("settled global {global_settled:.3e} s (bound {global_bound:.3e} s)");
    assert!(local_max <= local_bound, "local-skew bound violated");
    assert!(
        global_settled <= global_bound,
        "global skew failed to compress below the Theorem C.3 bound"
    );
    println!("shape: the injected Theta(D)-sized global skew compresses toward the catch-up");
    println!("floor while the local skew stays pinned at ~1.5 kappa — the gradient property.");
}
