//! **A1 — Ablation: mode policy** (DESIGN.md §4 "Mode policy").
//!
//! Algorithm 2 only specifies when a node *must* go fast or slow; when
//! neither trigger fires the implementation chooses. We compare the
//! three policies on two stress scenarios:
//!
//! * a steep initial ramp (steeper than the catch-up threshold), where
//!   only `CatchUp` can compress the global skew (Theorem C.3);
//! * the adversarial rate split, where the triggers do all the work and
//!   the policies should tie.

use ftgcs::runner::Scenario;
use ftgcs::ModePolicy;
use ftgcs_metrics::skew::{global_skew_series, FaultMask};
use ftgcs_metrics::table::Table;
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::{generators, ClusterGraph};

use crate::spec::SpecFile;
use crate::{adversarial_rate_split, emit_table, measure_skews, warmup};

const POLICIES: [(&str, ModePolicy); 3] = [
    ("sticky", ModePolicy::Sticky),
    ("default-slow", ModePolicy::DefaultSlow),
    ("catch-up", ModePolicy::CatchUp),
];

/// Runs the analysis (spec: environment, seed base — ramp scenario at
/// `seed`, rate-split scenario at `seed + 1`).
pub fn run(spec: &SpecFile) {
    println!("A1: mode-policy ablation (same seeds, only the policy differs)\n");
    let params = spec.params_with_f(1);
    let mut table = Table::new(&[
        "scenario",
        "policy",
        "local max (s)",
        "local bound (s)",
        "global end (s)",
    ]);

    // Scenario 1: steep ramp, no drift pressure.
    for (name, policy) in POLICIES {
        let cg = ClusterGraph::new(generators::line(5), params.cluster_size, params.f);
        let mut s = Scenario::new(cg.clone(), params.clone());
        s.seed(spec.seed())
            .rate_model(RateModel::RandomConstant)
            .mode_policy(policy)
            .cluster_offset_ramp(1.4 * params.kappa);
        let run = s.run_for(200.0);
        let skews = measure_skews(&run, &cg, warmup(&params));
        let mask = FaultMask::none(cg.physical().node_count());
        let g_end = global_skew_series(&run.trace, &mask).last().unwrap_or(0.0);
        table.row(&[
            "steep ramp".into(),
            name.into(),
            format!("{:.3e}", skews.local),
            format!("{:.3e}", params.local_skew_bound(4)),
            format!("{g_end:.3e}"),
        ]);
        assert!(skews.local <= params.local_skew_bound(4), "{name} local");
    }

    // Scenario 2: adversarial rate split (trigger-driven).
    for (name, policy) in POLICIES {
        let cg = ClusterGraph::new(generators::line(5), params.cluster_size, params.f);
        let mut s = Scenario::new(cg.clone(), params.clone());
        s.seed(spec.seed() + 1).mode_policy(policy);
        adversarial_rate_split(&mut s, &cg);
        let run = s.run_for(params.suggested_horizon(4));
        let skews = measure_skews(&run, &cg, warmup(&params));
        let mask = FaultMask::none(cg.physical().node_count());
        let g_end = global_skew_series(&run.trace, &mask).last().unwrap_or(0.0);
        table.row(&[
            "rate split".into(),
            name.into(),
            format!("{:.3e}", skews.local),
            format!("{:.3e}", params.local_skew_bound(4)),
            format!("{g_end:.3e}"),
        ]);
        assert!(skews.local <= params.local_skew_bound(4), "{name} local");
    }

    emit_table("a1_mode_policy_ablation", &table);
    println!("\nshape: all policies satisfy the local bound; only catch-up compresses the");
    println!(
        "steep ramp (its global end sits near c*delta = {:.3e} s).",
        params.catch_up_c * params.delta
    );
}
