//! **T4 — Global skew and max-estimator safety** (Lemma C.2,
//! Theorem C.3).
//!
//! Sweeps the diameter of a line topology under the adversarial rate
//! split and reports the measured global skew against the `O(δD)` guide
//! curve. Also audits the safety invariant of the max estimator: every
//! reported `M_v(t)` must lie below the true maximum correct logical
//! clock `L_max(t)` (never overestimate), while tracking it to within
//! `O(δD)`.

use ftgcs::node::ROW_MODE;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::FaultMask;
use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph};

use crate::spec::SpecFile;
use crate::{adversarial_rate_split, emit_table, measure_skews, warmup};

/// Runs the analysis (spec: environment, seed base of the sweep).
pub fn run(spec: &SpecFile) {
    println!("T4: global skew vs O(delta*D) and max-estimator safety\n");
    let params = spec.params_with_f(1);
    let mut table = Table::new(&[
        "D",
        "global max (s)",
        "bound (s)",
        "M_v overestimates",
        "worst M lag (s)",
        "lag bound (s)",
    ]);

    for diameter in [2usize, 4, 8, 16] {
        let cg = ClusterGraph::new(
            generators::line(diameter + 1),
            params.cluster_size,
            params.f,
        );
        let n = cg.physical().node_count();
        let mut scenario = Scenario::new(cg.clone(), params.clone());
        scenario.seed(spec.seed() + diameter as u64);
        adversarial_rate_split(&mut scenario, &cg);
        let run = scenario.run_for(params.suggested_horizon(diameter));
        let skews = measure_skews(&run, &cg, warmup(&params));

        // Safety audit: for each mode row carrying a max estimate, the
        // estimate must not exceed L_max at the *next* clock sample
        // (L_max is nondecreasing, so this is a sound upper reference).
        let mask = FaultMask::none(n);
        let mut overestimates = 0usize;
        let mut worst_lag = 0.0f64;
        let samples = &run.trace.samples;
        let l_max_at = |idx: usize| -> f64 {
            samples[idx]
                .logical
                .iter()
                .enumerate()
                .filter(|(v, _)| !mask.is_faulty(*v))
                .map(|(_, &l)| l)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        for row in run.trace.rows_of_kind(ROW_MODE) {
            let m = row.values[6];
            if m < 0.0 {
                continue; // estimator disabled
            }
            let t = row.t.as_secs();
            // First sample at or after t (and the one before, for the lag).
            let after = samples.partition_point(|s| s.t.as_secs() < t);
            if after >= samples.len() || after == 0 {
                continue;
            }
            if m > l_max_at(after) + 1e-9 {
                overestimates += 1;
            }
            worst_lag = worst_lag.max(l_max_at(after - 1) - m);
        }
        let lag_bound = params.global_skew_bound(diameter);

        table.row(&[
            diameter.to_string(),
            format!("{:.3e}", skews.global),
            format!("{:.3e}", params.global_skew_bound(diameter)),
            overestimates.to_string(),
            format!("{worst_lag:.3e}"),
            format!("{lag_bound:.3e}"),
        ]);
        assert!(
            skews.global <= params.global_skew_bound(diameter),
            "global skew bound violated at D = {diameter}"
        );
        assert_eq!(overestimates, 0, "M_v overestimated L_max (unsafe)");
        assert!(
            worst_lag <= lag_bound,
            "M_v lag {worst_lag} exceeds the Lemma C.2 bound {lag_bound}"
        );
    }
    emit_table("t4_global_skew", &table);
    println!("\nshape: global skew grows ~linearly in D; the estimator is safe (0 overestimates)");
    println!("and its lag stays within the O(delta*D) envelope.");
}
