//! **T6 — Trigger and axiom audit** (Lemma 4.5, Lemma 4.8, Definition
//! 4.9's axioms A1–A4).
//!
//! Instruments a gradient run and counts violations (all must be zero):
//!
//! 1. **Mutual exclusion** (Lemma 4.5): no mode row may report both the
//!    fast and the slow trigger satisfied.
//! 2. **Rate envelope** (axiom A1 / Lemma B.4): every node's logical
//!    clock rate between consecutive samples lies in `[1, ϑ_max]`.
//! 3. **Faithfulness proxy** (Lemma 4.8 / Definition 4.6): whenever the
//!    *fast condition* FC holds for a cluster at a sample time, every
//!    correct member's latest mode decision must have `FT` satisfied
//!    (and symmetrically for SC/ST).
//! 4. **Axiom A4**: the effective parameters `µ̄/ρ̄ > 1`.

use ftgcs::node::ROW_MODE;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{cluster_clock_samples, FaultMask};
use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph};

use crate::exp::{fc_holds, sc_holds};
use crate::spec::SpecFile;
use crate::{adversarial_rate_split, emit_table};

/// Runs the analysis (spec: environment, seed).
pub fn run(spec: &SpecFile) {
    println!("T6: trigger mutual exclusion, rate envelope, faithfulness, axioms\n");
    let params = spec.params_with_f(1);
    let diameter = 4;
    let cg = ClusterGraph::new(
        generators::line(diameter + 1),
        params.cluster_size,
        params.f,
    );
    let n = cg.physical().node_count();
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario
        .seed(spec.seed())
        .cluster_offset_ramp(0.8 * params.kappa);
    adversarial_rate_split(&mut scenario, &cg);
    let run = scenario.run_for(params.suggested_horizon(diameter));
    let mask = FaultMask::none(n);

    // --- 1. Mutual exclusion. ---
    let mut both_triggers = 0usize;
    for row in run.trace.rows_of_kind(ROW_MODE) {
        if row.values[3] > 0.5 && row.values[4] > 0.5 {
            both_triggers += 1;
        }
    }

    // --- 2. Rate envelope between samples. ---
    let mut rate_violations = 0usize;
    let mut min_rate = f64::INFINITY;
    let mut max_rate = f64::NEG_INFINITY;
    for pair in run.trace.samples.windows(2) {
        let dt = pair[1].t.as_secs() - pair[0].t.as_secs();
        if dt <= 0.0 {
            continue;
        }
        for v in 0..n {
            let rate = (pair[1].logical[v] - pair[0].logical[v]) / dt;
            min_rate = min_rate.min(rate);
            max_rate = max_rate.max(rate);
            if rate < 1.0 - 1e-9 || rate > params.theta_max + 1e-9 {
                rate_violations += 1;
            }
        }
    }

    // --- 3. Faithfulness proxy. ---
    // Latest mode row per node before each sample, by merge over time.
    let mut mode_rows: Vec<(f64, usize, bool, bool)> = run
        .trace
        .rows_of_kind(ROW_MODE)
        .map(|r| {
            (
                r.t.as_secs(),
                r.node.index(),
                r.values[3] > 0.5,
                r.values[4] > 0.5,
            )
        })
        .collect();
    mode_rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut latest: Vec<Option<(bool, bool)>> = vec![None; n];
    let mut row_idx = 0usize;
    let mut fc_checks = 0usize;
    let mut fc_violations = 0usize;
    let mut sc_checks = 0usize;
    let mut sc_violations = 0usize;
    let warm = 5.0 * params.t_round;
    for (t, clocks) in cluster_clock_samples(&run.trace, &cg, &mask) {
        while row_idx < mode_rows.len() && mode_rows[row_idx].0 <= t {
            let (_, node, ft, st) = mode_rows[row_idx];
            latest[node] = Some((ft, st));
            row_idx += 1;
        }
        if t < warm {
            continue;
        }
        for c in 0..cg.cluster_count() {
            let neigh = cg.neighbor_clusters(c);
            if fc_holds(&clocks, neigh, c, params.kappa) {
                fc_checks += 1;
                for v in cg.members(c) {
                    if let Some((ft, _)) = latest[v] {
                        if !ft {
                            fc_violations += 1;
                        }
                    }
                }
            }
            if sc_holds(&clocks, neigh, c, params.kappa) {
                sc_checks += 1;
                for v in cg.members(c) {
                    if let Some((_, st)) = latest[v] {
                        if !st {
                            sc_violations += 1;
                        }
                    }
                }
            }
        }
    }

    // --- 4. Axiom A4. ---
    let (rho_bar, mu_bar) = params.gcs_axiom_rates();

    let mut table = Table::new(&["check", "observed", "requirement", "ok"]);
    table.row(&[
        "FT & ST simultaneous (Lemma 4.5)".into(),
        both_triggers.to_string(),
        "0".into(),
        (both_triggers == 0).to_string(),
    ]);
    table.row(&[
        "logical rates outside [1, theta_max]".into(),
        format!("{rate_violations} (range [{min_rate:.6}, {max_rate:.6}])"),
        format!("0 (theta_max = {:.6})", params.theta_max),
        (rate_violations == 0).to_string(),
    ]);
    table.row(&[
        "FC without FT (Lemma 4.8)".into(),
        format!("{fc_violations} of {fc_checks} cluster-samples"),
        "0".into(),
        (fc_violations == 0).to_string(),
    ]);
    table.row(&[
        "SC without ST (Lemma 4.8)".into(),
        format!("{sc_violations} of {sc_checks} cluster-samples"),
        "0".into(),
        (sc_violations == 0).to_string(),
    ]);
    table.row(&[
        "axiom A4: mu_bar/rho_bar > 1".into(),
        format!("{:.4}", mu_bar / rho_bar),
        "> 1".into(),
        (mu_bar / rho_bar > 1.0).to_string(),
    ]);
    emit_table("t6_trigger_audit", &table);

    assert_eq!(both_triggers, 0);
    assert_eq!(rate_violations, 0);
    assert_eq!(fc_violations, 0);
    assert_eq!(sc_violations, 0);
    assert!(mu_bar / rho_bar > 1.0);
    println!("\nall audits clean: the execution is faithful and satisfies the GCS axioms.");
}
