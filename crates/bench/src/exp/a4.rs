//! **A4 — Ablation: max-estimator level unit X** (Appendix C.2 /
//! DESIGN.md's documented deviation).
//!
//! The paper floods a level pulse every `d−U` of estimate growth; we use
//! a configurable unit `X ≥ d−U` (default `δ`). The trade-off: message
//! volume scales like `1/X` while the estimate lag grows like `X`. This
//! ablation sweeps `X` and measures both, justifying the default.

use ftgcs::node::ROW_MODE;
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_metrics::table::Table;
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::{generators, ClusterGraph};

use crate::emit_table;
use crate::spec::SpecFile;

/// Runs the analysis (spec: environment, seed base of the X sweep,
/// horizon).
pub fn run(spec: &SpecFile) {
    println!("A4: max-estimator level-unit ablation (messages vs estimate lag)\n");
    let (rho, d, u) = spec.env();
    let base = spec.params_with_f(1);
    let horizon = spec.scenario.duration.resolve(&base);
    let mut table = Table::new(&[
        "X",
        "X (s)",
        "messages",
        "worst M lag (s)",
        "lag bound O(X + dD) (s)",
    ]);

    let units: Vec<(String, f64)> = vec![
        ("d-U (paper)".into(), d - u),
        ("delta/4".into(), base.delta / 4.0),
        ("delta (default)".into(), base.delta),
        ("4*delta".into(), 4.0 * base.delta),
    ];

    for (i, (label, unit)) in units.iter().enumerate() {
        let params = Params::builder(rho, d, u, 1)
            .level_unit(*unit)
            .build()
            .expect("feasible");
        let diameter = 2;
        let cg = ClusterGraph::new(
            generators::line(diameter + 1),
            params.cluster_size,
            params.f,
        );
        let mut s = Scenario::new(cg.clone(), params.clone());
        s.seed(spec.seed() + i as u64);
        // Front cluster fast: M of the tail must chase L_max via floods.
        for v in cg.members(0) {
            s.rate_override(v, RateModel::Constant { frac: 1.0 });
        }
        let run = s.run_for(horizon);

        // Worst estimate lag across mode rows (cf. t4).
        let samples = &run.trace.samples;
        let mut worst_lag = 0.0f64;
        for row in run.trace.rows_of_kind(ROW_MODE) {
            let m = row.values[6];
            if m < 0.0 {
                continue;
            }
            if row.t.as_secs() < 5.0 * params.t_round {
                continue;
            }
            let after = samples.partition_point(|sm| sm.t < row.t);
            if after == 0 || after >= samples.len() {
                continue;
            }
            // Interpolate L_max at the row time between the bracketing
            // samples (it is piecewise near-linear), so the measured lag
            // is not swamped by sampling staleness.
            let lmax_of = |idx: usize| {
                samples[idx]
                    .logical
                    .iter()
                    .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            };
            let (t0, t1) = (samples[after - 1].t.as_secs(), samples[after].t.as_secs());
            let (l0, l1) = (lmax_of(after - 1), lmax_of(after));
            let frac = if t1 > t0 {
                (row.t.as_secs() - t0) / (t1 - t0)
            } else {
                0.0
            };
            let lmax = l0 + frac * (l1 - l0);
            worst_lag = worst_lag.max(lmax - m);
        }
        // Engineering lag envelope: quantization X + propagation 2dD +
        // one round of rate mismatch.
        let lag_bound = unit
            + 2.0 * d * diameter as f64
            + params.t_round * (params.theta_max - 1.0)
            + 3.0 * params.e;
        table.row(&[
            label.clone(),
            format!("{unit:.3e}"),
            run.stats.messages.to_string(),
            format!("{worst_lag:.3e}"),
            format!("{lag_bound:.3e}"),
        ]);
        assert!(
            worst_lag <= lag_bound,
            "{label}: lag {worst_lag} exceeds envelope {lag_bound}"
        );
    }
    emit_table("a4_level_unit_ablation", &table);
    println!("\nshape: message volume falls ~linearly in 1/X (~96x from X = d-U to X = 4*delta)");
    println!("while the measured lag stays far below the O(X + dD) envelope at every setting —");
    println!("in this regime the lag is dominated by the rate-mismatch term, not quantization.");
    println!("X = delta matches the trigger slack scale, so the quantization the default adds");
    println!("never affects which trigger fires, at ~30x fewer messages than the paper's d-U.");
}
