//! **T5 — Augmentation overhead** (Theorem 1.1: `O(f)` node and `O(f²)`
//! edge overhead).
//!
//! The construction replaces each node of `G` by `k = 3f+1` nodes and
//! each edge by `k²` bipartite edges plus `C(k,2)` intra-cluster edges
//! per node. Counts nodes and edges of generated cluster graphs across
//! topologies and fault budgets and verifies the counts against the
//! closed forms. (Purely structural — the spec contributes only its
//! name; no simulation runs.)

use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph, Graph};

use crate::emit_table;
use crate::spec::SpecFile;

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("line(16)", generators::line(16)),
        ("ring(16)", generators::ring(16)),
        ("grid(4,4)", generators::grid(4, 4)),
        ("tree(2,3)", generators::balanced_tree(2, 3)),
        ("hypercube(4)", generators::hypercube(4)),
        ("complete(8)", generators::complete(8)),
    ]
}

/// Runs the analysis.
pub fn run(_spec: &SpecFile) {
    println!("T5: node/edge overhead of the cluster augmentation\n");
    let mut table = Table::new(&[
        "base",
        "f",
        "k",
        "base n/m",
        "aug n",
        "aug m",
        "n ratio (=k)",
        "m ratio",
        "closed-form m",
    ]);

    for (name, base) in topologies() {
        let n = base.node_count();
        let m = base.edge_count();
        for f in [1usize, 2, 3] {
            let k = 3 * f + 1;
            let cg = ClusterGraph::new(base.clone(), k, f);
            let aug_n = cg.physical().node_count();
            let aug_m = cg.physical().edge_count();
            // Closed forms: n' = k·n; m' = n·C(k,2) + m·k².
            let expect_n = k * n;
            let expect_m = n * k * (k - 1) / 2 + m * k * k;
            assert_eq!(aug_n, expect_n, "{name} f={f}: node count");
            assert_eq!(aug_m, expect_m, "{name} f={f}: edge count");
            assert_eq!(cg.cluster_edge_count(), n * k * (k - 1) / 2);
            assert_eq!(cg.intercluster_edge_count(), m * k * k);
            table.row(&[
                name.to_string(),
                f.to_string(),
                k.to_string(),
                format!("{n}/{m}"),
                aug_n.to_string(),
                aug_m.to_string(),
                format!("{:.1}", aug_n as f64 / n as f64),
                format!("{:.1}", aug_m as f64 / m as f64),
                expect_m.to_string(),
            ]);
        }
    }
    emit_table("t5_overhead", &table);
    println!("\nshape: node overhead is Theta(f) (the ratio equals k = 3f+1); edge overhead");
    println!("is Theta(f^2) (the ratio grows ~k^2 on edge-dominated graphs). Tolerating f");
    println!("faulty neighbors requires degree > f, so both are asymptotically optimal.");
}
