//! **T2 — Cluster reliability under random faults** (Inequality 1).
//!
//! If nodes fail independently with probability `p`, a `3f+1` cluster
//! exceeds its fault budget with probability
//! `Σ_{i>f} C(3f+1, i) p^i (1−p)^{3f+1−i} ≤ (3ep)^{f+1}`. Compares,
//! over a `p × f` grid: Monte-Carlo estimates (seeded from the spec),
//! the exact binomial tail, and the paper's closed-form bound.

use ftgcs_metrics::table::Table;
use ftgcs_sim::rng::SimRng;

use crate::emit_table;
use crate::spec::SpecFile;

const TRIALS: usize = 200_000;

/// Exact probability that a Binomial(k, p) exceeds f.
fn binomial_tail(k: usize, f: usize, p: f64) -> f64 {
    let mut prob = 0.0;
    for i in (f + 1)..=k {
        prob += choose(k, i) * p.powi(i as i32) * (1.0 - p).powi((k - i) as i32);
    }
    prob
}

fn choose(n: usize, k: usize) -> f64 {
    let mut c = 1.0;
    for i in 0..k {
        c *= (n - i) as f64 / (i + 1) as f64;
    }
    c
}

/// Paper's bound `(3ep)^{f+1}` (Inequality 1).
fn paper_bound(f: usize, p: f64) -> f64 {
    (3.0 * std::f64::consts::E * p).powi(f as i32 + 1)
}

fn monte_carlo(k: usize, f: usize, p: f64, rng: &mut SimRng) -> f64 {
    let mut bad = 0usize;
    for _ in 0..TRIALS {
        let mut faults = 0usize;
        for _ in 0..k {
            if rng.chance(p) {
                faults += 1;
            }
        }
        if faults > f {
            bad += 1;
        }
    }
    bad as f64 / TRIALS as f64
}

/// Runs the analysis (spec: Monte-Carlo seed).
pub fn run(spec: &SpecFile) {
    println!("T2: P[cluster exceeds fault budget], Monte-Carlo vs exact vs paper bound\n");
    let mut rng = SimRng::seed_from(spec.seed());
    let mut table = Table::new(&[
        "f",
        "k",
        "p",
        "monte-carlo",
        "exact tail",
        "paper (3ep)^(f+1)",
        "bound holds",
    ]);

    for f in [1usize, 2, 3, 4] {
        let k = 3 * f + 1;
        for &p in &[0.001, 0.01, 0.05, 0.1] {
            let mc = monte_carlo(k, f, p, &mut rng);
            let exact = binomial_tail(k, f, p);
            let bound = paper_bound(f, p);
            let holds = exact <= bound;
            table.row(&[
                f.to_string(),
                k.to_string(),
                format!("{p}"),
                format!("{mc:.3e}"),
                format!("{exact:.3e}"),
                format!("{bound:.3e}"),
                if holds { "yes".into() } else { "NO".into() },
            ]);
            assert!(holds, "Inequality 1 violated at f = {f}, p = {p}");
            // Monte-Carlo agrees with the exact tail within noise.
            let tol = 5.0 * (exact * (1.0 - exact) / TRIALS as f64).sqrt() + 1e-5;
            assert!(
                (mc - exact).abs() <= tol,
                "MC {mc} vs exact {exact} beyond tolerance {tol}"
            );
        }
    }
    emit_table("t2_reliability", &table);
    println!("\nshape: reliability improves exponentially in f; small f already suppresses");
    println!("cluster failure dramatically for realistic node-failure probabilities.");
}
