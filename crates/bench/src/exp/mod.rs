//! The figure, table, and ablation analyses of the reproduction.
//!
//! Each submodule holds the body of one paper artifact regeneration —
//! the code that used to live in a dedicated `src/bin/{a,f,t}*.rs`
//! binary. Both entry points now share it:
//!
//! * the **`xp` driver** dispatches here when a spec file names an
//!   `analysis`;
//! * the **legacy binaries** are thin wrappers that feed their
//!   checked-in `experiments/<name>.spec` through the same driver.
//!
//! Byte-identical CSVs between `xp run experiments/<name>.spec` and the
//! legacy binary are therefore structural: there is exactly one code
//! path.
//!
//! Every analysis takes the parsed [`SpecFile`] and reads its
//! environment `(ρ, d, U)`, base seed, and (where the analysis runs a
//! single scenario) the full scenario description from it; grid axes
//! the paper sweeps (fault budgets, diameters, slack scales, …) stay
//! analysis-internal and are documented in the spec files' comments.

use crate::spec::SpecFile;

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;

/// An analysis entry point.
pub type Analysis = fn(&SpecFile);

/// Name → analysis registry (the names match the legacy binaries and
/// the output CSVs).
pub const ANALYSES: &[(&str, Analysis)] = &[
    ("a1_mode_policy_ablation", a1::run),
    ("a2_slack_ablation", a2::run),
    ("a3_amortization_ablation", a3::run),
    ("a4_level_unit_ablation", a4::run),
    ("f1_cluster_convergence", f1::run),
    ("f2_local_skew_vs_diameter", f2::run),
    ("f3_skew_traces", f3::run),
    ("f4_attack_matrix", f4::run),
    ("f5_gcs_vs_ftgcs", f5::run),
    ("f6_churn", f6::run),
    ("f7_mobile_adversary", f7::run),
    ("t1_parameter_table", t1::run),
    ("t2_reliability", t2::run),
    ("t3_unanimous_rates", t3::run),
    ("t4_global_skew", t4::run),
    ("t5_overhead", t5::run),
    ("t6_trigger_audit", t6::run),
];

/// Looks an analysis up by name.
#[must_use]
pub fn find(name: &str) -> Option<Analysis> {
    ANALYSES.iter().find(|&&(n, _)| n == name).map(|&(_, f)| f)
}

/// Does FC hold for cluster `c` given all cluster clocks? (Def. 4.1:
/// `∃ s ≥ 1: up ≥ 2sκ ∧ down ≤ 2sκ`.) Shared by the t6 audit and the
/// a2 slack ablation.
pub(crate) fn fc_holds(clocks: &[f64], neighbors: &[usize], c: usize, kappa: f64) -> bool {
    let up = neighbors
        .iter()
        .map(|&a| clocks[a] - clocks[c])
        .fold(f64::NEG_INFINITY, f64::max);
    let down = neighbors
        .iter()
        .map(|&b| clocks[c] - clocks[b])
        .fold(f64::NEG_INFINITY, f64::max);
    let s_lo = (down / (2.0 * kappa)).ceil().max(1.0);
    up >= 2.0 * s_lo * kappa
}

/// Does SC hold for cluster `c`? (Def. 4.2:
/// `∃ s ≥ 1: behind ≥ (2s−1)κ ∧ ahead ≤ (2s−1)κ`.)
pub(crate) fn sc_holds(clocks: &[f64], neighbors: &[usize], c: usize, kappa: f64) -> bool {
    let behind = neighbors
        .iter()
        .map(|&a| clocks[c] - clocks[a])
        .fold(f64::NEG_INFINITY, f64::max);
    let ahead = neighbors
        .iter()
        .map(|&b| clocks[b] - clocks[c])
        .fold(f64::NEG_INFINITY, f64::max);
    let s_lo = ((ahead / kappa + 1.0) / 2.0).ceil().max(1.0);
    behind >= (2.0 * s_lo - 1.0) * kappa
}
