//! **F7 — Mobile Byzantine adversaries**: corruption that moves.
//!
//! A mobile adversary corrupts a different node every `hop` seconds,
//! following a seed-derived itinerary that never exceeds `f`
//! simultaneous faults per cluster (the spec expansion rejects any hop
//! that would). The abandoned node recovers — re-initialized, rejoining
//! at the next round boundary — so over the whole run more than `f`
//! nodes per cluster were Byzantine *at some point* while the paper's
//! instantaneous premise holds throughout.
//!
//! The grid sweeps the attack strategy and hop length on a 3-cluster
//! line and compares each cell against a *static* adversary of the same
//! strength (same kind, permanent placement). Skews are measured over
//! the never-corrupted nodes, so hops are kept to a handful per run —
//! with short hops the itinerary touches every node and the mask would
//! leave nothing to measure (the analysis asserts this cannot happen
//! silently).

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::spec::{DurationSpec, ScenarioSpec, TopologySpec};
use ftgcs::FaultKind;
use ftgcs_metrics::table::Table;

use crate::spec::SpecFile;
use crate::{emit_table, measure_skews, warmup};

const DIAMETER: usize = 2;
const CLUSTERS: usize = DIAMETER + 1;

fn attacks(p: &Params) -> Vec<(&'static str, FaultKind)> {
    vec![
        (
            "two-faced",
            FaultKind::TwoFaced {
                amplitude: 0.9 * p.phi * p.tau3,
            },
        ),
        ("skew-puller", FaultKind::SkewPuller { offset: -2.0 * p.e }),
    ]
}

/// Runs the analysis (spec: environment, seed base — cell `i` runs at
/// `seed + i`, its static twin at `seed + i + 500`). The grid is
/// analysis-internal: one adversary, attack ∈ {two-faced, skew-puller},
/// hop ∈ {horizon/6, horizon/4}.
pub fn run(spec: &SpecFile) {
    println!("F7: mobile Byzantine adversaries (hopping corruption)\n");
    let mut table = Table::new(&[
        "attack",
        "hop (rounds)",
        "hops",
        "ever faulty",
        "intra (s)",
        "intra bound (s)",
        "local (s)",
        "local bound (s)",
        "static local (s)",
        "ok",
    ]);

    let params = spec.params_with_f(1);
    let horizon = params.suggested_horizon(DIAMETER);
    let intra_bound = params.intra_cluster_skew_bound();
    let local_bound = params.local_skew_bound(DIAMETER);
    let nodes = CLUSTERS * params.cluster_size;
    let mut violations = 0;
    let mut cell = 0u64;
    for (name, kind) in attacks(&params) {
        for hops in [6usize, 4] {
            let hop = horizon / hops as f64;
            let mut s = ScenarioSpec::new("f7cell", TopologySpec::Line(CLUSTERS), params.f);
            s.cluster_size = params.cluster_size;
            (s.rho, s.d, s.u) = spec.env();
            s.seed = spec.seed() + cell;
            s.duration = DurationSpec::Secs(horizon);
            s.mobile.push((1, kind.clone(), hop));
            let scenario = Scenario::from_spec(&s).expect("mobile cell must assemble");
            assert!(
                !scenario.faults_exceed_budget(),
                "the mobile itinerary must keep the instantaneous budget"
            );
            let ever_faulty = scenario.faulty_nodes().len();
            // Must-move guarantees at least two distinct hosts; hosts
            // may be revisited, so distinct hosts ≤ hops, and the
            // bounded hop count leaves never-faulty nodes to measure.
            assert!(
                ever_faulty >= 2 && ever_faulty <= hops.min(nodes - 1),
                "itinerary corrupted {ever_faulty} nodes; expected 2..={hops}"
            );
            let run = scenario.run_for(horizon);
            let skews = measure_skews(&run, scenario.cluster_graph(), warmup(&params));
            assert!(
                skews.intra > 0.0,
                "the never-faulty mask must leave a measurable population"
            );

            // The static twin: one permanent attacker of the same kind.
            let mut t = s.clone();
            t.mobile.clear();
            t.seed = spec.seed() + cell + 500;
            t.faults.push((0, kind.clone()));
            let twin = Scenario::from_spec(&t).expect("static twin must assemble");
            let twin_run = twin.run_for(horizon);
            let twin_skews = measure_skews(&twin_run, twin.cluster_graph(), warmup(&params));

            let ok = skews.intra <= intra_bound && skews.local <= local_bound;
            if !ok {
                violations += 1;
            }
            table.row(&[
                name.to_string(),
                format!("{:.0}", hop / params.t_round),
                hops.to_string(),
                format!("{ever_faulty}/{nodes}"),
                format!("{:.3e}", skews.intra),
                format!("{intra_bound:.3e}"),
                format!("{:.3e}", skews.local),
                format!("{local_bound:.3e}"),
                format!("{:.3e}", twin_skews.local),
                if ok { "yes".into() } else { "NO".into() },
            ]);
            cell += 1;
        }
    }

    emit_table("f7_mobile_adversary", &table);
    assert_eq!(
        violations, 0,
        "{violations} in-budget mobile cells broke a bound"
    );
    println!("\nmobile corruption within the instantaneous budget holds the bounds.");
}
