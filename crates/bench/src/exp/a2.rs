//! **A2 — Ablation: trigger slack δ and step κ = 3δ** (Lemma 4.8).
//!
//! The paper sets `δ = (k+5)E` — just enough slack to absorb estimate
//! error plus `k+1` rounds of drift — and `κ = 3δ` so the triggers stay
//! mutually exclusive. This ablation scales `(δ, κ)` together by
//! `{0.25, 0.5, 1, 2, 4}` and measures:
//!
//! * faithfulness violations (FC holding without FT — Lemma 4.8's
//!   guarantee evaporates below `(k+5)E`);
//! * the local skew (which scales like `O(κ log D)`, so oversized slack
//!   directly costs precision).

use ftgcs::node::ROW_MODE;
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{cluster_clock_samples, cluster_local_skew_series, FaultMask};
use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph};

use crate::exp::fc_holds;
use crate::spec::SpecFile;
use crate::{adversarial_rate_split, emit_table};

fn run_with_scale(base: &Params, scale: f64, seed: u64) -> (f64, usize, usize) {
    let mut params = base.clone();
    params.delta *= scale;
    params.kappa *= scale;
    let diameter = 4;
    let cg = ClusterGraph::new(
        generators::line(diameter + 1),
        params.cluster_size,
        params.f,
    );
    let n = cg.physical().node_count();
    let mut s = Scenario::new(cg.clone(), params.clone());
    s.seed(seed).cluster_offset_ramp(0.8 * params.kappa);
    adversarial_rate_split(&mut s, &cg);
    let run = s.run_for(base.suggested_horizon(diameter));
    let mask = FaultMask::none(n);
    let warm = 5.0 * params.t_round;

    let local = cluster_local_skew_series(&run.trace, &cg, &mask)
        .after(warm)
        .max()
        .unwrap_or(0.0);

    // Faithfulness audit (same proxy as t6): FC at a sample without the
    // responsible nodes' latest FT.
    let mut mode_rows: Vec<(f64, usize, bool)> = run
        .trace
        .rows_of_kind(ROW_MODE)
        .map(|r| (r.t.as_secs(), r.node.index(), r.values[3] > 0.5))
        .collect();
    mode_rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut latest: Vec<Option<bool>> = vec![None; n];
    let mut idx = 0usize;
    let mut checks = 0usize;
    let mut violations = 0usize;
    for (t, clocks) in cluster_clock_samples(&run.trace, &cg, &mask) {
        while idx < mode_rows.len() && mode_rows[idx].0 <= t {
            latest[mode_rows[idx].1] = Some(mode_rows[idx].2);
            idx += 1;
        }
        if t < warm {
            continue;
        }
        for c in 0..cg.cluster_count() {
            if fc_holds(&clocks, cg.neighbor_clusters(c), c, params.kappa) {
                checks += 1;
                for v in cg.members(c) {
                    if latest[v] == Some(false) {
                        violations += 1;
                    }
                }
            }
        }
    }
    (local, checks, violations)
}

/// Runs the analysis (spec: environment, seed base of the scale sweep).
pub fn run(spec: &SpecFile) {
    println!("A2: trigger slack ablation (delta, kappa scaled together)\n");
    let base = spec.params_with_f(1);
    let mut table = Table::new(&[
        "scale",
        "delta (s)",
        "kappa (s)",
        "local max (s)",
        "FC samples",
        "FC-without-FT",
    ]);
    let mut last_local = 0.0;
    for (i, scale) in [0.25f64, 0.5, 1.0, 2.0, 4.0].iter().enumerate() {
        let (local, checks, violations) = run_with_scale(&base, *scale, spec.seed() + i as u64);
        table.row(&[
            format!("{scale}x"),
            format!("{:.3e}", base.delta * scale),
            format!("{:.3e}", base.kappa * scale),
            format!("{local:.3e}"),
            checks.to_string(),
            violations.to_string(),
        ]);
        if (*scale - 1.0).abs() < f64::EPSILON {
            assert_eq!(
                violations, 0,
                "paper-prescribed slack must yield faithful executions"
            );
        }
        last_local = local;
    }
    emit_table("a2_slack_ablation", &table);
    let _ = last_local;
    println!("\nshape: at delta = (k+5)E (scale 1x) executions are faithful with the smallest");
    println!("kappa; undersized slack risks FC-without-FT; oversized slack inflates the");
    println!("local skew roughly linearly in kappa.");
}
