//! **F4 — Attack matrix: every fault strategy × fault budget**
//! (Theorem 1.1's premise: ≤ `f` Byzantine nodes per cluster).
//!
//! Runs every implemented Byzantine strategy against a 3-cluster line,
//! for `f ∈ {1, 2}` (clusters of `3f+1`), with `f` attackers in *every*
//! cluster, and reports intra-cluster and local skew against the paper's
//! bounds. All in-budget cells must hold; the final row deliberately
//! exceeds the budget to show the bounds are not vacuous.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph};

use crate::spec::SpecFile;
use crate::{emit_table, measure_skews, warmup};

const DIAMETER: usize = 2;

fn attacks(p: &Params) -> Vec<(&'static str, FaultKind)> {
    vec![
        ("silent", FaultKind::Silent),
        (
            "crash@mid",
            FaultKind::Crash {
                at: 0.5 * p.suggested_horizon(DIAMETER),
            },
        ),
        (
            "random-pulser",
            FaultKind::RandomPulser {
                mean_interval: p.t_round / 3.0,
            },
        ),
        (
            "two-faced",
            FaultKind::TwoFaced {
                amplitude: 0.9 * p.phi * p.tau3,
            },
        ),
        ("skew-puller", FaultKind::SkewPuller { offset: -2.0 * p.e }),
        (
            "stealthy-rusher",
            FaultKind::StealthyRusher { extra_rate: 0.01 },
        ),
        (
            "level-flooder",
            FaultKind::LevelFlooder { level_step: 1000 },
        ),
    ]
}

fn run_cell(params: &Params, kind: &FaultKind, per_cluster: usize, seed: u64) -> (f64, f64) {
    let cg = ClusterGraph::new(
        generators::line(DIAMETER + 1),
        params.cluster_size,
        params.f,
    );
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario
        .seed(seed)
        .with_fault_per_cluster(kind, per_cluster);
    let run = scenario.run_for(params.suggested_horizon(DIAMETER));
    let s = measure_skews(&run, &cg, warmup(params));
    (s.intra, s.local)
}

/// Lifecycle attack rows: time-windowed faults that keep the paper's
/// *instantaneous* budget — `f` attackers per cluster at every moment —
/// while strictly more distinct nodes are Byzantine over the whole run.
/// Recovered nodes re-initialize and rejoin mid-run (see
/// `ftgcs::faults::LifecycleNode`); skews are measured over the
/// never-faulty nodes.
/// One windowed fault assignment: `(node, kind, from, to)`, the same
/// shape `Scenario::with_fault_window` takes.
type FaultWindow = (usize, FaultKind, f64, f64);

fn lifecycle_attacks(p: &Params) -> Vec<(&'static str, Vec<FaultWindow>)> {
    let h = p.suggested_horizon(DIAMETER);
    let k = p.cluster_size;
    let two_faced = FaultKind::TwoFaced {
        amplitude: 0.9 * p.phi * p.tau3,
    };
    // Slots 0..f of every cluster attack only over the middle third of
    // the run, then recover.
    let mut windowed = Vec::new();
    // Slots 0..f of every cluster flap: silent for a quarter of each
    // 8-round period (f simultaneous outages per cluster = exactly the
    // budget).
    let mut churn = Vec::new();
    let period = 8.0 * p.t_round;
    for c in 0..=DIAMETER {
        for s in 0..p.f {
            let node = c * k + s;
            windowed.push((node, two_faced.clone(), 0.35 * h, 0.65 * h));
            let mut start = 0.5 * period;
            while start < h {
                churn.push((node, FaultKind::Silent, start, start + 0.25 * period));
                start += period;
            }
        }
    }
    vec![("two-faced-windowed", windowed), ("silent-churn", churn)]
}

fn run_lifecycle_cell(params: &Params, seed: u64, windows: &[FaultWindow]) -> (f64, f64) {
    let cg = ClusterGraph::new(
        generators::line(DIAMETER + 1),
        params.cluster_size,
        params.f,
    );
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario.seed(seed);
    for &(node, ref kind, from, to) in windows {
        scenario.with_fault_window(node, kind.clone(), from, to);
    }
    assert!(
        !scenario.faults_exceed_budget(),
        "lifecycle rows must keep the instantaneous budget"
    );
    let run = scenario.run_for(params.suggested_horizon(DIAMETER));
    let s = measure_skews(&run, &cg, warmup(params));
    (s.intra, s.local)
}

/// Runs the analysis (spec: environment, seed base — cell `i` at
/// `seed + i`, lifecycle rows at `seed + 50 + 10f + j`, the over-budget
/// row at `seed + 899`, matching the legacy binary's `100 + i` / `999`
/// layout at the default base 100).
pub fn run(spec: &SpecFile) {
    println!("F4: attack strategy x fault budget matrix\n");
    let mut table = Table::new(&[
        "f",
        "k",
        "attack",
        "attackers/cluster",
        "intra (s)",
        "intra bound (s)",
        "local (s)",
        "local bound (s)",
        "ok",
    ]);

    let mut violations = 0;
    for f in [1usize, 2] {
        let params = spec.params_with_f(f);
        let intra_bound = params.intra_cluster_skew_bound();
        let local_bound = params.local_skew_bound(DIAMETER);
        for (i, (name, kind)) in attacks(&params).iter().enumerate() {
            let (intra, local) = run_cell(&params, kind, f, spec.seed() + i as u64);
            let ok = intra <= intra_bound && local <= local_bound;
            if !ok {
                violations += 1;
            }
            table.row(&[
                f.to_string(),
                params.cluster_size.to_string(),
                (*name).to_string(),
                format!("{f} (= f)"),
                format!("{intra:.3e}"),
                format!("{intra_bound:.3e}"),
                format!("{local:.3e}"),
                format!("{local_bound:.3e}"),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
        for (j, (name, windows)) in lifecycle_attacks(&params).iter().enumerate() {
            let seed = spec.seed() + 50 + 10 * f as u64 + j as u64;
            let (intra, local) = run_lifecycle_cell(&params, seed, windows);
            let ok = intra <= intra_bound && local <= local_bound;
            if !ok {
                violations += 1;
            }
            table.row(&[
                f.to_string(),
                params.cluster_size.to_string(),
                (*name).to_string(),
                format!("{f} (= f, windowed)"),
                format!("{intra:.3e}"),
                format!("{intra_bound:.3e}"),
                format!("{local:.3e}"),
                format!("{local_bound:.3e}"),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
    }

    // Premise violation: f+1 coordinated skew-pullers with f = 1.
    let params = spec.params_with_f(1);
    let (intra, local) = run_cell(
        &params,
        &FaultKind::SkewPuller {
            offset: -2.0 * params.e,
        },
        2,
        spec.seed() + 899,
    );
    table.row(&[
        "1".into(),
        params.cluster_size.to_string(),
        "skew-puller".into(),
        "2 (> f)".into(),
        format!("{intra:.3e}"),
        format!("{:.3e}", params.intra_cluster_skew_bound()),
        format!("{local:.3e}"),
        format!("{:.3e}", params.local_skew_bound(DIAMETER)),
        "over budget".into(),
    ]);

    emit_table("f4_attack_matrix", &table);
    assert_eq!(
        violations, 0,
        "{violations} in-budget attacks broke a bound"
    );
    println!("\nall in-budget cells hold; the over-budget row shows why k >= 3f+1 matters.");
}
