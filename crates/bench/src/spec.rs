//! Experiment spec files: a [`ScenarioSpec`] plus driver-level keys.
//!
//! The files checked in under `experiments/` are the unit of experiment
//! exchange. Each one is a [`ftgcs::spec::ScenarioSpec`] text document
//! extended with driver-only keys the core format does not know about:
//!
//! * `analysis <name>` — run the named figure/table analysis from
//!   [`crate::exp`] (the code the legacy `{a,f,t}*` binaries wrap)
//!   instead of the default streaming run;
//! * `csv_stride <n>` — decimation factor of the streaming samples CSV
//!   (default 1 = every sample).
//!
//! Driver keys are stripped before the remainder is handed to
//! [`ScenarioSpec::parse`], so a spec file is always a superset of the
//! core format.

use ftgcs::params::Params;
use ftgcs::spec::{ScenarioSpec, SpecError};

/// A parsed experiment file: the scenario plus driver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecFile {
    /// The declarative scenario.
    pub scenario: ScenarioSpec,
    /// Named analysis to run (`None` = the default streaming run).
    pub analysis: Option<String>,
    /// Samples-CSV decimation for streaming runs.
    pub csv_stride: usize,
}

impl SpecFile {
    /// Parses an experiment file: driver keys here, the rest via
    /// [`ScenarioSpec::parse`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut analysis = None;
        let mut csv_stride = 1usize;
        let mut rest = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("analysis") => {
                    let name = tokens.next().ok_or_else(|| SpecError {
                        line: lineno,
                        msg: "analysis takes a name".into(),
                    })?;
                    if tokens.next().is_some() {
                        return Err(SpecError {
                            line: lineno,
                            msg: "analysis takes exactly one name".into(),
                        });
                    }
                    analysis = Some(name.to_string());
                    rest.push('\n'); // keep line numbers aligned
                }
                Some("csv_stride") => {
                    let n = tokens
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| SpecError {
                            line: lineno,
                            msg: "csv_stride takes a positive integer".into(),
                        })?;
                    csv_stride = n;
                    rest.push('\n');
                }
                _ => {
                    rest.push_str(raw);
                    rest.push('\n');
                }
            }
        }
        Ok(SpecFile {
            scenario: ScenarioSpec::parse(&rest)?,
            analysis,
            csv_stride,
        })
    }

    /// Canonical text rendering: the scenario's own canonical
    /// [`ScenarioSpec::print`] followed by the driver keys (only when
    /// they differ from their defaults).
    ///
    /// Like the core printer, this is an exact inverse of [`parse`]
    /// (`SpecFile::parse(&f.print()) == Ok(f)`), which makes the
    /// printing a complete serialization of the experiment:
    /// `ftgcs_serve` keys its result cache by this text, so two spec
    /// files that differ only in comments, whitespace, or (for scalar
    /// last-wins keys) line order share one cache entry, while any
    /// semantic change produces a different key.
    ///
    /// [`parse`]: SpecFile::parse
    #[must_use]
    pub fn print(&self) -> String {
        let mut out = self.scenario.print();
        if let Some(name) = &self.analysis {
            out.push_str(&format!("analysis {name}\n"));
        }
        if self.csv_stride != 1 {
            out.push_str(&format!("csv_stride {}\n", self.csv_stride));
        }
        out
    }

    /// Parameter set implied by the spec's environment, with a
    /// **different** fault budget `f` (and the default `k = 3f + 1`) —
    /// the grid axis most analyses sweep while keeping the spec's
    /// `(ρ, d, U)`.
    ///
    /// # Panics
    ///
    /// Panics if the environment is infeasible for that `f` (analyses
    /// have no error channel more useful than aborting).
    #[must_use]
    pub fn params_with_f(&self, f: usize) -> Params {
        Params::practical(self.scenario.rho, self.scenario.d, self.scenario.u, f)
            .expect("spec environment must be feasible")
    }

    /// The spec's own parameter set.
    ///
    /// # Panics
    ///
    /// Panics if the environment is infeasible.
    #[must_use]
    pub fn params(&self) -> Params {
        self.scenario
            .params()
            .expect("spec environment must be feasible")
    }

    /// The spec's `(ρ, d, U)` environment triple.
    #[must_use]
    pub fn env(&self) -> (f64, f64, f64) {
        (self.scenario.rho, self.scenario.d, self.scenario.u)
    }

    /// The spec's master seed (analyses derive their per-cell seeds
    /// from it).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.scenario.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_keys_are_stripped_and_parsed() {
        let f = SpecFile::parse(
            "name x\ntopology line 2\nanalysis f1_cluster_convergence\ncsv_stride 4\nseed 9\n",
        )
        .unwrap();
        assert_eq!(f.analysis.as_deref(), Some("f1_cluster_convergence"));
        assert_eq!(f.csv_stride, 4);
        assert_eq!(f.scenario.seed, 9);
    }

    #[test]
    fn line_numbers_survive_driver_key_stripping() {
        let err = SpecFile::parse("name x\nanalysis demo\ntopology line 2\nbogus 1\n").unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn print_is_an_exact_inverse_of_parse() {
        let f = SpecFile::parse(
            "name x  # comment\n\ntopology ring 3\nanalysis f1_cluster_convergence\n\
             csv_stride 4\nseed 9\n",
        )
        .unwrap();
        let printed = f.print();
        assert_eq!(SpecFile::parse(&printed).unwrap(), f);
        assert!(printed.contains("analysis f1_cluster_convergence\n"));
        assert!(printed.contains("csv_stride 4\n"));
        // Default driver keys are omitted from the canonical form.
        let plain = SpecFile::parse("name y\ntopology line 2\n").unwrap();
        let printed = plain.print();
        assert!(!printed.contains("analysis"));
        assert!(!printed.contains("csv_stride"));
        assert_eq!(SpecFile::parse(&printed).unwrap(), plain);
    }

    #[test]
    fn bad_driver_keys_error() {
        assert!(SpecFile::parse("name x\ntopology line 2\nanalysis\n").is_err());
        assert!(SpecFile::parse("name x\ntopology line 2\ncsv_stride 0\n").is_err());
    }
}
