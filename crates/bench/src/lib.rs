//! Shared experiment harness for the FTGCS reproduction.
//!
//! Experiments are **spec files** under `experiments/` at the repo root
//! ([`spec::SpecFile`]): the unified `xp` binary executes them
//! (`xp run`, `xp sweep`, `xp list` — see [`driver`]), dispatching
//! either into one of the figure/table/ablation analyses in [`exp`] or
//! into the default streaming runner. The fifteen legacy
//! `src/bin/{a,f,t}*.rs` binaries are thin wrappers that feed their
//! checked-in spec through the same driver, so both entry points emit
//! byte-identical CSVs. `EXPERIMENTS.md` at the repository root indexes
//! everything. This module itself holds the pieces the analyses share:
//! the adversarial clock-rate schedule, the standard post-warmup skew
//! measurement, and CSV output.

#![warn(missing_docs)]
// Unsafety discipline (enforced by `ftgcs-lint`): this crate must
// compile with no `unsafe` at all; the one sanctioned unsafe region in
// the workspace is `ftgcs-sim`'s parallel executor (sim/src/par.rs).
#![deny(unsafe_code)]

pub mod driver;
pub mod exp;
pub mod spec;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use ftgcs::params::Params;
use ftgcs::runner::{Scenario, ScenarioRun};
use ftgcs_metrics::skew::{
    cluster_local_skew_series, global_skew_series, intra_cluster_skew_series, FaultMask,
};
use ftgcs_metrics::table::Table;
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::ClusterGraph;

/// Default network characteristics `(ρ, d, U)` used by the experiments:
/// drift `1e-4`, delay 1 ms, uncertainty 0.1 ms.
pub const DEFAULT_ENV: (f64, f64, f64) = (1e-4, 1e-3, 1e-4);

/// Derives the default practical parameter set for fault budget `f`.
///
/// # Panics
///
/// Panics if the default environment is infeasible (it is not).
#[must_use]
pub fn default_params(f: usize) -> Params {
    let (rho, d, u) = DEFAULT_ENV;
    Params::practical(rho, d, u, f).expect("default environment is feasible")
}

/// Pins the hardware clocks of the left half of the clusters to the
/// fastest legal rate and the right half to the slowest — the adversarial
/// schedule that maximizes skew across a line (cf. the lower-bound
/// executions of [FL'04]).
pub fn adversarial_rate_split(scenario: &mut Scenario, cg: &ClusterGraph) {
    let clusters = cg.cluster_count();
    for c in 0..clusters {
        let frac = if c < clusters / 2 { 1.0 } else { 0.0 };
        for slot in 0..cg.cluster_size() {
            scenario.rate_override(cg.node_id(c, slot), RateModel::Constant { frac });
        }
    }
}

/// Post-warmup skew maxima of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewReport {
    /// Worst intra-cluster skew (Corollary 3.2's quantity).
    pub intra: f64,
    /// Worst adjacent-cluster-clock skew (Theorem 4.10's quantity).
    pub local: f64,
    /// Worst global skew over correct nodes (Theorem C.3's quantity).
    pub global: f64,
}

/// Measures the three skew maxima of `run` after `warmup` seconds.
#[must_use]
pub fn measure_skews(run: &ScenarioRun, cg: &ClusterGraph, warmup: f64) -> SkewReport {
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    SkewReport {
        intra: intra_cluster_skew_series(&run.trace, cg, &mask)
            .after(warmup)
            .max()
            .unwrap_or(0.0),
        local: cluster_local_skew_series(&run.trace, cg, &mask)
            .after(warmup)
            .max()
            .unwrap_or(0.0),
        global: global_skew_series(&run.trace, &mask)
            .after(warmup)
            .max()
            .unwrap_or(0.0),
    }
}

/// The standard warm-up window: five rounds, enough for the cluster
/// algorithm to pass its transient (Proposition B.14 converges
/// geometrically with ratio `α ≈ 1/2`).
#[must_use]
pub fn warmup(params: &Params) -> f64 {
    5.0 * params.t_round
}

/// Returns the `results/` output directory, creating it if necessary.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a rendered table to stdout and its CSV twin to
/// `results/<name>.csv`.
///
/// # Panics
///
/// Panics on I/O errors (experiment binaries have no error channel more
/// useful than aborting).
pub fn emit_table(name: &str, table: &Table) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    let mut file = fs::File::create(&path).expect("create csv");
    file.write_all(table.to_csv().as_bytes())
        .expect("write csv");
    println!("[csv written to {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgcs_topology::generators::line;

    #[test]
    fn default_params_are_feasible() {
        let p = default_params(1);
        assert!(p.alpha < 1.0);
        assert_eq!(p.cluster_size, 4);
    }

    #[test]
    fn adversarial_split_overrides_all_nodes() {
        let p = default_params(1);
        let cg = ClusterGraph::new(line(4), 4, 1);
        let mut s = Scenario::new(cg.clone(), p);
        adversarial_rate_split(&mut s, &cg);
        // The scenario builds fine with all overrides in place.
        let sim = s.build();
        assert_eq!(sim.node_count(), 16);
    }

    /// Smoke guard for `benches/shard_scaling.rs` (and, transitively,
    /// `benches/engine.rs` / `benches/cluster_round.rs`): building the
    /// bench workloads with a sharded scheduler must stay cheap and
    /// correct, so `cargo bench --no-run` in CI can't silently rot and
    /// per-shard setup overhead can't creep into the measured loop.
    #[test]
    fn sharded_bench_setup_is_sound() {
        use ftgcs_sim::shard::{Partition, SchedulerKind};
        let p = default_params(1);
        // The partition seam is only meaningful while inter-cluster
        // messages have a positive delay floor.
        assert!(p.lookahead() > 0.0, "d - U must be positive");
        let cg = ClusterGraph::new(line(4), 4, 1);
        let nodes = cg.physical().node_count();
        let mut runs = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut s = Scenario::new(cg.clone(), p.clone());
            s.seed(2).sample_interval(None);
            if shards == 1 {
                s.scheduler(SchedulerKind::Global);
            } else {
                s.scheduler(SchedulerKind::Sharded(Partition::by_blocks(
                    nodes,
                    nodes / shards,
                )));
            }
            runs.push(s.run_for(5.0 * p.t_round).stats);
        }
        assert!(runs[0].events > 0);
        // Identical work under every split — the bench compares queue
        // mechanics, not diverging executions.
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn measure_skews_produces_finite_values() {
        let p = default_params(1);
        let cg = ClusterGraph::new(line(2), 4, 1);
        let mut s = Scenario::new(cg.clone(), p.clone());
        s.seed(1);
        let run = s.run_for(20.0 * p.t_round);
        let report = measure_skews(&run, &cg, warmup(&p));
        assert!(report.intra.is_finite() && report.intra >= 0.0);
        assert!(report.local.is_finite());
        assert!(report.global >= 0.0);
    }
}
