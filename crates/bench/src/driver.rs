//! The `xp` experiment driver: one code path for every experiment.
//!
//! An experiment is a text file under `experiments/` (see
//! [`crate::spec::SpecFile`]). Three entry points share this module:
//!
//! * `xp run <file>` — [`run_file`];
//! * `xp sweep <file> key=v1,v2 …` — [`sweep_file`] (add `--parallel`
//!   and the cells run as `xp run-cell` child processes through
//!   [`ftgcs_serve`]'s bounded job pool, with a content-addressed
//!   result cache — stdout stays byte-identical to the in-process
//!   sweep);
//! * the legacy `{a,f,t}*` binaries, each of which `include_str!`s its
//!   checked-in spec and calls [`run_text`] — so the legacy CSVs and
//!   the `xp`-driven ones are byte-identical by construction.
//!
//! [`run_cell_cmd`] is the child half of the multi-process executor and
//! [`serve_cmd`] is the `xp serve` results service; both reuse the same
//! spec → run machinery, so a cell computed by a child process, by the
//! service, or in-process is byte-identical (the determinism contract:
//! a run is a pure function of its canonical spec text).
//!
//! A spec that names an `analysis` dispatches into [`crate::exp`]; a
//! spec without one is a **streaming run**: the scenario is executed
//! through bounded-memory observers ([`CsvSampleWriter`],
//! [`SkewStream`], [`RowCounter`] fanned out via
//! [`Fanout`](ftgcs_sim::observe::Fanout)) — O(nodes) memory no matter
//! how long the horizon, no full-`Trace` materialization.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::FaultMask;
use ftgcs_metrics::stream::{CsvSampleWriter, RowCounter, SkewStream};
use ftgcs_metrics::table::Table;
use ftgcs_serve::{run_indexed, CellKey, CellRequest, CellRunner, ResultStore, ServeConfig};
use ftgcs_sim::observe::{Fanout, Observer};
use ftgcs_sim::trace::ClockSample;
use ftgcs_sim::Stopwatch;

use crate::spec::SpecFile;
use crate::{emit_table, exp, results_dir};

/// Flags for one `xp run` invocation. Both are pure side channels: the
/// trace, the CSVs, and everything written to **stdout** are
/// byte-identical whether they are set or not.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// `--telemetry <out.json>`: enable the engine's telemetry counters
    /// and write the machine-readable [`ftgcs_sim::TelemetryReport`]
    /// JSON here after the run.
    pub telemetry: Option<PathBuf>,
    /// `--progress`: emit a once-a-second heartbeat to **stderr**
    /// (simulated time reached, samples/rows streamed, wall seconds).
    pub progress: bool,
}

/// Loads and runs one experiment file.
///
/// # Errors
///
/// Returns a human-readable message if the file cannot be read, parsed,
/// or executed.
pub fn run_file(path: &Path) -> Result<(), String> {
    run_file_with(path, &RunOptions::default())
}

/// [`run_file`] with explicit [`RunOptions`].
///
/// # Errors
///
/// Returns a human-readable message if the file cannot be read, parsed,
/// or executed.
pub fn run_file_with(path: &Path, opts: &RunOptions) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    run_text_with(&path.display().to_string(), &text, opts)
}

/// Runs one experiment from its text form. `label` names the source in
/// diagnostics (a path for `xp`, the spec name for wrapper binaries).
///
/// # Errors
///
/// Returns a human-readable message on parse or execution failure.
pub fn run_text(label: &str, text: &str) -> Result<(), String> {
    run_text_with(label, text, &RunOptions::default())
}

/// [`run_text`] with explicit [`RunOptions`].
///
/// # Errors
///
/// Returns a human-readable message on parse or execution failure, and
/// if telemetry/progress flags are passed for an `analysis` spec (those
/// run many scenarios internally; the flags drive the streaming
/// runner).
pub fn run_text_with(label: &str, text: &str, opts: &RunOptions) -> Result<(), String> {
    let file = SpecFile::parse(text).map_err(|e| format!("{label}: {e}"))?;
    match &file.analysis {
        Some(name) => {
            if opts.telemetry.is_some() || opts.progress {
                return Err(format!(
                    "{label}: --telemetry/--progress drive the streaming runner; this spec \
                     names an `analysis` (it runs its own grid of scenarios internally)"
                ));
            }
            let analysis = exp::find(name).ok_or_else(|| {
                format!(
                    "{label}: unknown analysis {name:?} (known: {})",
                    exp::ANALYSES
                        .iter()
                        .map(|&(n, _)| n)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            analysis(&file);
            Ok(())
        }
        None => streaming_run(label, &file, opts),
    }
}

/// The `--progress` heartbeat: wall-clock cadence, streamed to
/// **stderr** only, so stdout and every results file stay
/// byte-identical with or without the flag.
struct Progress {
    sw: Stopwatch,
    next_at: f64,
    horizon: f64,
    samples: u64,
    rows: u64,
}

impl Progress {
    fn new(horizon: f64) -> Self {
        Progress {
            sw: Stopwatch::start(),
            next_at: 1.0,
            horizon,
            samples: 0,
            rows: 0,
        }
    }
}

impl Observer for Progress {
    fn on_sample(&mut self, sample: &ClockSample) {
        self.samples += 1;
        let elapsed = self.sw.elapsed_secs();
        if elapsed >= self.next_at {
            eprintln!(
                "[xp] t={:.3}/{:.3} s sim | {} samples, {} rows | {elapsed:.1} s wall",
                sample.t.as_secs(),
                self.horizon,
                self.samples,
                self.rows,
            );
            self.next_at = elapsed + 1.0;
        }
    }

    fn on_row(&mut self, _row: &ftgcs_sim::trace::Row) {
        self.rows += 1;
    }

    fn on_finish(&mut self, stats: &ftgcs_sim::engine::SimStats) {
        let elapsed = self.sw.elapsed_secs();
        let rate = if elapsed > 0.0 {
            stats.events as f64 / elapsed
        } else {
            0.0
        };
        eprintln!(
            "[xp] done: {} events in {elapsed:.2} s wall ({rate:.0} events/s)",
            stats.events
        );
    }
}

/// The default experiment: a single streaming run of the spec's
/// scenario. Samples go (decimated by `csv_stride`) to
/// `results/<name>_samples.csv`; the skew summary and row counts go to
/// stdout and `results/<name>_summary.csv`. Memory stays O(nodes).
fn streaming_run(label: &str, file: &SpecFile, opts: &RunOptions) -> Result<(), String> {
    let spec = &file.scenario;
    let params = spec.params().map_err(|e| format!("{label}: {e}"))?;
    let mut scenario = Scenario::from_spec(spec).map_err(|e| format!("{label}: {e}"))?;
    if opts.telemetry.is_some() {
        scenario.telemetry(true);
    }
    let horizon = spec.duration.resolve(&params);
    let nodes = scenario.cluster_graph().physical().node_count();
    let mask = FaultMask::from_nodes(nodes, &scenario.faulty_nodes());
    let warm = 5.0 * params.t_round;

    println!(
        "xp run {}: {} nodes, horizon {horizon:.3} s, stride {} (streaming, O(nodes) memory)",
        spec.name, nodes, file.csv_stride
    );

    let samples_path = results_dir().join(format!("{}_samples.csv", spec.name));
    let mut csv = CsvSampleWriter::create(&samples_path, file.csv_stride)
        .map_err(|e| format!("{}: {e}", samples_path.display()))?;
    let mut skew = SkewStream::new(mask).with_warmup(warm);
    let mut rows = RowCounter::new();
    let mut progress = opts.progress.then(|| Progress::new(horizon));
    let (stats, telemetry) = {
        let mut sinks: Vec<&mut dyn Observer> = vec![&mut csv, &mut skew, &mut rows];
        if let Some(p) = progress.as_mut() {
            sinks.push(p);
        }
        let mut fan = Fanout::new(sinks);
        scenario.run_streaming_telemetry(horizon, &mut fan)
    };
    csv.finish()
        .map_err(|e| format!("{}: {e}", samples_path.display()))?;
    if let Some(report_path) = &opts.telemetry {
        let mut json = telemetry.to_json();
        json.push('\n');
        std::fs::write(report_path, json).map_err(|e| format!("{}: {e}", report_path.display()))?;
        // Stderr, like the heartbeat: stdout stays byte-identical with
        // and without the flag.
        eprintln!("[telemetry report written to {}]", report_path.display());
    }

    let mut summary = Table::new(&["quantity", "value"]);
    summary.row(&["nodes".into(), nodes.to_string()]);
    summary.row(&["horizon (s)".into(), format!("{horizon}")]);
    summary.row(&["warmup (s)".into(), format!("{warm}")]);
    summary.row(&["events".into(), stats.events.to_string()]);
    summary.row(&["messages".into(), stats.messages.to_string()]);
    summary.row(&["samples (post-warmup)".into(), skew.count().to_string()]);
    summary.row(&["samples written".into(), csv.written().to_string()]);
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".into(), |x| format!("{x:.3e}"));
    summary.row(&["global skew max (s)".into(), fmt_opt(skew.max())]);
    summary.row(&["global skew max at (s)".into(), fmt_opt(skew.max_at())]);
    summary.row(&["global skew mean (s)".into(), fmt_opt(skew.mean())]);
    summary.row(&["global skew p50 (s)".into(), fmt_opt(skew.quantile(0.5))]);
    summary.row(&["global skew p99 (s)".into(), fmt_opt(skew.quantile(0.99))]);
    for (kind, count) in rows.iter() {
        summary.row(&[format!("rows: {kind}"), count.to_string()]);
    }
    emit_table(&format!("{}_summary", spec.name), &summary);
    println!("[samples written to {}]", samples_path.display());
    Ok(())
}

/// One axis of a sweep: a spec key and the values to substitute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    /// Spec key (`seed`, `f`, `duration`, …).
    pub key: String,
    /// Values, each substituted verbatim as `key value`.
    pub values: Vec<String>,
}

impl SweepAxis {
    /// Parses a command-line axis `key=v1,v2,…`.
    ///
    /// # Errors
    ///
    /// Returns a message if the argument is not of that shape.
    pub fn parse(arg: &str) -> Result<Self, String> {
        let (key, vals) = arg
            .split_once('=')
            .ok_or_else(|| format!("sweep axis {arg:?} is not key=v1,v2,…"))?;
        let values: Vec<String> = vals
            .split(',')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect();
        if key.is_empty() || values.is_empty() {
            return Err(format!(
                "sweep axis {arg:?} needs a key and at least one value"
            ));
        }
        Ok(SweepAxis {
            key: key.to_string(),
            values,
        })
    }
}

/// How a sweep executes its cells.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// `--parallel`: run cells as `xp run-cell --row` child processes
    /// through the bounded job pool, with the content-addressed result
    /// cache consulted first. Stdout is byte-identical to the
    /// sequential in-process sweep.
    pub parallel: bool,
    /// `--jobs N`: concurrent cell processes (parallel mode only).
    pub jobs: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            parallel: false,
            jobs: 2,
        }
    }
}

/// One expanded sweep cell: the base text with the axis substitutions
/// appended, already parsed.
struct SweepCell {
    name: String,
    values: Vec<String>,
    file: SpecFile,
}

/// What one measured cell contributes: the six table fields plus the
/// raw numbers behind the stderr progress lines.
struct CellMeasurement {
    fields: [String; 6],
    events: u64,
    wall: f64,
}

/// Measures one sweep cell in-process: the cell's scenario streamed
/// through a [`SkewStream`] (no per-cell samples CSV — a sweep's
/// product is its summary). Shared verbatim by the sequential sweep
/// and the `run-cell --row` child, which is what makes the parallel
/// sweep's merged output byte-identical.
fn measure_cell(file: &SpecFile) -> Result<CellMeasurement, String> {
    let spec = &file.scenario;
    let params = spec.params().map_err(|e| e.to_string())?;
    let scenario = Scenario::from_spec(spec).map_err(|e| e.to_string())?;
    let nodes = scenario.cluster_graph().physical().node_count();
    let mask = FaultMask::from_nodes(nodes, &scenario.faulty_nodes());
    let mut skew = SkewStream::new(mask).with_warmup(5.0 * params.t_round);
    let sw = Stopwatch::start();
    let stats = scenario.run_streaming(spec.duration.resolve(&params), &mut skew);
    let wall = sw.elapsed_secs();
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.3e}"));
    Ok(CellMeasurement {
        fields: [
            nodes.to_string(),
            stats.events.to_string(),
            stats.messages.to_string(),
            fmt_opt(skew.max()),
            fmt_opt(skew.mean()),
            fmt_opt(skew.quantile(0.99)),
        ],
        events: stats.events,
        wall,
    })
}

/// The per-cell stderr progress line (stderr only, so stdout and the
/// sweep CSV stay byte-identical across modes and with older builds).
fn cell_stderr(k: usize, cells: usize, name: &str, wall: f64, events: u64, cached: bool) {
    let rate = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    let suffix = if cached { " (cached)" } else { "" };
    eprintln!("[xp sweep {k}/{cells}] {name}: {wall:.2} s wall, {rate:.0} events/s{suffix}");
}

/// Serializes one measured cell as the `run-cell --row` wire line:
/// tab-separated wall (full-precision), events, then the six table
/// fields. [`parse_row_tsv`] is the inverse.
fn row_tsv(m: &CellMeasurement) -> String {
    let mut line = format!("{}\t{}", m.wall, m.events);
    for field in &m.fields {
        line.push('\t');
        line.push_str(field);
    }
    line.push('\n');
    line
}

/// Parses a [`row_tsv`] line back into `(wall, events, fields)`.
fn parse_row_tsv(line: &str) -> Result<(f64, u64, Vec<String>), String> {
    let parts: Vec<&str> = line.trim_end_matches('\n').split('\t').collect();
    if parts.len() != 8 {
        return Err(format!(
            "malformed row from run-cell child ({} of 8 fields)",
            parts.len()
        ));
    }
    let wall = parts[0]
        .parse::<f64>()
        .map_err(|e| format!("bad wall clock {:?}: {e}", parts[0]))?;
    let events = parts[1]
        .parse::<u64>()
        .map_err(|e| format!("bad event count {:?}: {e}", parts[1]))?;
    Ok((
        wall,
        events,
        parts[2..].iter().map(ToString::to_string).collect(),
    ))
}

/// Runs the cartesian product of the axes over a base spec file.
///
/// Each cell re-parses the base text with one `key value` line appended
/// per axis (spec scalar keys are last-wins, so appending overrides),
/// executes the cell's scenario through a [`SkewStream`] (no per-cell
/// samples CSV — a sweep's product is its summary), and writes one row
/// per cell to `results/<name>_sweep.csv`.
///
/// # Errors
///
/// Returns a human-readable message on the first cell that fails.
pub fn sweep_file(path: &Path, axes: &[SweepAxis]) -> Result<(), String> {
    sweep_file_with(path, axes, &SweepOptions::default())
}

/// [`sweep_file`] with explicit [`SweepOptions`]. With
/// `opts.parallel`, cells run as `xp run-cell --row` children over the
/// bounded job pool: every cell is expanded and canonicalized up
/// front, results are delivered (and printed) in cell order, crashed
/// children are retried (byte-identical by determinism), and finished
/// rows are kept in the content-addressed cache so a repeated sweep
/// spawns nothing.
///
/// # Errors
///
/// Returns a human-readable message on the first (by cell index)
/// failing cell; parallel mode still runs every cell before reporting.
pub fn sweep_file_with(path: &Path, axes: &[SweepAxis], opts: &SweepOptions) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let base = SpecFile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if base.analysis.is_some() {
        return Err(format!(
            "{}: sweeps drive the streaming runner; this spec names an `analysis` \
             (its grid is analysis-internal — run it with `xp run`)",
            path.display()
        ));
    }
    if axes.is_empty() {
        return Err("sweep needs at least one key=v1,v2,… axis".into());
    }

    let mut headers: Vec<&str> = axes.iter().map(|a| a.key.as_str()).collect();
    headers.extend_from_slice(&[
        "nodes",
        "events",
        "messages",
        "skew max (s)",
        "skew mean (s)",
        "skew p99 (s)",
    ]);
    let mut table = Table::new(&headers);

    let cells: usize = axes.iter().map(|a| a.values.len()).product();
    println!(
        "xp sweep {}: {} cell(s) over {} axis(es)\n",
        path.display(),
        cells,
        axes.len()
    );

    // Expand and parse every cell up front (odometer over the axes), so
    // both modes validate identically before any cell runs.
    let mut expanded = Vec::with_capacity(cells);
    let mut index = vec![0usize; axes.len()];
    for _ in 0..cells {
        let mut cell_text = text.clone();
        let mut values = Vec::with_capacity(axes.len());
        for (a, axis) in axes.iter().enumerate() {
            let value = &axis.values[index[a]];
            let _ = write!(cell_text, "\n{} {}", axis.key, value);
            values.push(value.clone());
        }
        let name = values.join("/");
        let file = SpecFile::parse(&cell_text).map_err(|e| format!("cell {name}: {e}"))?;
        expanded.push(SweepCell { name, values, file });
        for a in (0..axes.len()).rev() {
            index[a] += 1;
            if index[a] < axes[a].values.len() {
                break;
            }
            index[a] = 0;
        }
    }

    let total_sw = Stopwatch::start();
    let mut total_events: u64 = 0;
    if opts.parallel {
        let runner = CellRunner {
            binary: std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
            retries: 2,
        };
        let store = ResultStore::from_env();
        let mut first_err: Option<String> = None;
        run_indexed(
            cells,
            opts.jobs,
            |k| {
                let cell = &expanded[k];
                let key = cell_key(&cell.file, CellKind::SweepRow);
                if store.is_done(&key) {
                    if let Ok(line) = store.read(&key, "row.tsv") {
                        if let Ok(line) = String::from_utf8(line) {
                            return Ok((line, true));
                        }
                    }
                }
                let outcome = runner
                    .run_cell(&["--row"], &cell.file.print(), None)
                    .map_err(|e| format!("cell {}: {e}", cell.name))?;
                if let Ok(staging) = store.begin(&key) {
                    if std::fs::write(staging.dir().join("row.tsv"), &outcome.stdout).is_ok() {
                        let _ = staging.publish();
                    } else {
                        staging.discard();
                    }
                }
                Ok((outcome.stdout, false))
            },
            |k, result| {
                // Delivered in cell order on this thread, which is what
                // keeps stdout byte-identical to the sequential sweep.
                if first_err.is_some() {
                    return;
                }
                let cell = &expanded[k];
                match result {
                    Ok((line, cached)) => match parse_row_tsv(line) {
                        Ok((wall, events, fields)) => {
                            cell_stderr(k + 1, cells, &cell.name, wall, events, *cached);
                            total_events += events;
                            let mut row = cell.values.clone();
                            row.extend(fields);
                            table.row(&row);
                            println!("[{}/{cells}] done", k + 1);
                        }
                        Err(e) => first_err = Some(format!("cell {}: {e}", cell.name)),
                    },
                    Err(e) => first_err = Some(e.clone()),
                }
            },
        );
        if let Some(e) = first_err {
            return Err(e);
        }
    } else {
        for (k, cell) in expanded.iter().enumerate() {
            let m = measure_cell(&cell.file).map_err(|e| format!("cell {}: {e}", cell.name))?;
            cell_stderr(k + 1, cells, &cell.name, m.wall, m.events, false);
            total_events += m.events;
            let mut row = cell.values.clone();
            row.extend(m.fields);
            table.row(&row);
            println!("[{}/{cells}] done", k + 1);
        }
    }
    println!();
    emit_table(&format!("{}_sweep", base.scenario.name), &table);
    let total_wall = total_sw.elapsed_secs();
    let rate = if total_wall > 0.0 {
        total_events as f64 / total_wall
    } else {
        0.0
    };
    eprintln!("[xp sweep] {cells} cell(s) in {total_wall:.2} s wall, {rate:.0} events/s aggregate");
    Ok(())
}

/// What a cached cell produced, folded into its content hash so a
/// sweep row and a full run of the same spec never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// One sweep-row measurement (`run-cell --row` → `row.tsv`).
    SweepRow,
    /// A full run (`run-cell --dir` → stdout, CSVs, telemetry).
    Run,
}

/// The content-addressed cache key of one cell: a format-version tag,
/// the output kind, and the spec's canonical printing. Formatting-only
/// spec edits leave the key unchanged; any semantic change moves it.
#[must_use]
pub fn cell_key(file: &SpecFile, kind: CellKind) -> CellKey {
    let tag = match kind {
        CellKind::SweepRow => "row",
        CellKind::Run => "run",
    };
    CellKey::from_parts(&["ftgcs-cell-v1", tag, &file.print()])
}

/// Test hook: when `FTGCS_RUN_CELL_CRASH_ONCE` names a path that does
/// not exist yet, the child creates it, emits some partial stdout, and
/// aborts — a deterministic stand-in for an OOM-killed or crashed cell.
/// The retry then finds the marker and runs normally, letting tests
/// pin that a crashed cell is re-run and that its partial output never
/// reaches the merged results.
fn crash_once_hook() {
    let Ok(marker) = std::env::var("FTGCS_RUN_CELL_CRASH_ONCE") else {
        return;
    };
    if marker.is_empty() || Path::new(&marker).exists() {
        return;
    }
    if std::fs::write(&marker, b"crashed\n").is_ok() {
        println!("partial output from a crashing cell");
        std::process::abort();
    }
}

/// Implements `xp run-cell`, the child half of the multi-process
/// executor: reads one spec text from **stdin** and either measures a
/// sweep row (`--row`, one [`row_tsv`] line on stdout) or performs a
/// full run (optionally `--dir <staging>`: chdir there first, so every
/// relative artifact — `results/*.csv`, `telemetry.json` — lands in
/// the staging directory the parent will publish).
///
/// # Errors
///
/// Returns a human-readable message on parse or execution failure;
/// `--row` additionally rejects `analysis` specs (sweeps stream).
pub fn run_cell_cmd(row: bool, dir: Option<&Path>) -> Result<(), String> {
    let mut text = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
        .map_err(|e| format!("reading spec from stdin: {e}"))?;
    crash_once_hook();
    let file = SpecFile::parse(&text).map_err(|e| format!("run-cell: {e}"))?;
    if row {
        if file.analysis.is_some() {
            return Err("run-cell --row: sweep cells cannot name an `analysis`".into());
        }
        let m = measure_cell(&file).map_err(|e| format!("run-cell: {e}"))?;
        print!("{}", row_tsv(&m));
        return Ok(());
    }
    if let Some(dir) = dir {
        std::env::set_current_dir(dir).map_err(|e| format!("chdir {}: {e}", dir.display()))?;
    }
    let opts = if file.analysis.is_some() {
        // Analyses drive their own grids; telemetry/progress flags are
        // streaming-runner-only (run_text_with rejects the combination).
        RunOptions::default()
    } else {
        RunOptions {
            telemetry: Some(PathBuf::from("telemetry.json")),
            progress: true,
        }
    };
    run_text_with("run-cell", &text, &opts)
}

/// Implements `xp serve`: the results service, parameterized with the
/// spec-format bridge ([`SpecFile::parse`] → canonical print → cache
/// key) that `ftgcs_serve` itself deliberately knows nothing about.
///
/// # Errors
///
/// Returns a message if the listener cannot bind.
pub fn serve_cmd(
    addr: &str,
    jobs: usize,
    cache: Option<&Path>,
    queue_capacity: usize,
) -> Result<(), String> {
    let store = match cache {
        Some(dir) => ResultStore::new(dir),
        None => ResultStore::from_env(),
    };
    let runner = CellRunner {
        binary: std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
        retries: 2,
    };
    let canonicalize = |text: &str| -> Result<CellRequest, String> {
        let file = SpecFile::parse(text).map_err(|e| format!("spec: {e}"))?;
        Ok(CellRequest {
            key: cell_key(&file, CellKind::Run),
            name: file.scenario.name.clone(),
            canonical: file.print(),
            analysis: file.analysis.clone(),
        })
    };
    ftgcs_serve::serve(
        ServeConfig {
            addr: addr.to_string(),
            jobs,
            queue_capacity,
            store,
            runner,
        },
        &canonicalize,
    )
}

/// Validates and lists every `*.spec` under `dir`, sorted by file name.
///
/// # Errors
///
/// Returns a message naming every file that fails to parse (so CI can
/// gate on "all checked-in specs parse").
pub fn list_dir(dir: &Path) -> Result<(), String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "spec"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no .spec files found", dir.display()));
    }
    let mut errors = Vec::new();
    println!("{:<42} {:<28} scenario", "file", "analysis");
    for path in &paths {
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| SpecFile::parse(&t).map_err(|e| e.to_string()));
        match parsed {
            Ok(file) => {
                let analysis = file.analysis.as_deref().unwrap_or("(streaming run)");
                // Re-print canonically: one glance shows the scenario.
                let scenario = format!(
                    "f={} k={} seed={}",
                    file.scenario.f, file.scenario.cluster_size, file.scenario.seed
                );
                println!(
                    "{:<42} {:<28} {}",
                    path.file_name().unwrap_or_default().to_string_lossy(),
                    analysis,
                    scenario
                );
            }
            Err(e) => {
                println!(
                    "{:<42} PARSE ERROR: {e}",
                    path.file_name().unwrap_or_default().to_string_lossy()
                );
                errors.push(format!("{}: {e}", path.display()));
            }
        }
    }
    if errors.is_empty() {
        println!("\n{} spec file(s), all parse.", paths.len());
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

/// Keeps `Observer` in scope for the module docs' claim that the
/// streaming path is observer-driven (and asserts the trait stays
/// object-safe, which `Fanout` and `run_streaming` rely on).
#[allow(dead_code)] // compile-time object-safety assertion, deliberately never called
fn _observer_is_object_safe(obs: &mut dyn Observer) {
    let _ = obs;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_axis_parses() {
        let axis = SweepAxis::parse("seed=1,2,3").unwrap();
        assert_eq!(axis.key, "seed");
        assert_eq!(axis.values, vec!["1", "2", "3"]);
        let spaced = SweepAxis::parse("duration=10 rounds,20 rounds").unwrap();
        assert_eq!(spaced.values, vec!["10 rounds", "20 rounds"]);
        assert!(SweepAxis::parse("nope").is_err());
        assert!(SweepAxis::parse("k=").is_err());
    }

    #[test]
    fn run_text_rejects_unknown_analysis() {
        let err = run_text("x", "name x\ntopology line 2\nanalysis bogus\n").unwrap_err();
        assert!(err.contains("unknown analysis"), "{err}");
    }

    #[test]
    fn run_text_rejects_bad_specs() {
        assert!(run_text("x", "topology line 2\n").is_err());
    }
}
