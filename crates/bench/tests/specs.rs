//! Gate on the checked-in experiment files: every `experiments/*.spec`
//! must parse, name a known analysis (or be a streaming run), build a
//! runnable scenario, and round-trip through the canonical printer.
//! A streaming spec is also executed end-to-end at the spec level,
//! pinning the observer path byte-identical to the materialized trace.

use std::path::{Path, PathBuf};

use ftgcs::runner::Scenario;
use ftgcs::spec::ScenarioSpec;
use ftgcs_bench::driver::{cell_key, CellKind};
use ftgcs_bench::exp;
use ftgcs_bench::spec::SpecFile;
use ftgcs_metrics::skew::{global_skew_series, FaultMask};
use ftgcs_metrics::stream::SkewStream;
use ftgcs_sim::observe::Observer;
use ftgcs_sim::trace::Trace;

fn experiments_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments")
}

fn checked_in_specs() -> Vec<(PathBuf, SpecFile)> {
    let mut specs: Vec<(PathBuf, SpecFile)> = std::fs::read_dir(experiments_dir())
        .expect("experiments/ must exist at the repo root")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "spec"))
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable spec");
            let file = SpecFile::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p, file)
        })
        .collect();
    specs.sort_by(|a, b| a.0.cmp(&b.0));
    specs
}

#[test]
fn every_checked_in_spec_parses_builds_and_round_trips() {
    let specs = checked_in_specs();
    // All fifteen analyses plus the streaming smoke + long-demo specs.
    assert!(
        specs.len() >= 17,
        "expected >= 17 checked-in specs, found {}",
        specs.len()
    );
    for (path, file) in &specs {
        if let Some(name) = &file.analysis {
            assert!(
                exp::find(name).is_some(),
                "{}: names unknown analysis {name:?}",
                path.display()
            );
        }
        // Canonical print → parse is the identity.
        let printed = file.scenario.print();
        assert_eq!(
            ScenarioSpec::parse(&printed).expect("canonical print parses"),
            file.scenario,
            "{}: print/parse round trip",
            path.display()
        );
        // The scenario actually assembles, and its to_spec re-canonicalizes
        // into something that parses and rebuilds.
        let scenario = Scenario::from_spec(&file.scenario)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let back = scenario
            .to_spec()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        Scenario::from_spec(&back).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

/// Reformats a spec text without changing its meaning: indentation,
/// trailing whitespace, blank lines, and comments.
fn reformat(text: &str) -> String {
    let mut out = String::from("# reformatted copy — must hash identically\n\n");
    for line in text.lines() {
        out.push_str("   ");
        out.push_str(line);
        out.push_str("   # trailing comment\n\n");
    }
    out
}

#[test]
fn cache_keys_are_canonical_and_sensitive() {
    // Invariance: the cache key is a function of the spec's *meaning*.
    // Reformatting (whitespace, comments, blank lines) and canonical
    // re-printing must not move any checked-in spec's key.
    for (path, file) in checked_in_specs() {
        let key = cell_key(&file, CellKind::Run);
        let reprinted = SpecFile::parse(&file.print())
            .unwrap_or_else(|e| panic!("{}: canonical print must parse: {e}", path.display()));
        assert_eq!(
            cell_key(&reprinted, CellKind::Run),
            key,
            "{}: canonical reprint moved the cache key",
            path.display()
        );
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let mangled = SpecFile::parse(&reformat(&text))
            .unwrap_or_else(|e| panic!("{}: reformatted copy must parse: {e}", path.display()));
        assert_eq!(
            cell_key(&mangled, CellKind::Run),
            key,
            "{}: whitespace/comment reformatting moved the cache key",
            path.display()
        );
        // A sweep row and a full run of the same spec never share an
        // entry (they cache different artifacts).
        assert_ne!(
            cell_key(&file, CellKind::SweepRow),
            key,
            "{}",
            path.display()
        );
    }

    // The smoke spec uses only scalar (last-wins) keys, each once, so
    // even reordering its lines is meaning-preserving.
    let smoke = std::fs::read_to_string(experiments_dir().join("smoke.spec")).expect("smoke.spec");
    let reversed: String = smoke.lines().rev().fold(String::new(), |mut acc, l| {
        acc.push_str(l);
        acc.push('\n');
        acc
    });
    let base = SpecFile::parse(&smoke).expect("smoke parses");
    let reordered = SpecFile::parse(&reversed).expect("reversed smoke parses");
    assert_eq!(
        cell_key(&reordered, CellKind::Run),
        cell_key(&base, CellKind::Run),
        "scalar-key line order moved the cache key"
    );

    // Sensitivity: any semantic change must move the key.
    let key = cell_key(&base, CellKind::Run);
    let variants = [
        format!("{smoke}\nseed {}\n", base.scenario.seed + 1),
        format!("{smoke}\ncluster_size {}\n", base.scenario.cluster_size + 3),
        format!("{smoke}\nduration 9 rounds\n"),
        format!("{smoke}\ncsv_stride 7\n"),
        format!("{smoke}\nanalysis t2_reliability\n"),
    ];
    for variant in &variants {
        let changed = SpecFile::parse(variant).expect("variant parses");
        assert_ne!(
            cell_key(&changed, CellKind::Run),
            key,
            "semantic change did not move the cache key:\n{variant}"
        );
    }
}

#[test]
fn every_legacy_binary_has_its_spec_checked_in() {
    // The wrapper binaries include_str! these paths at compile time, so
    // a rename that misses one side fails the build — this test instead
    // guards the inverse: every analysis in the registry has a spec
    // file driving it.
    let specs = checked_in_specs();
    for &(name, _) in exp::ANALYSES {
        assert!(
            specs
                .iter()
                .any(|(_, f)| f.analysis.as_deref() == Some(name)),
            "analysis {name} has no checked-in spec under experiments/"
        );
    }
}

#[test]
fn smoke_spec_streams_byte_identically_to_the_materialized_run() {
    let (path, file) = checked_in_specs()
        .into_iter()
        .find(|(_, f)| f.scenario.name == "smoke")
        .expect("smoke.spec must stay checked in (CI smoke-runs it)");
    assert!(
        file.analysis.is_none(),
        "{}: the smoke spec must be a streaming run",
        path.display()
    );
    let spec = &file.scenario;
    let params = spec.params().expect("feasible");
    let scenario = Scenario::from_spec(spec).expect("buildable");
    let horizon = spec.duration.resolve(&params);

    // Materialized reference.
    let reference = scenario.run_for(horizon);

    // Streaming twin: a collect-everything Trace plus the O(nodes)
    // skew accumulator, both fed by one run.
    let nodes = scenario.cluster_graph().physical().node_count();
    let mask = FaultMask::from_nodes(nodes, &reference.faulty);
    let mut collected = Trace::new();
    let mut skew = SkewStream::new(mask.clone());
    {
        let mut fan = ftgcs_sim::observe::Fanout::new(vec![&mut collected, &mut skew]);
        scenario.run_streaming(horizon, &mut fan);
    }
    assert_eq!(
        collected.to_bytes(),
        reference.trace.to_bytes(),
        "streamed bytes diverged from the materialized trace"
    );
    assert_eq!(
        skew.max(),
        global_skew_series(&reference.trace, &mask).max(),
        "streaming skew accumulator disagrees with the materialized series"
    );
    assert!(skew.count() > 0, "smoke horizon too short to sample");
    // on_finish is idempotent bookkeeping for these observers.
    skew.on_finish(&reference.stats);
}
