//! End-to-end tests of the distributed sweep executor and the results
//! service, driving the real `xp` binary:
//!
//! * `xp sweep --parallel` must produce **byte-identical** stdout and
//!   sweep CSV to the sequential in-process sweep;
//! * a `run-cell` child that crashes mid-cell must be retried, with
//!   the merged output still byte-identical (retries are safe because
//!   a cell is a pure function of its canonical spec text);
//! * `xp serve` must run a submitted spec to completion, serve back
//!   CSVs byte-identical to an in-process `xp run`, and answer a
//!   repeated submission entirely from the content-addressed cache —
//!   zero new cell processes.

use std::io::{BufRead as _, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn xp() -> &'static str {
    env!("CARGO_BIN_EXE_xp")
}

fn spec_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../experiments")
        .join(name)
}

/// A fresh scratch directory, unique per test and per process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftgcs_service_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn sweep(cwd: &Path, cache: &Path, extra: &[&str]) -> std::process::Output {
    std::fs::create_dir_all(cwd).expect("sweep cwd");
    Command::new(xp())
        .current_dir(cwd)
        .env("FTGCS_CACHE_DIR", cache)
        .arg("sweep")
        .arg(spec_path("smoke.spec"))
        .arg("seed=1,2,3")
        .args(extra)
        .output()
        .expect("xp sweep")
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let dir = scratch("par_eq");
    let seq = sweep(&dir.join("seq"), &dir.join("seq_cache"), &[]);
    assert!(
        seq.status.success(),
        "{}",
        String::from_utf8_lossy(&seq.stderr)
    );
    let par = sweep(
        &dir.join("par"),
        &dir.join("cache"),
        &["--parallel", "--jobs", "2"],
    );
    assert!(
        par.status.success(),
        "{}",
        String::from_utf8_lossy(&par.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&seq.stdout),
        String::from_utf8_lossy(&par.stdout),
        "parallel sweep stdout diverged from sequential"
    );
    assert_eq!(
        std::fs::read(dir.join("seq/results/smoke_sweep.csv")).expect("sequential sweep CSV"),
        std::fs::read(dir.join("par/results/smoke_sweep.csv")).expect("parallel sweep CSV"),
        "merged sweep CSV diverged"
    );
    // The stderr progress channel: per-cell [k/N] indices plus the
    // final wall-clock / aggregate throughput summary, in both modes.
    for err in [
        String::from_utf8_lossy(&seq.stderr),
        String::from_utf8_lossy(&par.stderr),
    ] {
        assert!(err.contains("[xp sweep 1/3]"), "{err}");
        assert!(err.contains("[xp sweep 3/3]"), "{err}");
        assert!(err.contains("events/s aggregate"), "{err}");
    }

    // A repeated parallel sweep is served from the cache ((cached)
    // markers on stderr) and still byte-identical on stdout.
    let again = sweep(
        &dir.join("par2"),
        &dir.join("cache"),
        &["--parallel", "--jobs", "2"],
    );
    assert!(again.status.success());
    assert_eq!(seq.stdout, again.stdout);
    assert!(
        String::from_utf8_lossy(&again.stderr).contains("(cached)"),
        "repeat sweep did not hit the cache: {}",
        String::from_utf8_lossy(&again.stderr)
    );
}

#[test]
fn crashed_cell_is_retried_with_identical_output() {
    let dir = scratch("crash");
    let seq = sweep(&dir.join("seq"), &dir.join("seq_cache"), &[]);
    assert!(seq.status.success());

    let marker = dir.join("crash_once_marker");
    std::fs::create_dir_all(dir.join("par")).expect("par cwd");
    let par = Command::new(xp())
        .current_dir(dir.join("par"))
        .env("FTGCS_CACHE_DIR", dir.join("cache"))
        .env("FTGCS_RUN_CELL_CRASH_ONCE", &marker)
        .arg("sweep")
        .arg(spec_path("smoke.spec"))
        .arg("seed=1,2,3")
        .args(["--parallel", "--jobs", "2"])
        .output()
        .expect("xp sweep");
    assert!(
        par.status.success(),
        "{}",
        String::from_utf8_lossy(&par.stderr)
    );
    assert!(
        marker.is_file(),
        "no run-cell child actually took the crash path"
    );
    assert_eq!(
        String::from_utf8_lossy(&seq.stdout),
        String::from_utf8_lossy(&par.stdout),
        "crash + retry changed the merged sweep stdout"
    );
    assert_eq!(
        std::fs::read(dir.join("seq/results/smoke_sweep.csv")).expect("sequential sweep CSV"),
        std::fs::read(dir.join("par/results/smoke_sweep.csv")).expect("parallel sweep CSV"),
        "crash + retry changed the merged sweep CSV"
    );
}

/// Kills the serve child if a test assertion fires before shutdown.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// One HTTP exchange: `request` is `"METHOD /path"`. Returns the
/// status code and the body.
fn http(addr: &str, request: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to xp serve");
    let (method, path) = request.split_once(' ').expect("request is METHOD /path");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body).expect("send body");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    let split = reply
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("reply has a header/body split");
    let head = std::str::from_utf8(&reply[..split]).expect("reply head is UTF-8");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("unparseable status line in {head:?}"));
    (status, reply[split + 4..].to_vec())
}

/// Pulls `"field": "value"` out of the service's JSON.
fn json_str(body: &str, field: &str) -> String {
    let tag = format!("\"{field}\": \"");
    let start = body
        .find(&tag)
        .unwrap_or_else(|| panic!("no {field} in {body}"))
        + tag.len();
    body[start..]
        .split('"')
        .next()
        .expect("closing quote")
        .to_string()
}

#[test]
fn serve_runs_submissions_and_answers_repeats_from_cache() {
    let dir = scratch("serve");
    let mut child = Command::new(xp())
        .current_dir(&dir)
        .env("FTGCS_CACHE_DIR", dir.join("cache"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn xp serve");
    let stdout = child.stdout.take().expect("serve stdout piped");
    let mut guard = KillOnDrop(child);
    // The reader must outlive the test body: dropping the pipe would
    // make the server's own stdout writes fail.
    let mut server_stdout = std::io::BufReader::new(stdout);
    let mut announce = String::new();
    server_stdout
        .read_line(&mut announce)
        .expect("serve announce line");
    let addr = announce
        .trim()
        .strip_prefix("xp serve: listening on http://")
        .unwrap_or_else(|| panic!("unexpected announce line {announce:?}"))
        .to_string();

    // In-process reference for byte-comparison.
    let ref_dir = dir.join("reference");
    std::fs::create_dir_all(&ref_dir).expect("reference dir");
    let status = Command::new(xp())
        .current_dir(&ref_dir)
        .arg("run")
        .arg(spec_path("smoke.spec"))
        .stdout(Stdio::null())
        .status()
        .expect("xp run");
    assert!(status.success());

    let spec_text = std::fs::read_to_string(spec_path("smoke.spec")).expect("smoke.spec");
    let (code, body) = http(&addr, "POST /submit", spec_text.as_bytes());
    assert_eq!(code, 202, "{}", String::from_utf8_lossy(&body));
    let body = String::from_utf8(body).expect("submit reply is UTF-8");
    let job = json_str(&body, "job");
    assert_eq!(json_str(&body, "state"), "queued");

    let mut state = String::new();
    for _ in 0..600 {
        let (code, body) = http(&addr, &format!("GET /status/{job}"), b"");
        assert_eq!(code, 200);
        state = String::from_utf8(body).expect("status reply is UTF-8");
        match json_str(&state, "state").as_str() {
            "done" => break,
            "failed" => panic!("job failed: {state}"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    assert_eq!(
        json_str(&state, "state"),
        "done",
        "job never finished: {state}"
    );

    // Artifacts: the samples CSV byte-identical to the in-process run,
    // and the telemetry report in the machine-readable schema.
    let (code, csv) = http(&addr, &format!("GET /result/{job}/smoke_samples.csv"), b"");
    assert_eq!(code, 200);
    assert_eq!(
        csv,
        std::fs::read(ref_dir.join("results/smoke_samples.csv")).expect("reference CSV"),
        "served CSV diverged from the in-process run"
    );
    let (code, telemetry) = http(&addr, &format!("GET /result/{job}/telemetry.json"), b"");
    assert_eq!(code, 200);
    assert!(
        String::from_utf8_lossy(&telemetry).contains("ftgcs-telemetry-v1"),
        "telemetry artifact is not the machine-readable report"
    );
    let (code, listing) = http(&addr, &format!("GET /result/{job}"), b"");
    assert_eq!(code, 200);
    assert!(String::from_utf8_lossy(&listing).contains("smoke_summary.csv"));

    // Resubmitting the identical spec is answered from the cache:
    // still exactly one cell process ever spawned.
    let (code, body) = http(&addr, "POST /submit", spec_text.as_bytes());
    assert_eq!(code, 200);
    assert_eq!(
        json_str(&String::from_utf8(body).expect("UTF-8"), "state"),
        "done"
    );
    let (code, stats) = http(&addr, "GET /stats", b"");
    assert_eq!(code, 200);
    let stats = String::from_utf8(stats).expect("stats reply is UTF-8");
    assert!(stats.contains("\"cells_spawned\": 1"), "{stats}");
    assert!(stats.contains("\"cache_hits\": 1"), "{stats}");

    // A non-spec body is rejected, not enqueued.
    let (code, _) = http(&addr, "POST /submit", b"this is not a spec");
    assert_eq!(code, 400);
    let (code, _) = http(&addr, "GET /status/not-a-job-id", b"");
    assert_eq!(code, 400);
    let (code, _) = http(&addr, "GET /status/0123456789abcdef", b"");
    assert_eq!(code, 404);

    let (code, _) = http(&addr, "POST /shutdown", b"");
    assert_eq!(code, 200);
    let status = guard.0.wait().expect("serve exit status");
    assert!(status.success(), "serve exited with {status}");
}
