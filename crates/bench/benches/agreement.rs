//! Criterion bench: trimmed-midpoint approximate agreement cost
//! (Algorithm 1 line 12) as a function of cluster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftgcs::agreement::trimmed_midpoint;
use ftgcs_sim::rng::SimRng;
use std::hint::black_box;

fn bench_trimmed_midpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("trimmed_midpoint");
    for f in [1usize, 2, 4, 8, 16, 32] {
        let k = 3 * f + 1;
        let mut rng = SimRng::seed_from(1);
        let obs: Vec<f64> = (0..k).map(|_| rng.uniform(-1e-3, 1e-3)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &obs, |b, obs| {
            b.iter(|| trimmed_midpoint(black_box(obs), black_box(f)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trimmed_midpoint);
criterion_main!(benches);
