//! Criterion bench: discrete-event engine throughput — timer storms and
//! message floods on the raw substrate, independent of the algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftgcs_baselines::{build_free_run_sim, BaseMsg};
use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_topology::generators;
use std::hint::black_box;

fn config(sampling: bool) -> SimConfig {
    SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(100.0),
            DelayDistribution::Uniform,
        ),
        rho: 1e-4,
        rate_model: RateModel::RandomConstant,
        seed: 9,
        sample_interval: sampling.then(|| SimDuration::from_millis(10.0)),
        // The raw-substrate benches pin the global heap; the scheduler
        // comparison lives in `benches/shard_scaling.rs`.
        ..SimConfig::default()
    }
}

/// A node that broadcasts a beacon every `period` logical seconds,
/// flooding the network with deliveries.
#[derive(Debug)]
struct Flooder {
    period: f64,
}

impl Behavior<BaseMsg> for Flooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_, BaseMsg>) {
        ctx.set_timer_at(TrackId::MAIN, self.period, TimerTag::new(0));
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, BaseMsg>, _from: NodeId, _msg: &BaseMsg) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, BaseMsg>, tag: TimerTag) {
        ctx.broadcast(BaseMsg::Beacon { value: 0.0 });
        ctx.set_timer_at(
            TrackId::MAIN,
            (tag.b as f64 + 2.0) * self.period,
            TimerTag::new(0).with_b(tag.b + 1),
        );
    }
}

fn bench_free_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_free_run");
    group.sample_size(20);
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let g = generators::ring(n);
                let mut sim = build_free_run_sim(&g, config(true));
                sim.run_until(SimTime::from_secs(1.0));
                black_box(sim.stats().events)
            });
        });
    }
    group.finish();
}

fn bench_message_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_message_flood");
    group.sample_size(20);
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let g = generators::complete(n);
                let mut builder = SimBuilder::<BaseMsg>::new(config(false));
                for _ in 0..n {
                    builder.add_node(Box::new(Flooder { period: 0.01 }));
                }
                for (a, b2) in g.edges() {
                    builder.add_edge(NodeId(a), NodeId(b2));
                }
                let mut sim = builder.build();
                sim.run_until(SimTime::from_secs(1.0));
                black_box(sim.stats().messages)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_free_run, bench_message_flood);
criterion_main!(benches);
