//! Criterion bench: scheduler sharding — the same workloads as
//! `engine_free_run` (raw substrate message flood) and
//! `cluster_simulated_second` (full ClusterSync), swept over 1/2/4/8/64
//! scheduler shards (1 = the global-heap `Scenario` default, 64 = one
//! shard per cluster, what `Scenario::sharded_by_cluster` selects),
//! plus the **parallel executor** on the 64-shard split swept over
//! 1/2/4/8 worker threads.
//!
//! Every scheduler dispatches the identical event sequence (pinned by
//! `crates/sim/tests/shard_equivalence.rs`), so any time difference is
//! pure queue and executor mechanics: per-shard heaps of `m/s` entries
//! versus one heap of `m`, inbox staging that turns pulse fan-out into
//! bulk merges, and — for the parallel groups — how much of each
//! `d − U` lookahead window the workers can overlap versus barrier
//! overhead.
//!
//! The `hub` groups run a **hub-and-spoke** cluster star under a ragged
//! partition (one shard holding the hub cluster plus a third of the
//! spokes, singleton shards for the rest) — the shape that pinned most
//! of every window on worker 0 under the old static `shard % workers`
//! assignment. The final "benches" print `events/...` lines (the
//! deterministic per-cell event counts, so `scripts/bench.sh` can
//! derive machine-local events/sec from the medians) and `balance/...`
//! lines recording each worker's *dealt* share of all events
//! (`Simulation::planned_worker_events`, deterministic on any machine);
//! `scripts/bench.sh` captures both into `BENCH_shard_scaling.json`,
//! where no worker may exceed 60% and throughput may not regress more
//! than 2x against the checked-in baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_baselines::BaseMsg;
use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};
use ftgcs_sim::shard::{Partition, SchedulerKind};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_topology::{generators, ClusterGraph};
use std::hint::black_box;

/// Nodes per cluster in both workloads.
const K: usize = 4;
/// Clusters (so the finest split, one shard per cluster, is 64).
const CLUSTERS: usize = 64;

/// The `engine_free_run` flooder: broadcast a beacon every `period`
/// logical seconds.
#[derive(Debug)]
struct Flooder {
    period: f64,
}

impl Behavior<BaseMsg> for Flooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_, BaseMsg>) {
        ctx.set_timer_at(TrackId::MAIN, self.period, TimerTag::new(0));
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, BaseMsg>, _from: NodeId, _msg: &BaseMsg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, BaseMsg>, tag: TimerTag) {
        ctx.broadcast(BaseMsg::Beacon { value: 0.0 });
        ctx.set_timer_at(
            TrackId::MAIN,
            (tag.b as f64 + 2.0) * self.period,
            TimerTag::new(0).with_b(tag.b + 1),
        );
    }
}

/// The shared topology: a line of `CLUSTERS` cliques of `K`, so shard
/// splits always cut only `≥ d−U`-delayed intercluster edges.
fn cluster_graph() -> ClusterGraph {
    ClusterGraph::new(generators::line(CLUSTERS), K, 1)
}

fn scheduler_for(shards: usize) -> SchedulerKind {
    let nodes = CLUSTERS * K;
    if shards == 1 {
        SchedulerKind::Global
    } else {
        SchedulerKind::Sharded(Partition::by_blocks(nodes, nodes / shards))
    }
}

/// The parallel executor on the finest (one-shard-per-cluster) split.
fn parallel_for(workers: usize) -> SchedulerKind {
    SchedulerKind::Parallel {
        partition: Partition::by_blocks(CLUSTERS * K, K),
        workers,
    }
}

/// Hub-and-spoke cluster star for the balance benches.
fn hub_graph() -> ClusterGraph {
    ClusterGraph::new(generators::star(CLUSTERS), K, 1)
}

/// The ragged partition over the star: the hub cluster plus the first
/// third of the spokes share shard 0; every other spoke cluster is a
/// singleton shard.
fn hub_partition() -> Partition {
    let heavy = CLUSTERS / 3;
    let assignment: Vec<usize> = (0..CLUSTERS * K)
        .map(|node| {
            let cluster = node / K;
            if cluster < heavy {
                0
            } else {
                cluster - heavy + 1
            }
        })
        .collect();
    Partition::from_assignment(assignment)
}

/// One free-run iteration of `cg` under `scheduler`, optionally pinning
/// the executor count; returns total events and the dealt per-worker
/// loads (parallel schedulers only).
fn free_run_graph(
    cg: &ClusterGraph,
    scheduler: SchedulerKind,
    pin: Option<usize>,
) -> (u64, Option<Vec<u64>>) {
    let config = SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(100.0),
            DelayDistribution::Uniform,
        ),
        rho: 1e-4,
        rate_model: RateModel::RandomConstant,
        seed: 9,
        sample_interval: Some(SimDuration::from_millis(10.0)),
        scheduler,
        telemetry: false,
    };
    let mut builder = SimBuilder::<BaseMsg>::new(config);
    for _ in 0..cg.physical().node_count() {
        builder.add_node(Box::new(Flooder { period: 0.01 }));
    }
    for (a, b2) in cg.physical().edges() {
        builder.add_edge(NodeId(a), NodeId(b2));
    }
    let mut sim = builder.build();
    if let Some(workers) = pin {
        sim.pin_workers(workers);
    }
    sim.run_until(SimTime::from_secs(1.0));
    let events = sim.stats().events;
    let loads = sim.planned_worker_events().map(<[u64]>::to_vec);
    (events, loads)
}

/// One free-run iteration under `scheduler` (line-of-cliques graph).
fn free_run_once(scheduler: SchedulerKind) -> u64 {
    free_run_graph(&cluster_graph(), scheduler, None).0
}

/// One full-ClusterSync iteration under `scheduler`.
fn cluster_second_once(params: &Params, scheduler: SchedulerKind) -> u64 {
    let mut scenario = Scenario::new(cluster_graph(), params.clone());
    scenario
        .seed(3)
        .max_estimator(false)
        .sample_interval(None)
        .scheduler(scheduler);
    let run = scenario.run_for(1.0);
    run.stats.events
}

fn bench_free_run_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling_free_run");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| black_box(free_run_once(scheduler_for(s))));
        });
    }
    group.finish();
}

fn bench_free_run_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling_free_run_parallel");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(free_run_once(parallel_for(w))));
        });
    }
    group.finish();
}

fn bench_cluster_second_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling_cluster_second");
    group.sample_size(10);
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible");
    for shards in [1usize, 2, 4, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| black_box(cluster_second_once(&params, scheduler_for(s))));
        });
    }
    group.finish();
}

fn bench_cluster_second_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling_cluster_second_parallel");
    group.sample_size(10);
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible");
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(cluster_second_once(&params, parallel_for(w))));
        });
    }
    group.finish();
}

fn bench_hub_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling_hub_parallel");
    group.sample_size(10);
    let cg = hub_graph();
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                black_box(
                    free_run_graph(
                        &cg,
                        SchedulerKind::Parallel {
                            partition: hub_partition(),
                            workers: w,
                        },
                        Some(w),
                    )
                    .0,
                )
            });
        });
    }
    group.finish();
}

/// Not a timing group: one deterministic run per `(group, label)` cell,
/// printing the cell's total event count. The counts are a pure
/// function of `(seed, config)` — identical on every machine and every
/// scheduler (pinned by `shard_equivalence.rs`) — so dividing them by
/// the machine-local medians gives a throughput figure:
/// `scripts/bench.sh` joins these lines with the criterion medians into
/// `events_per_sec` fields in `BENCH_shard_scaling.json`, and gates on
/// a >2x throughput regression against the checked-in baseline.
fn report_group_events(_c: &mut Criterion) {
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible");
    for shards in [1usize, 2, 4, 8, 64] {
        let events = free_run_once(scheduler_for(shards));
        println!("events/shard_scaling_free_run/{shards}: {events} events");
    }
    for workers in [1usize, 2, 4, 8] {
        let events = free_run_once(parallel_for(workers));
        println!("events/shard_scaling_free_run_parallel/{workers}: {events} events");
    }
    for shards in [1usize, 2, 4, 8, 64] {
        let events = cluster_second_once(&params, scheduler_for(shards));
        println!("events/shard_scaling_cluster_second/{shards}: {events} events");
    }
    for workers in [1usize, 2, 4, 8] {
        let events = cluster_second_once(&params, parallel_for(workers));
        println!("events/shard_scaling_cluster_second_parallel/{workers}: {events} events");
    }
    let cg = hub_graph();
    for workers in [1usize, 2, 4] {
        let (events, _) = free_run_graph(
            &cg,
            SchedulerKind::Parallel {
                partition: hub_partition(),
                workers,
            },
            Some(workers),
        );
        println!("events/shard_scaling_hub_parallel/{workers}: {events} events");
    }
}

/// Not a timing group: one deterministic hub-and-spoke run at 4 pinned
/// workers, printing each worker's dealt share of all events. The
/// shares are a pure function of `(seed, config, worker count)` — see
/// `Simulation::planned_worker_events` — so the recorded numbers are
/// identical on every machine; `scripts/bench.sh` captures them into
/// `BENCH_shard_scaling.json` and the acceptance bar is share < 0.60.
fn report_hub_balance(_c: &mut Criterion) {
    let (events, loads) = free_run_graph(
        &hub_graph(),
        SchedulerKind::Parallel {
            partition: hub_partition(),
            workers: 1,
        },
        Some(4),
    );
    let loads = loads.expect("parallel scheduler records dealt loads");
    let dealt: u64 = loads.iter().sum();
    for (w, &load) in loads.iter().enumerate() {
        let share = load as f64 / dealt as f64;
        println!("balance/hub_free_run_w4/worker{w}: share {share:.4} ({load} of {dealt} dealt, {events} events)");
    }
}

criterion_group!(
    benches,
    bench_free_run_scaling,
    bench_free_run_parallel,
    bench_cluster_second_scaling,
    bench_cluster_second_parallel,
    bench_hub_parallel,
    report_group_events,
    report_hub_balance
);
criterion_main!(benches);
