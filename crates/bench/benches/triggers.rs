//! Criterion bench: fast/slow trigger evaluation (Definitions 4.3/4.4)
//! as a function of neighbor count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftgcs::triggers::evaluate;
use ftgcs_sim::rng::SimRng;
use std::hint::black_box;

fn bench_trigger_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("trigger_evaluate");
    for neighbors in [1usize, 2, 4, 8, 16, 64] {
        let mut rng = SimRng::seed_from(2);
        let estimates: Vec<f64> = (0..neighbors).map(|_| rng.uniform(-0.05, 0.05)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(neighbors),
            &estimates,
            |b, est| {
                b.iter(|| evaluate(black_box(0.0), black_box(est), 9e-3, 3e-3));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trigger_evaluate);
criterion_main!(benches);
