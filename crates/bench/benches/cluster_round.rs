//! Criterion bench: cost of simulating one second of ClusterSync as a
//! function of cluster size `k = 3f+1` (a single cluster, no gradient
//! layer work beyond the constant-time trigger checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_topology::{generators, ClusterGraph};
use std::hint::black_box;

fn bench_cluster_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_simulated_second");
    group.sample_size(10);
    for f in [1usize, 2, 4, 8] {
        let params = Params::practical(1e-4, 1e-3, 1e-4, f).expect("feasible");
        let k = params.cluster_size;
        group.bench_with_input(BenchmarkId::from_parameter(k), &f, |b, &_f| {
            b.iter(|| {
                let cg = ClusterGraph::new(generators::line(1), params.cluster_size, params.f);
                let mut scenario = Scenario::new(cg, params.clone());
                scenario.seed(3).max_estimator(false).sample_interval(None);
                let run = scenario.run_for(1.0);
                black_box(run.stats.events)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_second);
criterion_main!(benches);
