//! Criterion bench: cost of one simulated second of the full FTGCS
//! stack (cluster layer + estimators + triggers + max estimator) as a
//! function of topology size and shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_topology::{generators, ClusterGraph, Graph};
use std::hint::black_box;

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("line(4)", generators::line(4)),
        ("line(16)", generators::line(16)),
        ("grid(4x4)", generators::grid(4, 4)),
        ("ring(16)", generators::ring(16)),
    ]
}

fn bench_full_stack_second(c: &mut Criterion) {
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible");
    let mut group = c.benchmark_group("ftgcs_simulated_second");
    group.sample_size(10);
    for (name, base) in topologies() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &base, |b, base| {
            b.iter(|| {
                let cg = ClusterGraph::new(base.clone(), params.cluster_size, params.f);
                let mut scenario = Scenario::new(cg, params.clone());
                scenario.seed(4).sample_interval(None);
                let run = scenario.run_for(1.0);
                black_box(run.stats.events)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_stack_second);
criterion_main!(benches);
