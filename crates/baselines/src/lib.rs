//! # ftgcs-baselines — comparison algorithms
//!
//! The synchronization baselines the paper positions itself against:
//!
//! * [`tree_sync`] — master/slave beacon propagation down a BFS tree:
//!   optimal *global* skew, but the full accumulated correction lands on a
//!   single edge during each wave (no local-skew guarantee; §1, cf. Locher–Wattenhofer).
//! * [`gcs`] — the non-fault-tolerant gradient clock synchronization
//!   algorithm \[13\]: optimal `Θ(log D)` local skew fault-free, broken by
//!   a single Byzantine liar ([`gcs::GcsLiar`]).
//! * [`FreeRunNode`] — no synchronization at all (logical = hardware),
//!   the control group.
//!
//! Convenience builders ([`build_tree_sim`], [`build_gcs_sim`],
//! [`build_free_run_sim`]) wire a whole topology in one call.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Unsafety discipline (enforced by `ftgcs-lint`): this crate must
// compile with no `unsafe` at all; the one sanctioned unsafe region in
// the workspace is `ftgcs-sim`'s parallel executor (sim/src/par.rs).
#![deny(unsafe_code)]
// Library output goes through return values and the `Observer` sink,
// never the process streams (enforced by `ftgcs-lint` and clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod gcs;
pub mod messages;
pub mod tree_sync;

use ftgcs_sim::engine::{Ctx, SimBuilder, SimConfig, Simulation};
use ftgcs_sim::node::{Behavior, NodeId, TimerTag};
use ftgcs_topology::analysis::bfs_tree;
use ftgcs_topology::Graph;

pub use gcs::{GcsConfig, GcsLiar, GcsNode};
pub use messages::BaseMsg;
pub use tree_sync::{Correction, TreeConfig, TreeSyncNode, ROW_TREE_JUMP};

/// A node that never synchronizes: its logical clock *is* its hardware
/// clock. The control group for every skew comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct FreeRunNode;

impl<M> Behavior<M> for FreeRunNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}
    fn on_message(&mut self, _ctx: &mut Ctx<'_, M>, _from: NodeId, _msg: &M) {}
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _tag: TimerTag) {}
}

/// Builds a tree-sync simulation over `graph` rooted at `root`.
///
/// # Panics
///
/// Panics if the graph is disconnected or `root` is out of range.
#[must_use]
pub fn build_tree_sim(
    graph: &Graph,
    root: usize,
    config: SimConfig,
    beacon_interval: f64,
    correction: Correction,
) -> Simulation<BaseMsg> {
    let parents = bfs_tree(graph, root);
    let d = config.delay.max_delay().as_secs();
    let u = config.delay.uncertainty().as_secs();
    let mut builder = SimBuilder::new(config);
    for v in graph.nodes() {
        let parent = if v == root {
            None
        } else {
            Some(NodeId(parents[v]))
        };
        builder.add_node(Box::new(TreeSyncNode::new(TreeConfig {
            parent,
            beacon_interval,
            delay_compensation: d - u / 2.0,
            correction,
        })));
    }
    for (a, b) in graph.edges() {
        builder.add_edge(NodeId(a), NodeId(b));
    }
    builder.build()
}

/// Builds a plain-GCS simulation over `graph`; nodes listed in `liars`
/// run the [`GcsLiar`] attack instead of the protocol.
#[must_use]
pub fn build_gcs_sim(
    graph: &Graph,
    gcs_config: GcsConfig,
    config: SimConfig,
    liars: &[usize],
) -> Simulation<BaseMsg> {
    let mut builder = SimBuilder::new(config);
    for v in graph.nodes() {
        if liars.contains(&v) {
            builder.add_node(Box::new(GcsLiar::new(gcs_config.clone())));
        } else {
            builder.add_node(Box::new(GcsNode::new(gcs_config.clone())));
        }
    }
    for (a, b) in graph.edges() {
        builder.add_edge(NodeId(a), NodeId(b));
    }
    builder.build()
}

/// Builds a free-running simulation (no synchronization) over `graph`.
#[must_use]
pub fn build_free_run_sim(graph: &Graph, config: SimConfig) -> Simulation<BaseMsg> {
    let mut builder = SimBuilder::new(config);
    for _ in graph.nodes() {
        builder.add_node(Box::new(FreeRunNode));
    }
    for (a, b) in graph.edges() {
        builder.add_edge(NodeId(a), NodeId(b));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgcs_sim::clock::RateModel;
    use ftgcs_sim::time::{SimDuration, SimTime};
    use ftgcs_topology::generators::line;

    #[test]
    fn free_run_tracks_hardware_exactly() {
        let config = SimConfig {
            rho: 1e-3,
            rate_model: RateModel::Constant { frac: 1.0 },
            sample_interval: Some(SimDuration::from_millis(100.0)),
            ..SimConfig::default()
        };
        let g = line(2);
        let mut sim = build_free_run_sim(&g, config);
        assert_eq!(sim.logical_value(NodeId(0)), 0.0);
        sim.run_until(SimTime::from_secs(100.0));
        let l1 = sim.logical_value(NodeId(1));
        // Both run at the extreme rate 1+rho: equal clocks, rho*t ahead of
        // real time.
        assert!((l1 - sim.logical_value(NodeId(0))).abs() < 1e-9);
        assert!((l1 - 100.0 * (1.0 + 1e-3)).abs() < 1e-6);
        assert!((sim.hardware_value(NodeId(0)) - l1).abs() < 1e-9);
    }
}
