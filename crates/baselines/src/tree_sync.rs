//! Master/slave tree synchronization (the paper's §1 straw-man).
//!
//! A root cluster/node free-runs; every other node synchronizes to its
//! parent in a BFS tree by "echoing" the root's beacons: on receiving a
//! beacon it estimates the parent's clock and either **jumps** its logical
//! clock to the estimate or **slews** toward it, then re-broadcasts.
//!
//! This achieves global skew `O(D·(U + ρ·P))` — asymptotically optimal —
//! but offers *no* non-trivial local-skew guarantee: while a beacon wave
//! propagates, the entire accumulated correction sits across the single
//! edge separating updated from not-yet-updated nodes ("this will compress
//! the full global skew onto a single edge", §1, cf. \[15\]). Experiment F2
//! measures exactly that.

use ftgcs_sim::engine::Ctx;
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};

use crate::messages::BaseMsg;

/// How a node applies its parent-clock estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Correction {
    /// Set the logical clock to the estimate (never backwards). Shows the
    /// skew-compression phenomenon most starkly.
    #[default]
    Jump,
    /// Adjust the clock rate to close the gap within one beacon interval,
    /// subject to a ±10% rate clamp.
    Slew,
}

/// Configuration of a tree-sync node.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Parent in the BFS tree; `None` marks the root.
    pub parent: Option<NodeId>,
    /// Root beacon period `P` (logical seconds).
    pub beacon_interval: f64,
    /// Expected one-way delay used for compensation (`d − U/2` is the
    /// unbiased choice).
    pub delay_compensation: f64,
    /// Jump or slew.
    pub correction: Correction,
}

/// A master/slave tree-synchronization node.
#[derive(Debug)]
pub struct TreeSyncNode {
    cfg: TreeConfig,
}

const TIMER_BEACON: u32 = 1;

/// Trace row kind for applied jump corrections: `values = [delta]`.
///
/// While a beacon wave propagates, a node that just jumped by `delta`
/// sits `≈ delta` ahead of its not-yet-updated child — the jump sizes
/// *are* the transient local skews the wavefront compresses onto single
/// edges, at a timescale (`d − U`) far below any practical sampling
/// grid. Experiment F2 reads these rows.
pub const ROW_TREE_JUMP: &str = "tree_jump";

impl TreeSyncNode {
    /// Creates a node from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the beacon interval is not positive.
    #[must_use]
    pub fn new(cfg: TreeConfig) -> Self {
        assert!(
            cfg.beacon_interval > 0.0,
            "beacon interval must be positive"
        );
        TreeSyncNode { cfg }
    }
}

impl Behavior<BaseMsg> for TreeSyncNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, BaseMsg>) {
        if self.cfg.parent.is_none() {
            ctx.set_timer_at(
                TrackId::MAIN,
                self.cfg.beacon_interval,
                TimerTag::new(TIMER_BEACON),
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, BaseMsg>, from: NodeId, msg: &BaseMsg) {
        let BaseMsg::Beacon { value } = *msg else {
            return;
        };
        if self.cfg.parent != Some(from) {
            return; // only the parent's beacons matter
        }
        let estimate = value + self.cfg.delay_compensation;
        let own = ctx.track_value(TrackId::MAIN);
        match self.cfg.correction {
            Correction::Jump => {
                if estimate > own {
                    ctx.jump_track(TrackId::MAIN, estimate);
                    ctx.emit(ROW_TREE_JUMP, vec![estimate - own]);
                }
            }
            Correction::Slew => {
                let gap = estimate - own;
                let rate = (1.0 + gap / self.cfg.beacon_interval).clamp(0.9, 1.1);
                ctx.set_multiplier(TrackId::MAIN, rate);
            }
        }
        // Echo downwards (children filter by parent pointer).
        let own_now = ctx.track_value(TrackId::MAIN);
        ctx.broadcast(BaseMsg::Beacon { value: own_now });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, BaseMsg>, _tag: TimerTag) {
        // Root: periodic beacon.
        let value = ctx.track_value(TrackId::MAIN);
        ctx.broadcast(BaseMsg::Beacon { value });
        let next = value + self.cfg.beacon_interval;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_BEACON));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_tree_sim;
    use ftgcs_sim::clock::RateModel;
    use ftgcs_sim::engine::SimConfig;
    use ftgcs_sim::network::{DelayConfig, DelayDistribution};
    use ftgcs_sim::time::{SimDuration, SimTime};
    use ftgcs_topology::generators::line;

    fn config() -> SimConfig {
        SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_millis(1.0),
                SimDuration::from_micros(100.0),
                DelayDistribution::Uniform,
            ),
            rho: 1e-4,
            rate_model: RateModel::RandomConstant,
            seed: 3,
            sample_interval: Some(SimDuration::from_millis(10.0)),
            ..SimConfig::default()
        }
    }

    #[test]
    fn tree_sync_bounds_global_skew() {
        let g = line(6);
        let mut sim = build_tree_sim(&g, 0, config(), 0.5, Correction::Jump);
        sim.run_until(SimTime::from_secs(20.0));
        let final_clocks = sim.trace().final_logical().unwrap().to_vec();
        let spread = final_clocks.iter().cloned().fold(f64::MIN, f64::max)
            - final_clocks.iter().cloned().fold(f64::MAX, f64::min);
        // Free-running would spread ~rho*t per hop pair; synced stays near
        // the per-hop delay-compensation error, far below 1 ms * 5 hops * big.
        assert!(spread < 5.0 * 2e-3, "global spread {spread}");
        assert!(spread >= 0.0);
    }

    #[test]
    fn jump_mode_clocks_never_go_backwards() {
        let g = line(4);
        let mut sim = build_tree_sim(&g, 0, config(), 0.2, Correction::Jump);
        sim.run_until(SimTime::from_secs(5.0));
        let samples = &sim.trace().samples;
        for node in 0..4 {
            for w in samples.windows(2) {
                assert!(
                    w[1].logical[node] >= w[0].logical[node],
                    "clock of n{node} regressed"
                );
            }
        }
    }

    #[test]
    fn slew_mode_also_synchronizes() {
        let g = line(4);
        let mut sim = build_tree_sim(&g, 0, config(), 0.2, Correction::Slew);
        sim.run_until(SimTime::from_secs(30.0));
        let final_clocks = sim.trace().final_logical().unwrap().to_vec();
        let spread = final_clocks.iter().cloned().fold(f64::MIN, f64::max)
            - final_clocks.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.05, "slewed spread {spread}");
    }
}
