//! Messages used by the baseline algorithms.
//!
//! Unlike the FTGCS pulses, baselines send explicit clock values — they are
//! *not* designed for Byzantine settings, which is exactly the weakness the
//! comparison experiments expose.

/// A baseline protocol message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaseMsg {
    /// Tree synchronization: the sender's logical clock at send time,
    /// propagated from the root downwards.
    Beacon {
        /// Sender's logical clock value when the beacon left.
        value: f64,
    },
    /// GCS baseline: a periodic clock report to all neighbors.
    ClockReport {
        /// Sender's (claimed) logical clock value at send time.
        value: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_copyable_and_small() {
        assert!(std::mem::size_of::<BaseMsg>() <= 16);
        let m = BaseMsg::Beacon { value: 1.5 };
        assert_eq!(m, m);
    }
}
