//! The non-fault-tolerant GCS algorithm \[13\] on a plain graph.
//!
//! Each node periodically reports its logical clock to its neighbors,
//! maintains dead-reckoned estimates of theirs, and applies the fast/slow
//! trigger rule (the even/odd-`sκ` formulation of Defs. 4.3/4.4) to pick
//! its rate. In fault-free networks this achieves the optimal
//! `Θ(log D)` local skew — but a *single* Byzantine neighbor can lie
//! per-edge and drive unbounded skew between correct nodes
//! ("the GCS algorithm utterly fails in face of non-benign faults", §1).
//! [`GcsLiar`] implements that attack; experiment F5 measures it against
//! FTGCS.

use ftgcs_sim::engine::Ctx;
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};

use crate::messages::BaseMsg;

const TIMER_REPORT: u32 = 1;

/// Configuration of the GCS baseline.
#[derive(Debug, Clone)]
pub struct GcsConfig {
    /// Trigger step `κ`.
    pub kappa: f64,
    /// Trigger slack `δ < κ/2`.
    pub slack: f64,
    /// Fast-mode rate boost `µ`.
    pub mu: f64,
    /// Report period `P` (logical seconds).
    pub report_interval: f64,
    /// Expected one-way delay compensation (`d − U/2`).
    pub delay_compensation: f64,
}

impl GcsConfig {
    /// A reasonable configuration for the given physical constants: the
    /// estimate error is `≈ U/2 + ρ·P`, and `κ` is set to 20× that.
    #[must_use]
    pub fn for_network(rho: f64, d: f64, u: f64) -> Self {
        let p = 0.05_f64;
        let err = u / 2.0 + rho * p + 1e-9;
        let kappa = 20.0 * err;
        GcsConfig {
            kappa,
            slack: kappa / 3.0,
            mu: 0.01,
            report_interval: p,
            delay_compensation: d - u / 2.0,
        }
    }
}

/// Dead-reckoned estimate of one neighbor's clock.
#[derive(Debug, Clone, Copy)]
struct NeighborEstimate {
    /// Reported value plus delay compensation.
    base: f64,
    /// Own hardware reading at receipt.
    hw_at_receipt: f64,
}

/// A correct GCS-baseline node.
#[derive(Debug)]
pub struct GcsNode {
    cfg: GcsConfig,
    estimates: Vec<Option<NeighborEstimate>>,
}

impl GcsNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `κ`, period, or `µ`, or `slack ≥ κ/2`.
    #[must_use]
    pub fn new(cfg: GcsConfig) -> Self {
        assert!(cfg.kappa > 0.0 && cfg.mu > 0.0 && cfg.report_interval > 0.0);
        assert!(
            cfg.slack < cfg.kappa / 2.0,
            "need slack < kappa/2 for trigger exclusivity"
        );
        GcsNode {
            cfg,
            estimates: Vec::new(),
        }
    }

    fn estimate_now(&self, ctx: &mut Ctx<'_, BaseMsg>, idx: usize) -> Option<f64> {
        let est = self.estimates.get(idx).copied().flatten()?;
        let hw = ctx.hardware_now();
        Some(est.base + (hw - est.hw_at_receipt))
    }

    /// The even/odd trigger rule; returns `Some(true)` = fast,
    /// `Some(false)` = slow, `None` = neither.
    fn trigger(&self, own: f64, estimates: &[f64]) -> Option<bool> {
        if estimates.is_empty() {
            return None;
        }
        let kappa = self.cfg.kappa;
        let slack = self.cfg.slack;
        let max_up = estimates
            .iter()
            .map(|&e| e - own)
            .fold(f64::NEG_INFINITY, f64::max);
        let max_down = estimates
            .iter()
            .map(|&e| own - e)
            .fold(f64::NEG_INFINITY, f64::max);
        let ft_hi = ((max_up + slack) / (2.0 * kappa)).floor();
        let ft_lo = ((max_down - slack) / (2.0 * kappa)).ceil().max(1.0);
        if ft_lo <= ft_hi {
            return Some(true);
        }
        let st_hi = (((max_down + slack) / kappa + 1.0) / 2.0).floor();
        let st_lo = (((max_up - slack) / kappa + 1.0) / 2.0).ceil().max(1.0);
        if st_lo <= st_hi {
            return Some(false);
        }
        None
    }

    fn react(&mut self, ctx: &mut Ctx<'_, BaseMsg>) {
        let own = ctx.track_value(TrackId::MAIN);
        let n = ctx.neighbors().len();
        let estimates: Vec<f64> = (0..n).filter_map(|i| self.estimate_now(ctx, i)).collect();
        match self.trigger(own, &estimates) {
            Some(true) => ctx.set_multiplier(TrackId::MAIN, 1.0 + self.cfg.mu),
            Some(false) | None => ctx.set_multiplier(TrackId::MAIN, 1.0),
        }
    }

    fn arm(&self, ctx: &mut Ctx<'_, BaseMsg>) {
        let next = ctx.track_value(TrackId::MAIN) + self.cfg.report_interval;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_REPORT));
    }
}

impl Behavior<BaseMsg> for GcsNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, BaseMsg>) {
        self.estimates = vec![None; ctx.neighbors().len()];
        self.arm(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, BaseMsg>, from: NodeId, msg: &BaseMsg) {
        let BaseMsg::ClockReport { value } = *msg else {
            return;
        };
        let Some(idx) = ctx.neighbors().iter().position(|&n| n == from) else {
            return;
        };
        let hw = ctx.hardware_now();
        self.estimates[idx] = Some(NeighborEstimate {
            base: value + self.cfg.delay_compensation,
            hw_at_receipt: hw,
        });
        self.react(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, BaseMsg>, _tag: TimerTag) {
        let value = ctx.track_value(TrackId::MAIN);
        ctx.broadcast(BaseMsg::ClockReport { value });
        self.react(ctx);
        self.arm(ctx);
    }
}

/// A Byzantine node for the GCS baseline: it tailors a *different* clock
/// report to each neighbor — pushing half of them ("I am far ahead of
/// you") and pulling the other half ("I am behind you") — based on each
/// neighbor's own last report, so the pressure never relents.
///
/// The bias *escalates* linearly in time. A constant lie saturates at
/// one trigger level `s` and is then capped by the victims' FT-2/ST-2
/// checks against their correct neighbors; a growing lie keeps raising
/// the level `s` at which the victims' triggers fire, so the pushed side
/// runs fast forever and the pulled side slow forever. The divergence
/// must be distributed across the correct path connecting the two sides,
/// so the correct-edge local skew grows at rate `Θ(µ)` — unbounded.
#[derive(Debug)]
pub struct GcsLiar {
    cfg: GcsConfig,
    /// Extra claimed offset per logical second (`µ/2` by default): fast
    /// enough to outpace every victim-side cap, slow enough that victims
    /// in fast mode can keep believing they must catch up.
    escalation: f64,
    last_reports: Vec<Option<f64>>,
}

impl GcsLiar {
    /// Creates the attacker (it uses `cfg` only for `κ`, `δ`, `µ`, and
    /// the report period). The claimed offsets grow at `µ/2` per second.
    #[must_use]
    pub fn new(cfg: GcsConfig) -> Self {
        let escalation = cfg.mu / 2.0;
        GcsLiar {
            cfg,
            escalation,
            last_reports: Vec::new(),
        }
    }

    /// Creates the attacker with a custom escalation rate (claimed
    /// seconds of extra offset per logical second).
    #[must_use]
    pub fn with_escalation(cfg: GcsConfig, escalation: f64) -> Self {
        GcsLiar {
            cfg,
            escalation,
            last_reports: Vec::new(),
        }
    }
}

impl Behavior<BaseMsg> for GcsLiar {
    fn on_start(&mut self, ctx: &mut Ctx<'_, BaseMsg>) {
        self.last_reports = vec![None; ctx.neighbors().len()];
        ctx.set_timer_at(
            TrackId::MAIN,
            self.cfg.report_interval,
            TimerTag::new(TIMER_REPORT),
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, BaseMsg>, from: NodeId, msg: &BaseMsg) {
        let BaseMsg::ClockReport { value } = *msg else {
            return;
        };
        if let Some(idx) = ctx.neighbors().iter().position(|&n| n == from) {
            self.last_reports[idx] = Some(value);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, BaseMsg>, _tag: TimerTag) {
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        let own_fallback = ctx.track_value(TrackId::MAIN);
        let ramp = self.escalation * ctx.track_value(TrackId::MAIN);
        for (i, to) in neighbors.iter().enumerate() {
            let anchor = self.last_reports[i].unwrap_or(own_fallback);
            // Push even-indexed neighbors 2κ+2δ+ramp ahead of *their own*
            // clock (their FT fires at ever-higher levels s); pull
            // odd-indexed ones κ+2δ+ramp behind (their ST fires). The
            // delay compensation makes the received estimate land near
            // `anchor ± bias`.
            let bias = if i % 2 == 0 {
                2.0 * self.cfg.kappa + 2.0 * self.cfg.slack + ramp
            } else {
                -(self.cfg.kappa + 2.0 * self.cfg.slack + ramp)
            };
            let claimed = anchor + bias - self.cfg.delay_compensation;
            ctx.send(*to, BaseMsg::ClockReport { value: claimed });
        }
        let next = ctx.track_value(TrackId::MAIN) + self.cfg.report_interval;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_REPORT));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_gcs_sim;
    use ftgcs_metrics::skew::{local_skew_series, FaultMask};
    use ftgcs_sim::clock::RateModel;
    use ftgcs_sim::engine::SimConfig;
    use ftgcs_sim::network::{DelayConfig, DelayDistribution};
    use ftgcs_sim::time::{SimDuration, SimTime};
    use ftgcs_topology::generators::ring;

    fn sim_config() -> SimConfig {
        SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_millis(1.0),
                SimDuration::from_micros(100.0),
                DelayDistribution::Uniform,
            ),
            rho: 1e-4,
            rate_model: RateModel::RandomConstant,
            seed: 11,
            sample_interval: Some(SimDuration::from_millis(50.0)),
            ..SimConfig::default()
        }
    }

    #[test]
    fn fault_free_gcs_keeps_local_skew_small() {
        let g = ring(8);
        let cfg = GcsConfig::for_network(1e-4, 1e-3, 1e-4);
        let kappa = cfg.kappa;
        let mut sim = build_gcs_sim(&g, cfg, sim_config(), &[]);
        sim.run_until(SimTime::from_secs(60.0));
        let skew = local_skew_series(sim.trace(), &g, &FaultMask::none(8));
        // Steady-state local skew should stay within a few kappa levels.
        let steady = skew.after(30.0).max().unwrap();
        assert!(steady < 6.0 * kappa, "steady local skew {steady}");
    }

    #[test]
    fn single_liar_breaks_plain_gcs() {
        let g = ring(8);
        let cfg = GcsConfig::for_network(1e-4, 1e-3, 1e-4);
        let mut sim = build_gcs_sim(&g, cfg, sim_config(), &[0]);
        sim.run_until(SimTime::from_secs(120.0));
        let faulty = FaultMask::from_nodes(8, &[0]);
        let skew = local_skew_series(sim.trace(), &g, &faulty);
        // Divergence: skew in the second half far exceeds the first half.
        let early = skew.after(10.0).value_at_or_before(30.0).unwrap();
        let late = skew.last().unwrap();
        assert!(
            late > 3.0 * early.max(1e-4),
            "no divergence: early={early}, late={late}"
        );
    }

    #[test]
    fn trigger_rule_matches_expectations() {
        let cfg = GcsConfig {
            kappa: 3.0,
            slack: 1.0,
            mu: 0.01,
            report_interval: 0.05,
            delay_compensation: 1e-3,
        };
        let node = GcsNode::new(cfg);
        assert_eq!(node.trigger(0.0, &[5.0]), Some(true));
        assert_eq!(node.trigger(0.0, &[-2.0]), Some(false));
        assert_eq!(node.trigger(0.0, &[0.5]), None);
        assert_eq!(node.trigger(0.0, &[]), None);
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn rejects_excessive_slack() {
        let mut cfg = GcsConfig::for_network(1e-4, 1e-3, 1e-4);
        cfg.slack = cfg.kappa;
        let _ = GcsNode::new(cfg);
    }
}
