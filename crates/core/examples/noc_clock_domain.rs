//! Network-on-Chip clock domain: the paper's motivating application.
//!
//! The introduction motivates GCS as "the basis of a decentralized system
//! clock for a System-on-Chip or Network-on-Chip": what matters on a chip
//! is the phase difference between *neighboring* tiles that exchange
//! data, not between opposite corners. This example models an 4x4 tile
//! grid with link delays in the nanosecond range, replaces each tile by a
//! 4-node cluster (f = 1), crashes one tile-clock mid-run, and shows that
//! neighbor skew stays bounded by the Theorem 1.1 curve while the
//! corner-to-corner (global) skew is allowed to be much larger.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example noc_clock_domain
//! ```

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_metrics::skew::{
    cluster_local_skew_series, global_skew_series, intra_cluster_skew_series, FaultMask,
};
use ftgcs_topology::{analysis, generators, ClusterGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // On-chip numbers: drift 1e-5 (a good crystal), link delay 10 ns,
    // jitter 1 ns. Times are in seconds throughout.
    let (rho, d, u, f) = (1e-5, 1e-8, 1e-9, 1);
    let params = Params::practical(rho, d, u, f)?;

    let base = generators::grid(4, 4);
    let diameter = analysis::diameter(&base);
    let cg = ClusterGraph::new(base, 3 * f + 1, f);
    println!(
        "4x4 tile grid (diameter {diameter}), each tile a {}-node cluster: {} nodes, {} links",
        cg.cluster_size(),
        cg.physical().node_count(),
        cg.physical().edge_count()
    );
    println!(
        "round length T = {:.3e} s, trigger step kappa = {:.3e} s",
        params.t_round, params.kappa
    );

    let horizon = params.suggested_horizon(diameter);
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario.seed(0xCAFE);
    // One clock in the center tile dies mid-run; a corner tile hosts a
    // two-faced clock for the whole run. Both stay within f = 1 per
    // cluster.
    let center = cg.node_id(5, 0);
    let corner = cg.node_id(15, 0);
    scenario.with_fault(center, FaultKind::Crash { at: horizon / 2.0 });
    scenario.with_fault(
        corner,
        FaultKind::TwoFaced {
            amplitude: 0.5 * params.phi * params.tau3,
        },
    );

    println!("running for {horizon:.2e} simulated seconds...");
    let run = scenario.run_for(horizon);

    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let warmup = 5.0 * params.t_round;
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask).after(warmup);
    let local = cluster_local_skew_series(&run.trace, &cg, &mask).after(warmup);
    let global = global_skew_series(&run.trace, &mask).after(warmup);

    let local_max = local.max().unwrap_or(0.0);
    let global_max = global.max().unwrap_or(0.0);
    println!("\npost-warmup skews:");
    println!(
        "  intra-tile  : {:.3e} s (bound {:.3e} s)",
        intra.max().unwrap_or(0.0),
        params.intra_cluster_skew_bound()
    );
    println!(
        "  neighbor    : {local_max:.3e} s (bound {:.3e} s)  <- what a NoC cares about",
        params.local_skew_bound(diameter)
    );
    println!("  corner-to-corner: {global_max:.3e} s (may exceed neighbor skew)");

    assert!(local_max <= params.local_skew_bound(diameter));
    println!("\nneighbor skew bounded despite a mid-run crash and a two-faced clock.");
    Ok(())
}
