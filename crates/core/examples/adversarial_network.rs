//! Adversarial network control: drive the delay schedule mid-run.
//!
//! The model lets the adversary choose every message delay within
//! `[d−U, d]` — including switching regimes over time. The classic
//! schedule against master/slave synchronization is stretch (all delays
//! maximal) followed by compress (all minimal); experiment F2 shows it
//! breaking the tree baseline. This example drives the same adversary
//! against FTGCS through the public simulation handle
//! ([`Simulation::set_delay_distribution`]) and shows the trigger slack
//! absorbing it, then tightens the sampling grid mid-run
//! ([`Simulation::set_sample_interval`]) to zoom into the switch moment.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example adversarial_network
//! ```
//!
//! [`Simulation::set_delay_distribution`]: ftgcs_sim::engine::Simulation::set_delay_distribution
//! [`Simulation::set_sample_interval`]: ftgcs_sim::engine::Simulation::set_sample_interval

use ftgcs::params::Params;
use ftgcs::runner::{Scenario, ScenarioRun};
use ftgcs::FaultKind;
use ftgcs_metrics::skew::{cluster_local_skew_series, intra_cluster_skew_series, FaultMask};
use ftgcs_sim::network::DelayDistribution;
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_topology::{generators, ClusterGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rho, d, u, f) = (1e-4, 1e-3, 1e-4, 1);
    let params = Params::practical(rho, d, u, f)?;
    let diameter = 4;
    let cg = ClusterGraph::new(generators::line(diameter + 1), params.cluster_size, f);

    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario
        .seed(77)
        .delay_distribution(DelayDistribution::Maximal)
        .with_fault_per_cluster(&FaultKind::Silent, 1);
    let faulty = scenario.faulty_nodes();

    // Phase 1 — stretch: every message takes exactly d.
    let switch_at = 20.0;
    let horizon = 40.0;
    let mut sim = scenario.build();
    sim.run_until(SimTime::from_secs(switch_at));

    // Phase 2 — compress: every message takes d − U, and we sample the
    // clocks 10x more densely to watch the switch land.
    sim.set_delay_distribution(DelayDistribution::Minimal);
    sim.set_sample_interval(Some(SimDuration::from_secs(params.t_round / 20.0)));
    sim.run_until(SimTime::from_secs(horizon));

    let run = ScenarioRun {
        faulty,
        stats: sim.stats(),
        trace: sim.into_trace(),
    };
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let warm = 3.0 * params.t_round;
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask);
    let local = cluster_local_skew_series(&run.trace, &cg, &mask);

    let before = |s: &ftgcs_metrics::series::TimeSeries| {
        s.points()
            .iter()
            .filter(|(t, _)| *t >= warm && *t < switch_at)
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
    };
    let intra_before = before(&intra);
    let local_before = before(&local);
    let intra_after = intra.after(switch_at).max().unwrap_or(0.0);
    let local_after = local.after(switch_at).max().unwrap_or(0.0);

    println!("stretch phase (all delays = d):      intra {intra_before:.3e} s, local {local_before:.3e} s");
    println!(
        "compress phase (all delays = d - U): intra {intra_after:.3e} s, local {local_after:.3e} s"
    );
    println!(
        "bounds:                              intra {:.3e} s, local {:.3e} s",
        params.intra_cluster_skew_bound(),
        params.local_skew_bound(diameter)
    );

    assert!(intra_before.max(intra_after) <= params.intra_cluster_skew_bound());
    assert!(local_before.max(local_after) <= params.local_skew_bound(diameter));
    println!("\nthe regime switch that breaks master/slave sync (see the F2 experiment) is");
    println!("absorbed by FTGCS's trigger slack: both phases stay within the paper's bounds.");
    Ok(())
}
