//! Quickstart: synchronize a 4-cluster line under one Byzantine fault
//! per cluster and check the paper's skew bounds.
//!
//! This is the smallest end-to-end use of the public API:
//!
//! 1. derive parameters from the network characteristics `(ρ, d, U, f)`,
//! 2. augment a base graph into a cluster graph (`3f+1` clique per node),
//! 3. run the scenario with faults injected,
//! 4. measure intra-cluster, local (inter-cluster), and global skew.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_metrics::skew::{
    cluster_local_skew_series, global_skew_series, intra_cluster_skew_series, FaultMask,
};
use ftgcs_topology::{generators, ClusterGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Network characteristics: drift 1e-4, delay 1 ms, uncertainty 0.1 ms,
    // and a budget of f = 1 Byzantine node per cluster.
    let (rho, d, u, f) = (1e-4, 1e-3, 1e-4, 1);
    let params = Params::practical(rho, d, u, f)?;

    println!("derived parameters:");
    println!("  mu    = {:.3e}   (fast-mode boost, c2*rho)", params.mu);
    println!("  phi   = {:.3e}   (amortization gain, 1/c1)", params.phi);
    println!("  E     = {:.3e} s (steady-state pulse diameter)", params.e);
    println!("  T     = {:.3e} s (round length)", params.t_round);
    println!("  delta = {:.3e} s (trigger slack)", params.delta);
    println!("  kappa = {:.3e} s (trigger step)", params.kappa);

    // A line of 4 clusters, each a clique of k = 3f+1 = 4 nodes,
    // adjacent cliques fully bipartitely connected.
    let base = generators::line(4);
    let cg = ClusterGraph::new(base, 3 * f + 1, f);
    println!(
        "\ntopology: line(4) augmented -> {} nodes, {} edges",
        cg.physical().node_count(),
        cg.physical().edge_count()
    );

    // One silent (crashed-from-start) node in every cluster: the worst
    // *benign* case, still within the f-per-cluster budget.
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario.seed(2019);
    scenario.with_fault_per_cluster(&FaultKind::Silent, 1);
    assert!(!scenario.faults_exceed_budget());

    let horizon = params.suggested_horizon(3);
    println!("running for {horizon:.1} simulated seconds...");
    let run = scenario.run_for(horizon);

    // Measure skews over the correct nodes only, after a warm-up of a few
    // rounds so the cluster algorithm has converged.
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let warmup = 5.0 * params.t_round;

    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask).after(warmup);
    let local = cluster_local_skew_series(&run.trace, &cg, &mask).after(warmup);
    let global = global_skew_series(&run.trace, &mask).after(warmup);

    let intra_bound = params.intra_cluster_skew_bound();
    let local_bound = params.local_skew_bound(3);

    println!("\nmeasured skews (post-warmup maxima):");
    println!(
        "  intra-cluster: {:.3e} s  (paper bound 2*theta_g*E = {:.3e} s)",
        intra.max().unwrap_or(0.0),
        intra_bound
    );
    println!(
        "  local (adjacent cluster clocks): {:.3e} s  (paper bound {:.3e} s)",
        local.max().unwrap_or(0.0),
        local_bound
    );
    println!(
        "  global: {:.3e} s  (grows with diameter, bound {:.3e} s)",
        global.max().unwrap_or(0.0),
        params.global_skew_bound(3)
    );

    assert!(
        intra.max().unwrap_or(0.0) <= intra_bound,
        "intra-cluster skew exceeded the Corollary 3.2 bound"
    );
    assert!(
        local.max().unwrap_or(0.0) <= local_bound,
        "local skew exceeded the Theorem 1.1 bound"
    );
    println!("\nall paper bounds hold.");
    Ok(())
}
