//! Scaling on a line: local skew vs network diameter.
//!
//! Theorem 1.1 promises local skew `O((ρd + U)·log D)` — *logarithmic* in
//! the diameter — while the global skew necessarily grows like `Θ(D)`.
//! This example sweeps line topologies of increasing diameter, injects an
//! adversarial clock-rate split (fast half / slow half, the gradient
//! worst case), and reports both skews next to the paper's guide curves.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example scaling_line
//! ```

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{cluster_local_skew_series, global_skew_series, FaultMask};
use ftgcs_metrics::stats::fit_log2;
use ftgcs_metrics::table::Table;
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::{generators, ClusterGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rho, d, u, f) = (1e-4, 1e-3, 1e-4, 1);
    let params = Params::practical(rho, d, u, f)?;

    let mut table = Table::new(&[
        "D",
        "nodes",
        "local max (s)",
        "local bound (s)",
        "global max (s)",
        "global bound (s)",
    ]);
    let mut local_points = Vec::new();

    for diameter in [2usize, 4, 8, 16] {
        let clusters = diameter + 1;
        let cg = ClusterGraph::new(generators::line(clusters), params.cluster_size, f);
        let n = cg.physical().node_count();

        let mut scenario = Scenario::new(cg.clone(), params.clone());
        scenario.seed(diameter as u64);
        // Adversarial drift: the left half runs at the maximum hardware
        // rate, the right half at the minimum. This is the schedule that
        // stretches skew across the line.
        for c in 0..clusters {
            let rate = if c < clusters / 2 {
                RateModel::Constant { frac: 1.0 }
            } else {
                RateModel::Constant { frac: 0.0 }
            };
            for slot in 0..cg.cluster_size() {
                scenario.rate_override(cg.node_id(c, slot), rate.clone());
            }
        }

        let run = scenario.run_for(params.suggested_horizon(diameter));
        let mask = FaultMask::none(n);
        let warmup = 5.0 * params.t_round;
        let local = cluster_local_skew_series(&run.trace, &cg, &mask)
            .after(warmup)
            .max()
            .unwrap_or(0.0);
        let global = global_skew_series(&run.trace, &mask)
            .after(warmup)
            .max()
            .unwrap_or(0.0);

        local_points.push((diameter as f64, local));
        table.row(&[
            diameter.to_string(),
            n.to_string(),
            format!("{local:.3e}"),
            format!("{:.3e}", params.local_skew_bound(diameter)),
            format!("{global:.3e}"),
            format!("{:.3e}", params.global_skew_bound(diameter)),
        ]);
    }

    println!("{}", table.render());

    // Shape check: fit local skew against log2(D). A gradient algorithm
    // shows a mild (logarithmic) growth; a master/slave baseline would be
    // linear (see the f2 bench for the side-by-side comparison).
    let fit = fit_log2(&local_points);
    println!(
        "local skew ~ {:.3e} + {:.3e}*log2(D)   (r^2 = {:.3})",
        fit.intercept, fit.slope, fit.r_squared
    );
    println!("global skew grows with D while local skew stays near-flat: the gradient property.");
    Ok(())
}
