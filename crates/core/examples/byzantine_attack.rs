//! Byzantine attack gallery: run every implemented fault strategy against
//! a small cluster graph and report whether the skew bounds survive.
//!
//! The paper's premise (Theorem 1.1) is that at most `f` nodes per
//! cluster are faulty, with *arbitrary* behavior. This example exercises
//! the concrete attack library — silent, crash, random pulser, two-faced,
//! skew-puller, stealthy rusher, level flooder — and verifies that the
//! intra-cluster (Corollary 3.2) and local-skew (Theorem 1.1) bounds hold
//! under each, and that exceeding the budget (`f+1` faults in one
//! cluster) visibly breaks them.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example byzantine_attack
//! ```

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_metrics::skew::{cluster_local_skew_series, intra_cluster_skew_series, FaultMask};
use ftgcs_metrics::table::Table;
use ftgcs_topology::{generators, ClusterGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rho, d, u, f) = (1e-4, 1e-3, 1e-4, 1);
    let params = Params::practical(rho, d, u, f)?;
    let diameter = 2;

    let attacks: Vec<(&str, FaultKind)> = vec![
        ("silent", FaultKind::Silent),
        (
            "crash@mid",
            FaultKind::Crash {
                at: 0.5 * params.suggested_horizon(diameter),
            },
        ),
        (
            "random-pulser",
            FaultKind::RandomPulser {
                mean_interval: params.t_round / 3.0,
            },
        ),
        (
            "two-faced",
            FaultKind::TwoFaced {
                amplitude: 0.5 * params.phi * params.tau3,
            },
        ),
        (
            "skew-puller",
            FaultKind::SkewPuller {
                offset: -2.0 * params.e,
            },
        ),
        (
            "stealthy-rusher",
            FaultKind::StealthyRusher { extra_rate: 0.01 },
        ),
        ("level-flooder", FaultKind::LevelFlooder { level_step: 100 }),
    ];

    let intra_bound = params.intra_cluster_skew_bound();
    let local_bound = params.local_skew_bound(diameter);
    println!(
        "bounds: intra-cluster {:.3e} s, local {:.3e} s\n",
        intra_bound, local_bound
    );

    let mut table = Table::new(&[
        "attack",
        "faults/cluster",
        "intra max (s)",
        "local max (s)",
        "within bounds",
    ]);

    for &(name, ref kind) in &attacks {
        let (intra, local) = run_attack(&params, kind, 1, diameter);
        let ok = intra <= intra_bound && local <= local_bound;
        table.row(&[
            name.to_string(),
            "1 (= f)".to_string(),
            format!("{intra:.3e}"),
            format!("{local:.3e}"),
            if ok { "yes".into() } else { "NO".into() },
        ]);
        assert!(ok, "attack `{name}` broke a bound within the fault budget");
    }

    // Now break the premise: two skew-pullers in a k = 4, f = 1 cluster
    // defeat the trimmed midpoint (only f extremes are discarded).
    let (intra, local) = run_attack(
        &params,
        &FaultKind::SkewPuller {
            offset: -2.0 * params.e,
        },
        2,
        diameter,
    );
    let ok = intra <= intra_bound && local <= local_bound;
    table.row(&[
        "skew-puller".to_string(),
        "2 (> f)".to_string(),
        format!("{intra:.3e}"),
        format!("{local:.3e}"),
        if ok {
            "yes (lucky)".into()
        } else {
            "NO (expected)".into()
        },
    ]);

    println!("{}", table.render());
    println!("every in-budget attack stayed within the paper's bounds.");
    Ok(())
}

/// Runs one attack with `per_cluster` faulty nodes in every cluster and
/// returns the post-warmup (intra, local) skew maxima.
fn run_attack(
    params: &Params,
    kind: &FaultKind,
    per_cluster: usize,
    diameter: usize,
) -> (f64, f64) {
    let cg = ClusterGraph::new(
        generators::line(diameter + 1),
        params.cluster_size,
        params.f,
    );
    let mut scenario = Scenario::new(cg.clone(), params.clone());
    scenario.seed(7).with_fault_per_cluster(kind, per_cluster);
    let run = scenario.run_for(params.suggested_horizon(diameter));

    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let warmup = 5.0 * params.t_round;
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask).after(warmup);
    let local = cluster_local_skew_series(&run.trace, &cg, &mask).after(warmup);
    (intra.max().unwrap_or(0.0), local.max().unwrap_or(0.0))
}
