//! The complete FTGCS node: ClusterSync + estimators + InterclusterSync +
//! global-max catch-up, assembled as one [`Behavior`].
//!
//! Per physical node `v` in cluster `C` the behavior runs:
//!
//! * an **active** [`ClusterInstance`] on the main clock track — `L_v`;
//! * a **silent** [`ClusterInstance`] per adjacent cluster `B` on its own
//!   track — the estimate `L̃_vB` (Corollary 3.5);
//! * **InterclusterSync** (Algorithm 2): at every round boundary
//!   `t_v(r)` the fast/slow triggers are evaluated on
//!   `(L_v, {L̃_vB})` and `γ_v` is set for the round;
//! * optionally the **max estimator** `M_v` with Theorem C.3's catch-up
//!   rule.
//!
//! The division of labor mirrors the paper's black-box composition: the
//! cluster layer treats `(1+µγ_v)h_v` as its hardware clock, and the GCS
//! layer sees only clock-difference estimates.

use std::sync::Arc;

use ftgcs_sim::engine::Ctx;
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};

use crate::cluster::{ClusterInstance, InstanceEvent, InstanceStats, TIMER_ROUND_END};
use crate::global_max::{MaxEstimator, TIMER_LEVEL};
use crate::messages::Msg;
use crate::params::Params;
use crate::triggers::{evaluate, Mode, ModePolicy};

/// Trace row kind for per-round mode decisions:
/// `values = [cluster, round, gamma, ft, st, own_logical, max_estimate]`
/// (`max_estimate = -1` when the estimator is disabled).
pub const ROW_MODE: &str = "mode";

/// Static wiring of one FTGCS node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Shared algorithm parameters.
    pub params: Arc<Params>,
    /// Base-graph id of this node's cluster.
    pub cluster_id: usize,
    /// Members of this node's cluster (including the node itself), in slot
    /// order.
    pub members: Vec<NodeId>,
    /// Adjacent clusters: `(cluster_id, members)` in a fixed order.
    pub neighbors: Vec<(usize, Vec<NodeId>)>,
    /// Initial logical clock value of each adjacent cluster (aligned with
    /// `neighbors`). Estimator tracks start here — the natural
    /// generalization of the paper's perfect-initialization assumption
    /// (estimates start exact). Empty means all zeros.
    pub neighbor_offsets: Vec<f64>,
    /// Policy when neither trigger fires.
    pub mode_policy: ModePolicy,
    /// Whether to run the global-max estimator (needed by
    /// [`ModePolicy::CatchUp`]).
    pub enable_max_estimator: bool,
    /// Initial logical clock value (models bounded initialization skew;
    /// keep within `E` for proper executions).
    pub initial_offset: f64,
}

/// The FTGCS node behavior.
///
/// Track layout (observable via `Simulation::track_value_of`):
/// track 0 is `L_v`; track `1+i` is the estimate of
/// `config.neighbors[i]`; the last track (if enabled) is `M_v`.
#[derive(Debug)]
pub struct FtGcsNode {
    cfg: NodeConfig,
    own: ClusterInstance,
    estimators: Vec<ClusterInstance>,
    max_est: Option<MaxEstimator>,
    mode: Mode,
}

impl FtGcsNode {
    /// Creates the behavior for one node.
    ///
    /// # Panics
    ///
    /// Panics if `members` is smaller than `3f+1`.
    #[must_use]
    #[allow(clippy::int_plus_one)] // mirror the paper's k >= 3f+1 form
    pub fn new(cfg: NodeConfig) -> Self {
        assert!(
            cfg.members.len() >= 3 * cfg.params.f + 1,
            "correct nodes need k >= 3f+1 cluster members"
        );
        let own = ClusterInstance::new(
            0,
            TrackId::MAIN,
            cfg.cluster_id,
            cfg.members.clone(),
            false,
            Arc::clone(&cfg.params),
        );
        FtGcsNode {
            own,
            estimators: Vec::new(),
            max_est: None,
            mode: Mode::Slow,
            cfg,
        }
    }

    /// The number of clock tracks this node will create (for observers).
    #[must_use]
    pub fn track_count(&self) -> usize {
        1 + self.cfg.neighbors.len() + usize::from(self.cfg.enable_max_estimator)
    }

    /// Robustness counters of the own-cluster instance.
    #[must_use]
    pub fn own_stats(&self) -> InstanceStats {
        self.own.stats()
    }

    /// The current InterclusterSync mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// InterclusterSync: evaluate triggers at a round boundary `t_v(r)`
    /// and commit `γ_v` for the round (Algorithm 2 + Theorem C.3).
    fn choose_mode(&mut self, ctx: &mut Ctx<'_, Msg>, new_round: u64) {
        let p = &self.cfg.params;
        let own_l = ctx.track_value(TrackId::MAIN);
        let estimates: Vec<f64> = self
            .estimators
            .iter()
            .map(|e| ctx.track_value(e.track()))
            .collect();
        let outcome = evaluate(own_l, &estimates, p.kappa, p.delta);
        // Keep M_v >= L_v before it is consulted.
        let max_value = if let Some(est) = &mut self.max_est {
            est.observe_own_clock(ctx, own_l);
            est.value(ctx)
        } else {
            -1.0
        };
        self.mode = if outcome.fast {
            Mode::Fast
        } else if outcome.slow {
            Mode::Slow
        } else {
            match self.cfg.mode_policy {
                ModePolicy::Sticky => self.mode,
                ModePolicy::DefaultSlow => Mode::Slow,
                ModePolicy::CatchUp => {
                    if self.max_est.is_some() && own_l <= max_value - p.catch_up_c * p.delta {
                        Mode::Fast
                    } else {
                        Mode::Slow
                    }
                }
            }
        };
        let factor = match self.mode {
            Mode::Fast => 1.0 + p.mu,
            Mode::Slow => 1.0,
        };
        self.own.set_gamma_factor(factor);
        ctx.emit(
            ROW_MODE,
            vec![
                self.cfg.cluster_id as f64,
                new_round as f64,
                f64::from(self.mode == Mode::Fast),
                f64::from(outcome.fast),
                f64::from(outcome.slow),
                own_l,
                max_value,
            ],
        );
    }

    /// Routes a real pulse to the instance observing the sender's cluster.
    fn route_pulse(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId) {
        if self.cfg.members.contains(&from) {
            self.own.on_pulse(ctx, from);
            return;
        }
        for est in &mut self.estimators {
            if est.observes(from) {
                est.on_pulse(ctx, from);
                return;
            }
        }
        // A pulse from a node in no observed cluster: impossible for
        // correct senders (the graph only connects adjacent clusters);
        // ignore defensively.
    }
}

impl FtGcsNode {
    /// Starts the node mid-run at round `round`: jumps `L_v` to
    /// `initial_offset`, starts the own-cluster instance and every
    /// estimator at `round`, and boots a fresh max estimator.
    ///
    /// This is [`Behavior::on_start`] generalized to a non-initial round
    /// — the entry point the fault-lifecycle layer uses when a crashed
    /// node rejoins an execution in progress. The caller must hand this
    /// node a context whose extra tracks have been dropped
    /// (`Ctx::reset_tracks`), so the track-layout contract (track `1+i`
    /// is estimator `i`) holds again.
    pub fn start_at_round(&mut self, ctx: &mut Ctx<'_, Msg>, round: u64) {
        if self.cfg.initial_offset != 0.0 {
            ctx.jump_track(TrackId::MAIN, self.cfg.initial_offset);
        }
        self.own.start_at(ctx, round);
        // One silent estimator per adjacent cluster, on its own track.
        for (i, (cluster_id, members)) in self.cfg.neighbors.iter().enumerate() {
            let init = self.cfg.neighbor_offsets.get(i).copied().unwrap_or(0.0);
            let track = ctx.new_track(init, 1.0);
            debug_assert_eq!(track.index(), 1 + i, "track layout contract");
            let mut inst = ClusterInstance::new(
                (i + 1) as u32,
                track,
                *cluster_id,
                members.clone(),
                true,
                Arc::clone(&self.cfg.params),
            );
            inst.start_at(ctx, round);
            self.estimators.push(inst);
        }
        if self.cfg.enable_max_estimator {
            let p = &self.cfg.params;
            let track = ctx.new_track(0.0, 1.0 / (1.0 + p.rho));
            let mut observable: Vec<Vec<NodeId>> = vec![self.cfg.members.clone()];
            observable.extend(self.cfg.neighbors.iter().map(|(_, m)| m.clone()));
            let est = MaxEstimator::new(track, p.level_unit, p.d - p.u, p.f, observable);
            est.start(ctx);
            self.max_est = Some(est);
        }
    }
}

impl Behavior<Msg> for FtGcsNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.start_at_round(ctx, 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        match *msg {
            Msg::Pulse => self.route_pulse(ctx, from),
            Msg::VirtualPulse { instance } => {
                // Only trust our own virtual pulses (self-loopback).
                if from == ctx.my_id() {
                    let idx = instance as usize;
                    if idx >= 1 && idx <= self.estimators.len() {
                        self.estimators[idx - 1].on_virtual_pulse(ctx);
                    }
                }
            }
            Msg::Level { level } => {
                if let Some(est) = &mut self.max_est {
                    est.on_level(ctx, from, level);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        if tag.kind == TIMER_LEVEL {
            if let Some(est) = &mut self.max_est {
                est.on_timer(ctx, tag);
            }
            return;
        }
        if tag.a == 0 {
            // Own-cluster instance. At round boundaries, Algorithm 2 first
            // re-evaluates the mode so the new gamma applies to the round
            // that starts now.
            if tag.kind == TIMER_ROUND_END {
                self.choose_mode(ctx, tag.b + 1);
            }
            let event = self.own.on_timer(ctx, tag);
            debug_assert!(
                tag.kind != TIMER_ROUND_END || matches!(event, InstanceEvent::RoundEnded { .. })
            );
        } else {
            let idx = (tag.a - 1) as usize;
            self.estimators[idx].on_timer(ctx, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Arc<Params> {
        Arc::new(Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap())
    }

    fn config() -> NodeConfig {
        NodeConfig {
            params: params(),
            cluster_id: 0,
            members: (0..4).map(NodeId).collect(),
            neighbors: vec![(1, (4..8).map(NodeId).collect())],
            neighbor_offsets: Vec::new(),
            mode_policy: ModePolicy::CatchUp,
            enable_max_estimator: true,
            initial_offset: 0.0,
        }
    }

    #[test]
    fn track_layout_contract() {
        let node = FtGcsNode::new(config());
        assert_eq!(node.track_count(), 3); // main + 1 estimator + max
        assert_eq!(node.mode(), Mode::Slow);
        let mut cfg = config();
        cfg.enable_max_estimator = false;
        cfg.neighbors.clear();
        assert_eq!(FtGcsNode::new(cfg).track_count(), 1);
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn rejects_undersized_cluster() {
        let mut cfg = config();
        cfg.members.truncate(3);
        let _ = FtGcsNode::new(cfg);
    }
}
