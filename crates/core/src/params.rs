//! Parameter derivation (paper Sections 3–4, Appendix B.3, Eq. (5)).
//!
//! Given the physical constants — drift bound `ρ`, maximum delay `d`, delay
//! uncertainty `U` — and the fault budget `f`, this module derives every
//! constant the algorithm needs:
//!
//! * the rate-control constants `µ = c₂·ρ` and `ϕ = 1/c₁`,
//! * the steady-state pulse-diameter bound `E = β/(1−α)` (Eq. 11),
//! * the phase durations `τ₁ = ϑ_g E`, `τ₂ = ϑ_g(E+d)`,
//!   `τ₃ = ϑ_g(E+U)/ϕ` and round length `T` (Eq. 10),
//! * the trigger slack `δ = (k+5)E` and step `κ = 3δ` (Lemma 4.8),
//!
//! and checks feasibility (`α < 1`, `0 < ϕ < 1`, `c₂ ≥ 16`). Two presets
//! are provided: [`Params::paper`] uses the exact constants of Eq. (5)
//! (`c₂ = 32`, `ε = 1/4096`), which are only feasible for
//! `ρ ≲ 2·10⁻⁶`; [`Params::practical`] keeps the same structure with a
//! configurable margin `ε` (default `0.1`), feasible for realistic quartz
//! drifts (`ρ ≈ 10⁻⁴`).

use std::error::Error;
use std::fmt;

/// Why a parameter set is infeasible.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A physical input was non-positive, NaN, or inconsistent (`U > d`).
    InvalidInput(String),
    /// The contraction factor `α` is at least 1, so the Lynch–Welch
    /// recursion `e(r+1) = α·e(r) + β` does not converge (paper, Eq. 11).
    /// Decrease `ρ`, decrease `c₂`, or increase the margin `ε`.
    NotContracting {
        /// The computed `α ≥ 1`.
        alpha: f64,
    },
    /// A derived constant violated its range (e.g. `ϕ ∉ (0,1)`).
    DerivedOutOfRange(String),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ParamError::NotContracting { alpha } => write!(
                f,
                "round-error recursion does not contract (alpha = {alpha:.6} >= 1); \
                 reduce rho or c2, or increase epsilon"
            ),
            ParamError::DerivedOutOfRange(msg) => {
                write!(f, "derived constant out of range: {msg}")
            }
        }
    }
}

impl Error for ParamError {}

/// Complete, validated parameter set for one deployment.
///
/// Constructed by [`Params::paper`], [`Params::practical`], or
/// [`ParamsBuilder`]; all fields are read-only afterwards.
///
/// # Examples
///
/// ```
/// use ftgcs::params::Params;
///
/// // 1 ms links with 100 µs jitter, quartz-grade drift, f = 1.
/// let p = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
/// assert!(p.alpha < 1.0);
/// assert!(p.e > 0.0);
/// assert!(p.kappa > p.delta);
/// // Eq. (10): the round is dominated by the amortization phase tau3.
/// assert!(p.tau3 > 10.0 * (p.tau1 + p.tau2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Hardware drift bound ρ.
    pub rho: f64,
    /// Maximum message delay `d` (seconds).
    pub d: f64,
    /// Delay uncertainty `U` (seconds).
    pub u: f64,
    /// Fault budget per cluster `f`.
    pub f: usize,
    /// Cluster size `k ≥ 3f+1`.
    pub cluster_size: usize,
    /// Amortization constant `c₁ = 1/ϕ` (Eq. 5; `Θ(1/ρ)`).
    pub c1: f64,
    /// Rate-boost constant `c₂` with `µ = c₂·ρ` (paper: 32).
    pub c2: f64,
    /// Contraction margin `ε` (paper: 1/4096).
    pub epsilon: f64,
    /// Fast-mode rate boost `µ = c₂·ρ`.
    pub mu: f64,
    /// Amortization gain `ϕ = 1/c₁ ∈ (0, 1)`.
    pub phi: f64,
    /// `ϑ_g = (1+ρ)(1+µ)`: nominal clock rate bound (Eq. 6 context).
    pub theta_g: f64,
    /// `ϑ_max = (1 + 2ϕ/(1−ϕ))(1+µ)(1+ρ)`: absolute logical rate bound
    /// (Notation B.5).
    pub theta_max: f64,
    /// Contraction factor of the round-error recursion (Eq. 11).
    pub alpha: f64,
    /// Additive term of the round-error recursion (Eq. 11).
    pub beta: f64,
    /// Steady-state pulse-diameter bound `E = β/(1−α)`.
    pub e: f64,
    /// Phase 1 duration `τ₁ = ϑ_g·E` (logical time).
    pub tau1: f64,
    /// Phase 2 duration `τ₂ = ϑ_g·(E+d)`.
    pub tau2: f64,
    /// Phase 3 duration `τ₃ = ϑ_g·(E+U)/ϕ`.
    pub tau3: f64,
    /// Round length `T = τ₁+τ₂+τ₃`.
    pub t_round: f64,
    /// Unanimity constant `k` of Lemma 3.6 (rounds of unanimity required
    /// before the amortized-rate bounds hold).
    pub k_rounds: usize,
    /// Trigger slack `δ = (k_rounds + 5)·E` (Lemma 4.8).
    pub delta: f64,
    /// Trigger step `κ = 3δ` (Lemma 4.8).
    pub kappa: f64,
    /// Catch-up threshold constant `c` of Theorem C.3 (fast mode when
    /// `L_v ≤ M_v − c·δ`).
    pub catch_up_c: f64,
    /// Max-estimator level granularity (seconds of logical time per level
    /// pulse). See `global_max` module docs for the safety argument.
    pub level_unit: f64,
}

impl Params {
    /// The paper's exact constants (Eq. 5): `c₂ = 32`, `ε = 1/4096`,
    /// `c₁ = ((1/2)−ε)/((1+c₂)ρ)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::NotContracting`] unless `ρ` is *very* small
    /// (≈ `2·10⁻⁶` or less with these constants) — the paper's
    /// "sufficiently small ρ" is quantitatively demanding.
    pub fn paper(rho: f64, d: f64, u: f64, f: usize) -> Result<Params, ParamError> {
        ParamsBuilder::new(rho, d, u, f)
            .c2(32.0)
            .epsilon(1.0 / 4096.0)
            .build()
    }

    /// The paper's construction with a relaxed contraction margin
    /// (`ε = 0.1`), feasible for quartz-grade drifts (`ρ ≲ 5·10⁻⁴`).
    ///
    /// # Errors
    ///
    /// Returns an error if the inputs are invalid or the combination is
    /// still infeasible.
    pub fn practical(rho: f64, d: f64, u: f64, f: usize) -> Result<Params, ParamError> {
        ParamsBuilder::new(rho, d, u, f).build()
    }

    /// Starts a custom parameter build.
    #[must_use]
    pub fn builder(rho: f64, d: f64, u: f64, f: usize) -> ParamsBuilder {
        ParamsBuilder::new(rho, d, u, f)
    }

    /// The minimum message delay `d − U`: the conservative-lookahead
    /// floor of the per-cluster scheduler partition. Any message
    /// between clusters takes at least this long, so a scheduler shard
    /// that is globally earliest can advance this far before other
    /// shards could affect it.
    ///
    /// For the single-threaded schedulers this is *descriptive*: the
    /// sharded queue ([`ftgcs_sim::shard`]) derives its horizon from
    /// actual queued event keys, so the floor is enforced by the delay
    /// model itself. The **parallel** executor
    /// ([`crate::runner::Scenario::parallel`]) consumes it directly as
    /// the width of its inter-barrier windows — a larger floor means
    /// fewer barriers and longer uninterrupted per-shard runs, so this
    /// is the knob that decides how well parallel sharding scales.
    #[must_use]
    pub fn lookahead(&self) -> f64 {
        self.d - self.u
    }

    /// Predicted intra-cluster skew bound `2·ϑ_g·E` (Corollary 3.2).
    #[must_use]
    pub fn intra_cluster_skew_bound(&self) -> f64 {
        2.0 * self.theta_g * self.e
    }

    /// Predicted cluster-clock estimate error bound `E` (Corollary 3.5).
    #[must_use]
    pub fn estimate_error_bound(&self) -> f64 {
        self.e
    }

    /// The effective GCS drift/boost parameters of Proposition 4.11:
    /// `ρ̄ = (1+ϕ)(1+µ/4) − 1` and `µ̄ = (1+ϕ)(1+7µ/8) − 1`.
    #[must_use]
    pub fn gcs_axiom_rates(&self) -> (f64, f64) {
        let rho_bar = (1.0 + self.phi) * (1.0 + self.mu / 4.0) - 1.0;
        let mu_bar = (1.0 + self.phi) * (1.0 + 7.0 * self.mu / 8.0) - 1.0;
        (rho_bar, mu_bar)
    }

    /// Predicted global skew bound: `c·δ·(D+1)` plus the max-estimator lag
    /// (Theorem C.3; a guide curve, not a tight constant).
    #[must_use]
    pub fn global_skew_bound(&self, diameter: usize) -> f64 {
        let d_term = (diameter as f64 + 1.0) * self.d;
        (self.catch_up_c + 2.0) * self.delta
            + self.level_unit
            + 2.0 * d_term
            + self.delta * diameter as f64
    }

    /// Predicted cluster-level local skew bound
    /// `2κ·(⌈log_σ(S/κ)⌉ + 1)` with base `σ = µ̄/ρ̄` (Theorem 4.10; the
    /// explicit constants follow the shape of [KLLO'10]).
    #[must_use]
    pub fn local_skew_bound(&self, diameter: usize) -> f64 {
        let (rho_bar, mu_bar) = self.gcs_axiom_rates();
        let sigma = mu_bar / rho_bar;
        debug_assert!(sigma > 1.0, "axiom A4 requires mu_bar/rho_bar > 1");
        let s = self.global_skew_bound(diameter);
        let levels = (s / self.kappa).max(1.0).log(sigma).ceil().max(0.0) + 1.0;
        2.0 * self.kappa * levels
    }

    /// Predicted *node-level* local skew bound: cluster-level bound plus
    /// twice the intra-cluster bound (proof of Theorem 1.1).
    #[must_use]
    pub fn node_local_skew_bound(&self, diameter: usize) -> f64 {
        self.local_skew_bound(diameter) + 2.0 * self.intra_cluster_skew_bound()
    }

    /// The theoretical pulse-diameter recursion `e(r+1) = α·e(r) + β`
    /// (Corollary B.13), evaluated for `rounds` rounds from `e1`.
    #[must_use]
    pub fn error_recursion(&self, e1: f64, rounds: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(rounds);
        let mut e = e1;
        for _ in 0..rounds {
            out.push(e);
            e = self.alpha * e + self.beta;
        }
        out
    }

    /// Coefficients `(α, β)` of the tightened recursion for *unanimous*
    /// clusters (Claim B.15, Eq. 12) with nominal rates in `[ζ, ζ·ϑ_u]`,
    /// `ϑ_u = 1+ρ`. `fast = true` uses `ζ = (1+ϕ)(1+µ)`, else
    /// `ζ = 1+ϕ`.
    #[must_use]
    pub fn unanimous_recursion(&self, fast: bool) -> (f64, f64) {
        let theta = 1.0 + self.rho;
        let zeta_max = (1.0 + self.phi) * (1.0 + self.mu);
        let zeta = if fast { zeta_max } else { 1.0 + self.phi };
        let gamma = (zeta_max / zeta) * (self.theta_g / theta) * (theta - 1.0);
        let alpha = (2.0 * theta * theta + 5.0 * theta - 5.0)
            / (2.0 * (theta + 1.0) * (1.0 - gamma))
            + gamma / (1.0 - gamma) * (1.0 + self.c1);
        let beta = gamma / (1.0 - gamma) * self.d
            + ((3.0 * theta - 1.0) + gamma * self.c1) * self.u / (1.0 - gamma);
        (alpha, beta)
    }

    /// Steady-state pulse diameter `e∞ = β/(1−α)` of the unanimous
    /// recursion (used by Lemma 3.6's rate bounds).
    #[must_use]
    pub fn unanimous_steady_state(&self, fast: bool) -> f64 {
        let (alpha, beta) = self.unanimous_recursion(fast);
        debug_assert!(alpha < 1.0);
        beta / (1.0 - alpha)
    }

    /// Amortized-rate bounds of Lemma 3.6: returns
    /// `(fast_min, slow_min, slow_max)` =
    /// `((1+ϕ)(1+⅞µ), (1+ϕ)(1−⅛µ), (1+ϕ)(1+⅛µ))`.
    #[must_use]
    pub fn unanimous_rate_bounds(&self) -> (f64, f64, f64) {
        let base = 1.0 + self.phi;
        (
            base * (1.0 + 7.0 * self.mu / 8.0),
            base * (1.0 - self.mu / 8.0),
            base * (1.0 + self.mu / 8.0),
        )
    }

    /// A suggested simulated-time horizon for experiments on a graph of
    /// the given diameter: stabilization takes `O(S/µ)` (paper §A), plus a
    /// few rounds of cluster convergence.
    #[must_use]
    pub fn suggested_horizon(&self, diameter: usize) -> f64 {
        let stabilize = self.global_skew_bound(diameter) / (self.mu / 2.0);
        10.0 * self.t_round + stabilize
    }
}

/// Builder for [`Params`] with custom constants.
///
/// # Examples
///
/// ```
/// use ftgcs::params::Params;
///
/// let p = Params::builder(1e-4, 1e-3, 1e-4, 1)
///     .c2(64.0)
///     .epsilon(0.15)
///     .k_rounds(4)
///     .build()
///     .unwrap();
/// assert_eq!(p.c2, 64.0);
/// assert!((p.mu - 64.0 * 1e-4).abs() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    rho: f64,
    d: f64,
    u: f64,
    f: usize,
    cluster_size: Option<usize>,
    c2: f64,
    epsilon: f64,
    k_rounds: usize,
    catch_up_c: f64,
    level_unit: Option<f64>,
}

impl ParamsBuilder {
    /// Starts a build from the physical constants and fault budget.
    #[must_use]
    pub fn new(rho: f64, d: f64, u: f64, f: usize) -> Self {
        ParamsBuilder {
            rho,
            d,
            u,
            f,
            cluster_size: None,
            c2: 32.0,
            epsilon: 0.1,
            k_rounds: 6,
            catch_up_c: 8.0,
            level_unit: None,
        }
    }

    /// Sets the cluster size `k` (default: the minimum `3f+1`).
    #[must_use]
    pub fn cluster_size(mut self, k: usize) -> Self {
        self.cluster_size = Some(k);
        self
    }

    /// Sets `c₂` (`µ = c₂·ρ`; paper: 32; must be ≥ 16 for Prop. 4.11).
    #[must_use]
    pub fn c2(mut self, c2: f64) -> Self {
        self.c2 = c2;
        self
    }

    /// Sets the contraction margin `ε ∈ (0, 1/2)` (paper: 1/4096).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the unanimity constant of Lemma 3.6 (default 6).
    #[must_use]
    pub fn k_rounds(mut self, k: usize) -> Self {
        self.k_rounds = k;
        self
    }

    /// Sets the catch-up threshold constant of Theorem C.3 (default 8).
    #[must_use]
    pub fn catch_up_c(mut self, c: f64) -> Self {
        self.catch_up_c = c;
        self
    }

    /// Sets the max-estimator level granularity (default `δ`).
    #[must_use]
    pub fn level_unit(mut self, unit: f64) -> Self {
        self.level_unit = Some(unit);
        self
    }

    /// Derives and validates the full parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if inputs are invalid, `α ≥ 1`
    /// (non-contracting), or a derived constant is out of range.
    pub fn build(self) -> Result<Params, ParamError> {
        let ParamsBuilder {
            rho,
            d,
            u,
            f,
            cluster_size,
            c2,
            epsilon,
            k_rounds,
            catch_up_c,
            level_unit,
        } = self;
        if !rho.is_finite() || rho <= 0.0 {
            return Err(ParamError::InvalidInput(format!(
                "rho must be positive and finite, got {rho}"
            )));
        }
        if !d.is_finite() || d <= 0.0 || !u.is_finite() || u < 0.0 || u > d {
            return Err(ParamError::InvalidInput(format!(
                "need 0 < d and 0 <= U <= d, got d={d}, U={u}"
            )));
        }
        if !(0.0..0.5).contains(&epsilon) || epsilon == 0.0 {
            return Err(ParamError::InvalidInput(format!(
                "epsilon must lie in (0, 1/2), got {epsilon}"
            )));
        }
        if c2 < 16.0 {
            return Err(ParamError::InvalidInput(format!(
                "c2 must be >= 16 (Prop. 4.11; paper uses 32), got {c2}"
            )));
        }
        if k_rounds == 0 {
            return Err(ParamError::InvalidInput(
                "k_rounds must be positive".to_owned(),
            ));
        }
        let k = cluster_size.unwrap_or(3 * f + 1);
        if k < 3 * f + 1 {
            return Err(ParamError::InvalidInput(format!(
                "cluster size {k} < 3f+1 = {}",
                3 * f + 1
            )));
        }

        // Eq. (5): c1 = ((1/2) - eps) / ((1 + c2) rho), phi = 1/c1, mu = c2 rho.
        let c1 = (0.5 - epsilon) / ((1.0 + c2) * rho);
        let phi = 1.0 / c1;
        if !(0.0 < phi && phi < 1.0) {
            return Err(ParamError::DerivedOutOfRange(format!(
                "phi = 1/c1 = {phi} must lie in (0, 1); rho too large for this c2/epsilon"
            )));
        }
        let mu = c2 * rho;
        let theta_g = (1.0 + rho) * (1.0 + mu);
        let theta_max = (1.0 + 2.0 * phi / (1.0 - phi)) * (1.0 + mu) * (1.0 + rho);

        // Eq. (11): the general-case recursion coefficients.
        let alpha = (6.0 * theta_g * theta_g * phi + 5.0 * theta_g * phi - 9.0 * phi
            + 2.0 * theta_g * theta_g
            - 2.0)
            / (2.0 * phi * (theta_g + 1.0));
        let beta = (3.0 * theta_g - 1.0 + (theta_g - 1.0) / phi) * u + (theta_g - 1.0) * d;
        if alpha >= 1.0 {
            return Err(ParamError::NotContracting { alpha });
        }
        let e = beta / (1.0 - alpha);

        // Eq. (10): phase durations.
        let tau1 = theta_g * e;
        let tau2 = theta_g * (e + d);
        let tau3 = theta_g * (e + u) / phi;
        let t_round = tau1 + tau2 + tau3;

        // Lemma 4.8: delta = (k+5)E, kappa = 3 delta.
        let delta = (k_rounds as f64 + 5.0) * e;
        let kappa = 3.0 * delta;

        let params = Params {
            rho,
            d,
            u,
            f,
            cluster_size: k,
            c1,
            c2,
            epsilon,
            mu,
            phi,
            theta_g,
            theta_max,
            alpha,
            beta,
            e,
            tau1,
            tau2,
            tau3,
            t_round,
            k_rounds,
            delta,
            kappa,
            catch_up_c,
            level_unit: level_unit.unwrap_or(delta),
        };
        // Axiom A4 sanity: mu_bar/rho_bar > 1 must hold (Prop. 4.11).
        let (rho_bar, mu_bar) = params.gcs_axiom_rates();
        if mu_bar <= rho_bar {
            return Err(ParamError::DerivedOutOfRange(format!(
                "GCS axiom A4 violated: mu_bar={mu_bar} <= rho_bar={rho_bar}"
            )));
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn practical() -> Params {
        Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible")
    }

    #[test]
    fn practical_parameters_are_feasible() {
        let p = practical();
        assert!(p.alpha < 1.0, "alpha = {}", p.alpha);
        assert!(p.alpha > 0.5, "alpha should exceed the 1/2 base term");
        assert!(p.phi > 0.0 && p.phi < 1.0);
        assert!((p.mu - 32.0 * 1e-4).abs() < 1e-12);
        assert_eq!(p.cluster_size, 4);
        // tau3 dominates the round (c1 >> 1).
        assert!(p.tau3 > p.tau1 + p.tau2);
        assert!((p.t_round - (p.tau1 + p.tau2 + p.tau3)).abs() < 1e-15);
        // delta/kappa relations from Lemma 4.8.
        assert!((p.delta - 11.0 * p.e).abs() < 1e-12);
        assert!((p.kappa - 3.0 * p.delta).abs() < 1e-12);
    }

    #[test]
    fn paper_constants_require_tiny_rho() {
        // The exact Eq. (5) constants are infeasible at quartz drift...
        let err = Params::paper(1e-4, 1e-3, 1e-4, 1).unwrap_err();
        assert!(matches!(err, ParamError::NotContracting { alpha } if alpha >= 1.0));
        // ...but feasible for sufficiently small rho, as the paper states.
        let p = Params::paper(1e-7, 1e-3, 1e-4, 1).expect("tiny rho is feasible");
        assert!(p.alpha < 1.0);
        assert!((p.epsilon - 1.0 / 4096.0).abs() < 1e-15);
    }

    #[test]
    fn alpha_decreases_with_epsilon() {
        let tight = Params::builder(1e-4, 1e-3, 1e-4, 1)
            .epsilon(0.05)
            .build()
            .unwrap();
        let loose = Params::builder(1e-4, 1e-3, 1e-4, 1)
            .epsilon(0.2)
            .build()
            .unwrap();
        assert!(loose.alpha < tight.alpha);
        // Looser margin -> smaller E (faster contraction, same beta scale).
        assert!(loose.e < tight.e);
    }

    #[test]
    fn skew_bounds_are_ordered() {
        let p = practical();
        assert!(p.intra_cluster_skew_bound() > p.e);
        assert!(p.local_skew_bound(8) > p.kappa);
        assert!(p.node_local_skew_bound(8) > p.local_skew_bound(8));
        // Local skew grows (weakly) with diameter, and much slower than
        // global skew.
        let l4 = p.local_skew_bound(4);
        let l64 = p.local_skew_bound(64);
        assert!(l64 >= l4);
        assert!(p.global_skew_bound(64) / p.global_skew_bound(4) > 4.0);
    }

    #[test]
    fn gcs_axioms_hold() {
        let p = practical();
        let (rho_bar, mu_bar) = p.gcs_axiom_rates();
        assert!(mu_bar / rho_bar > 1.0, "axiom A4");
        // A2/A3 shape: 1 + mu_bar <= theta_max-ish ordering.
        assert!(1.0 + mu_bar < p.theta_max);
        assert!(rho_bar > p.rho);
    }

    #[test]
    fn error_recursion_converges_to_e() {
        let p = practical();
        let seq = p.error_recursion(10.0 * p.e, 200);
        let last = *seq.last().unwrap();
        assert!((last - p.e).abs() < 1e-9 * p.e.max(1.0));
        // Monotone decrease from above.
        for w in seq.windows(2) {
            assert!(w[1] <= w[0] + 1e-18);
        }
    }

    #[test]
    fn unanimous_recursion_is_tighter() {
        let p = practical();
        let (af, _bf) = p.unanimous_recursion(true);
        let (as_, _bs) = p.unanimous_recursion(false);
        assert!(af < p.alpha);
        assert!(as_ < p.alpha);
        let ef = p.unanimous_steady_state(true);
        let es = p.unanimous_steady_state(false);
        assert!(ef < p.e, "e_f^inf = {ef} should be < E = {}", p.e);
        assert!(es < p.e);
    }

    #[test]
    fn unanimous_rate_bounds_ordered() {
        let p = practical();
        let (fast_min, slow_min, slow_max) = p.unanimous_rate_bounds();
        assert!(slow_min < slow_max);
        assert!(slow_max < fast_min, "fast clusters outrun slow clusters");
        // The gap enables the GCS simulation (Cor. 4.7).
        assert!(fast_min - slow_max > p.mu / 2.0 * (1.0 + p.phi) * 0.9);
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Params::builder(0.0, 1e-3, 1e-4, 1).build(),
            Err(ParamError::InvalidInput(_))
        ));
        assert!(matches!(
            Params::builder(1e-4, 1e-3, 2e-3, 1).build(),
            Err(ParamError::InvalidInput(_))
        ));
        assert!(matches!(
            Params::builder(1e-4, 1e-3, 1e-4, 1).c2(8.0).build(),
            Err(ParamError::InvalidInput(_))
        ));
        assert!(matches!(
            Params::builder(1e-4, 1e-3, 1e-4, 1).epsilon(0.7).build(),
            Err(ParamError::InvalidInput(_))
        ));
        assert!(matches!(
            Params::builder(1e-4, 1e-3, 1e-4, 2).cluster_size(5).build(),
            Err(ParamError::InvalidInput(_))
        ));
        // Large rho makes phi >= 1.
        let err = Params::builder(0.02, 1e-3, 1e-4, 1).build().unwrap_err();
        assert!(matches!(err, ParamError::DerivedOutOfRange(_)), "{err}");
    }

    #[test]
    fn errors_display_helpfully() {
        let err = Params::paper(1e-4, 1e-3, 1e-4, 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("alpha"), "{msg}");
        let err = Params::builder(-1.0, 1e-3, 1e-4, 1).build().unwrap_err();
        assert!(err.to_string().contains("rho"));
    }

    #[test]
    fn zero_uncertainty_is_allowed() {
        let p = Params::practical(1e-4, 1e-3, 0.0, 1).unwrap();
        assert!(p.e > 0.0, "drift alone still causes error");
        assert!(p.beta > 0.0);
    }

    #[test]
    fn suggested_horizon_scales_with_diameter() {
        let p = practical();
        assert!(p.suggested_horizon(16) > p.suggested_horizon(2));
        assert!(p.suggested_horizon(2) > 10.0 * p.t_round);
    }

    #[test]
    fn level_unit_defaults_to_delta() {
        let p = practical();
        assert_eq!(p.level_unit, p.delta);
        let p2 = Params::builder(1e-4, 1e-3, 1e-4, 1)
            .level_unit(0.5)
            .build()
            .unwrap();
        assert_eq!(p2.level_unit, 0.5);
    }
}
