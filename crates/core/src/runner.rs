//! Scenario assembly: topology + parameters + faults → a runnable
//! simulation.
//!
//! [`Scenario`] is the high-level entry point of the crate: it places one
//! [`FtGcsNode`] (or a Byzantine behavior) on every physical node of a
//! [`ClusterGraph`], wires the communication edges, seeds the randomness,
//! and returns either a ready [`Simulation`] or a completed
//! [`ScenarioRun`] with the recorded trace.

use std::sync::Arc;

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::{SimBuilder, SimConfig, SimStats, Simulation};
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::node::NodeId;
use ftgcs_sim::observe::Observer;
use ftgcs_sim::rng::SimRng;
use ftgcs_sim::shard::SchedulerKind;
use ftgcs_sim::telemetry::TelemetryReport;
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_sim::trace::Trace;
use ftgcs_topology::ClusterGraph;

use crate::cluster::cluster_partition;
use crate::faults::{make_fault_behavior, FaultKind, LifecycleNode, LifecyclePhase};
use crate::messages::Msg;
use crate::node::{FtGcsNode, NodeConfig};
use crate::params::Params;
use crate::spec::{
    check_churn, check_window, DurationSpec, SampleSpec, SchedulerSpec, SpecError, TopologySpec,
};
use crate::triggers::ModePolicy;

pub use crate::spec::ScenarioSpec;

/// A fully specified experiment: graph, parameters, faults, environment.
///
/// # Examples
///
/// ```
/// use ftgcs::runner::Scenario;
/// use ftgcs::params::Params;
/// use ftgcs_topology::{generators, ClusterGraph};
///
/// let params = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
/// let cg = ClusterGraph::new(generators::line(2), 4, 1);
/// let mut scenario = Scenario::new(cg, params);
/// scenario.seed(7);
/// let run = scenario.run_for(2.0); // two simulated seconds
/// assert!(!run.trace.samples.is_empty());
/// ```
#[derive(Debug)]
pub struct Scenario {
    cg: ClusterGraph,
    params: Arc<Params>,
    seed: u64,
    delay_distribution: DelayDistribution,
    rate_model: RateModel,
    sample_interval: Option<SimDuration>,
    mode_policy: ModePolicy,
    enable_max_estimator: bool,
    faults: Vec<(usize, FaultKind)>,
    fault_windows: Vec<(usize, FaultKind, f64, f64)>,
    initial_offset_spread: f64,
    cluster_offsets: Vec<f64>,
    rate_overrides: Vec<(usize, RateModel)>,
    scheduler: SchedulerKind,
    telemetry: bool,
    /// Where the scenario came from, when built by
    /// [`Scenario::from_spec`]: the pieces a [`ScenarioSpec`] carries
    /// that the runnable scenario itself does not (topology generator,
    /// name, horizon). Hand-assembled scenarios have none, and
    /// [`Scenario::to_spec`] refuses on them.
    provenance: Option<Provenance>,
}

/// Spec-only metadata remembered across [`Scenario::from_spec`] so that
/// [`Scenario::to_spec`] can reconstruct a complete spec.
#[derive(Debug, Clone)]
struct Provenance {
    name: String,
    topology: TopologySpec,
    duration: DurationSpec,
}

impl Scenario {
    /// Creates a scenario with benign defaults: uniform random delays,
    /// random-walk clock drift, catch-up mode policy, max estimator on,
    /// perfect initialization, sampling at `T/2`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster graph's `(k, f)` disagree with the
    /// parameters'.
    #[must_use]
    pub fn new(cg: ClusterGraph, params: Params) -> Self {
        assert_eq!(
            cg.max_faults(),
            params.f,
            "cluster graph fault budget must match parameters"
        );
        assert_eq!(
            cg.cluster_size(),
            params.cluster_size,
            "cluster graph size must match parameters"
        );
        let sample = SimDuration::from_secs(params.t_round / 2.0);
        let cluster_count = cg.cluster_count();
        Scenario {
            cg,
            params: Arc::new(params),
            seed: 0,
            delay_distribution: DelayDistribution::Uniform,
            rate_model: RateModel::RandomWalk {
                dwell: 1.0,
                step: 0.5,
            },
            sample_interval: Some(sample),
            mode_policy: ModePolicy::CatchUp,
            enable_max_estimator: true,
            faults: Vec::new(),
            fault_windows: Vec::new(),
            initial_offset_spread: 0.0,
            cluster_offsets: vec![0.0; cluster_count],
            rate_overrides: Vec::new(),
            scheduler: SchedulerKind::Global,
            telemetry: false,
            provenance: None,
        }
    }

    /// Assembles a scenario from a declarative [`ScenarioSpec`].
    ///
    /// Sugar entries (`fault_per_cluster`, `random_faults`,
    /// `offset_ramp`) are expanded in that order, before the explicit
    /// placements — through the same expansions the corresponding
    /// builder methods use, but with every collision reported as an
    /// error rather than the builders' panic.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the environment is infeasible, the
    /// name is not a single `#`-free word, the duration or sample
    /// interval is degenerate, or any placement (explicit or
    /// sugar-expanded) is out of range or lands on an already-faulty
    /// node.
    pub fn from_spec(spec: &ScenarioSpec) -> Result<Scenario, SpecError> {
        if !crate::spec::name_is_canonical(&spec.name) {
            return Err(SpecError::new(format!(
                "name {:?} is not expressible in the spec format (one word, no '#')",
                spec.name
            )));
        }
        let raw_duration = match spec.duration {
            DurationSpec::Secs(x) | DurationSpec::Rounds(x) => x,
        };
        if !raw_duration.is_finite() || raw_duration < 0.0 {
            return Err(SpecError::new("duration must be finite and non-negative"));
        }
        let params = spec.params()?;
        let cg = ClusterGraph::new(spec.topology.build(), spec.cluster_size, spec.f);
        let nodes = cg.physical().node_count();
        let clusters = cg.cluster_count();
        for &(count, _) in &spec.faults_per_cluster {
            if count > spec.cluster_size {
                return Err(SpecError::new(format!(
                    "fault_per_cluster count {count} exceeds cluster_size {}",
                    spec.cluster_size
                )));
            }
        }
        // The builder sugar would silently clamp an oversized count; a
        // spec asking for more faults than a cluster has slots is a
        // typo, not a request for a different experiment.
        for &(count, _, _) in &spec.random_faults {
            if count > spec.cluster_size {
                return Err(SpecError::new(format!(
                    "random_faults count {count} exceeds cluster_size {}",
                    spec.cluster_size
                )));
            }
        }
        for &(node, _) in &spec.faults {
            if node >= nodes {
                return Err(SpecError::new(format!(
                    "fault node {node} out of range (graph has {nodes} nodes)"
                )));
            }
        }
        for &(node, _) in &spec.rate_overrides {
            if node >= nodes {
                return Err(SpecError::new(format!(
                    "rate_override node {node} out of range (graph has {nodes} nodes)"
                )));
            }
        }
        for &(cluster, offset) in &spec.cluster_offsets {
            if cluster >= clusters {
                return Err(SpecError::new(format!(
                    "cluster_offset cluster {cluster} out of range ({clusters} clusters)"
                )));
            }
            if offset < 0.0 {
                return Err(SpecError::new("cluster offsets must be non-negative"));
            }
        }
        let mut scenario = Scenario::new(cg, params);
        scenario
            .seed(spec.seed)
            .delay_distribution(spec.delay.clone())
            .rate_model(spec.rate_model.clone())
            .mode_policy(spec.mode_policy)
            .max_estimator(spec.max_estimator);
        match spec.sample_interval {
            SampleSpec::HalfRound => {} // the Scenario::new default (T/2)
            SampleSpec::Off => {
                scenario.sample_interval(None);
            }
            SampleSpec::Secs(secs) => {
                // A zero interval would re-arm the sample event at the
                // same instant forever and livelock the engine.
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(SpecError::new(
                        "sample_interval must be positive and finite",
                    ));
                }
                scenario.sample_interval(Some(SimDuration::from_secs(secs)));
            }
        }
        if spec.offset_spread > 0.0 {
            scenario.initial_offset_spread(spec.offset_spread);
        }
        if spec.offset_ramp > 0.0 {
            scenario.cluster_offset_ramp(spec.offset_ramp);
        }
        for &(cluster, offset) in &spec.cluster_offsets {
            scenario.cluster_offset(cluster, offset);
        }
        // Faults, sugar first (same order the builder methods would
        // apply), with collisions turned into errors instead of the
        // builders' panics.
        let add_fault = |scenario: &mut Scenario, node: usize, kind: &FaultKind| {
            if scenario.faults.iter().any(|&(n, _)| n == node) {
                return Err(SpecError::new(format!(
                    "node {node} has two faults assigned (explicit `fault` lines and \
                     sugar expansions must not overlap)"
                )));
            }
            scenario.faults.push((node, kind.clone()));
            Ok(())
        };
        for (count, kind) in &spec.faults_per_cluster {
            for node in per_cluster_fault_nodes(&scenario.cg, *count) {
                add_fault(&mut scenario, node, kind)?;
            }
        }
        for (count, seed, kind) in &spec.random_faults {
            for node in random_fault_nodes(&scenario.cg, *count, *seed) {
                add_fault(&mut scenario, node, kind)?;
            }
        }
        for (node, kind) in &spec.faults {
            add_fault(&mut scenario, *node, kind)?;
        }
        expand_lifecycle(&mut scenario, spec)?;
        for (node, model) in &spec.rate_overrides {
            scenario.rate_override(*node, model.clone());
        }
        match spec.scheduler {
            SchedulerSpec::Global => {}
            SchedulerSpec::ShardedByCluster => {
                scenario.sharded_by_cluster();
            }
            SchedulerSpec::Parallel(workers) => {
                scenario.parallel(workers);
            }
        }
        scenario.provenance = Some(Provenance {
            name: spec.name.clone(),
            topology: spec.topology,
            duration: spec.duration,
        });
        Ok(scenario)
    }

    /// Serializes the scenario back into a [`ScenarioSpec`].
    ///
    /// Sugar used at assembly time is **canonicalized**: fault sugar
    /// becomes explicit `fault` placements, `churn` and `mobile`
    /// directives become explicit `fault … from … to` windows, the
    /// offset ramp becomes explicit `cluster_offset` entries. `from_spec(to_spec(s))`
    /// therefore reproduces the identical scenario even when
    /// `to_spec(from_spec(spec))` differs textually from `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the scenario was hand-assembled (its
    /// topology generator is unknown) or uses a scheduler partition
    /// other than the per-cluster one.
    pub fn to_spec(&self) -> Result<ScenarioSpec, SpecError> {
        let provenance = self.provenance.as_ref().ok_or_else(|| {
            SpecError::new(
                "scenario was hand-assembled; its topology generator is unknown \
                 (build it with Scenario::from_spec to round-trip)",
            )
        })?;
        let scheduler = match &self.scheduler {
            SchedulerKind::Global => SchedulerSpec::Global,
            SchedulerKind::Sharded(p) => {
                if *p != cluster_partition(&self.cg) {
                    return Err(SpecError::new(
                        "only the per-cluster shard partition is spec-expressible",
                    ));
                }
                SchedulerSpec::ShardedByCluster
            }
            SchedulerKind::Parallel { partition, workers } => {
                if *partition != cluster_partition(&self.cg) {
                    return Err(SpecError::new(
                        "only the per-cluster shard partition is spec-expressible",
                    ));
                }
                SchedulerSpec::Parallel(*workers)
            }
        };
        let half_round = SimDuration::from_secs(self.params.t_round / 2.0);
        let sample_interval = match self.sample_interval {
            None => SampleSpec::Off,
            Some(interval) if interval == half_round => SampleSpec::HalfRound,
            Some(interval) => SampleSpec::Secs(interval.as_secs()),
        };
        Ok(ScenarioSpec {
            name: provenance.name.clone(),
            topology: provenance.topology,
            cluster_size: self.params.cluster_size,
            f: self.params.f,
            rho: self.params.rho,
            d: self.params.d,
            u: self.params.u,
            seed: self.seed,
            duration: provenance.duration,
            delay: self.delay_distribution.clone(),
            rate_model: self.rate_model.clone(),
            sample_interval,
            mode_policy: self.mode_policy,
            max_estimator: self.enable_max_estimator,
            offset_spread: self.initial_offset_spread,
            offset_ramp: 0.0,
            cluster_offsets: self
                .cluster_offsets
                .iter()
                .enumerate()
                .filter(|&(_, &off)| off != 0.0)
                .map(|(c, &off)| (c, off))
                .collect(),
            faults: self.faults.clone(),
            fault_windows: {
                let mut windows = self.fault_windows.clone();
                windows.sort_by(|a, b| (a.0, a.2).partial_cmp(&(b.0, b.2)).expect("finite window"));
                windows
            },
            faults_per_cluster: Vec::new(),
            random_faults: Vec::new(),
            churn: Vec::new(),
            mobile: Vec::new(),
            rate_overrides: self.rate_overrides.clone(),
            scheduler,
        })
    }

    /// The cluster graph.
    #[must_use]
    pub fn cluster_graph(&self) -> &ClusterGraph {
        &self.cg
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Sets the master seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the message-delay distribution within `[d−U, d]`.
    pub fn delay_distribution(&mut self, dist: DelayDistribution) -> &mut Self {
        self.delay_distribution = dist;
        self
    }

    /// Sets the default hardware clock rate model.
    pub fn rate_model(&mut self, model: RateModel) -> &mut Self {
        self.rate_model = model;
        self
    }

    /// Overrides the rate model of one physical node.
    pub fn rate_override(&mut self, node: usize, model: RateModel) -> &mut Self {
        self.rate_overrides.push((node, model));
        self
    }

    /// Sets the clock-sampling interval (`None` disables sampling).
    pub fn sample_interval(&mut self, interval: Option<SimDuration>) -> &mut Self {
        self.sample_interval = interval;
        self
    }

    /// Sets the mode policy used when neither trigger fires.
    pub fn mode_policy(&mut self, policy: ModePolicy) -> &mut Self {
        self.mode_policy = policy;
        self
    }

    /// Sets the event scheduler. The default is [`SchedulerKind::Global`]
    /// — under the engine's strict equal-order guarantee the sharded
    /// queue is ~5–10% slower single-threaded (see EXPERIMENTS.md);
    /// [`Scenario::parallel`] is what makes sharding pay. Scheduling
    /// never changes a run's trace — `tests/scheduler_equivalence.rs`
    /// pins every scheduler (including the parallel one on any worker
    /// count) to byte-identical output — so this is a throughput knob
    /// and an A/B handle for benches.
    pub fn scheduler(&mut self, kind: SchedulerKind) -> &mut Self {
        self.scheduler = kind;
        self
    }

    /// Selects the sharded scheduler with one shard per cluster
    /// ([`cluster_partition`]) — the scale-out configuration the
    /// `shard_scaling` bench measures.
    pub fn sharded_by_cluster(&mut self) -> &mut Self {
        let partition = cluster_partition(&self.cg);
        self.scheduler(SchedulerKind::Sharded(partition))
    }

    /// Selects the **parallel** shard executor: one shard per cluster
    /// ([`cluster_partition`]), advanced on `workers` threads between
    /// `d − U` lookahead barriers ([`Params::lookahead`] is the window
    /// width). The `FTGCS_WORKERS` environment variable, when set, pins
    /// the exact thread count and overrides this argument (that is how
    /// CI exercises pinned counts); otherwise `workers` is used —
    /// `0` meaning the machine's available parallelism — capped at
    /// both the core count and the cluster count.
    ///
    /// The merged trace is byte-identical to every other scheduler on
    /// every worker count; see `crates/sim/src/par.rs` for the
    /// conservative-window argument.
    pub fn parallel(&mut self, workers: usize) -> &mut Self {
        let partition = cluster_partition(&self.cg);
        self.scheduler(SchedulerKind::Parallel { partition, workers })
    }

    /// Enables or disables runtime telemetry (see
    /// [`ftgcs_sim::telemetry`]). Strictly a side channel: traces are
    /// byte-identical on or off (`tests/telemetry_equivalence.rs` pins
    /// it), and the report comes back from
    /// [`Scenario::run_streaming_telemetry`] or
    /// `Simulation::telemetry()` on a hand-built simulation.
    pub fn telemetry(&mut self, enabled: bool) -> &mut Self {
        self.telemetry = enabled;
        self
    }

    /// Enables or disables the global-max estimator.
    pub fn max_estimator(&mut self, enabled: bool) -> &mut Self {
        self.enable_max_estimator = enabled;
        self
    }

    /// Spreads initial logical clocks uniformly over `[0, spread]`
    /// (keep `spread ≤ E` for proper executions).
    pub fn initial_offset_spread(&mut self, spread: f64) -> &mut Self {
        assert!(spread >= 0.0, "spread must be non-negative");
        self.initial_offset_spread = spread;
        self
    }

    /// Starts all clocks of one cluster (and the estimators tracking it)
    /// at `offset`. This injects *inter-cluster* skew for gradient
    /// experiments while keeping intra-cluster initialization consistent.
    ///
    /// Keep offsets below `κ` each: the first one or two rounds after a
    /// large offset are transiently improper (pulse windows shift) before
    /// the instances re-lock; metrics should use post-warmup windows.
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range or the offset negative.
    pub fn cluster_offset(&mut self, cluster: usize, offset: f64) -> &mut Self {
        assert!(cluster < self.cg.cluster_count(), "cluster out of range");
        assert!(offset >= 0.0, "offsets must be non-negative");
        self.cluster_offsets[cluster] = offset;
        self
    }

    /// Sets a linear offset ramp: cluster `i` starts at `i·step` — the
    /// canonical "smooth gradient" initial condition.
    pub fn cluster_offset_ramp(&mut self, step: f64) -> &mut Self {
        for c in 0..self.cg.cluster_count() {
            self.cluster_offset(c, step * c as f64);
        }
        self
    }

    /// Makes one physical node Byzantine with the given strategy.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range or already faulty.
    pub fn with_fault(&mut self, node: usize, kind: FaultKind) -> &mut Self {
        assert!(
            node < self.cg.physical().node_count(),
            "faulty node id out of range"
        );
        assert!(
            self.faults.iter().all(|&(n, _)| n != node),
            "node {node} already has a fault assigned"
        );
        self.faults.push((node, kind));
        self
    }

    /// Gives one node a time-windowed fault: it runs the correct
    /// algorithm until `from`, behaves as `kind` over `[from, to)`, then
    /// recovers — re-initialized, rejoining at the next round boundary
    /// and re-integrating through the ordinary `f+1` confirmation
    /// machinery (see [`LifecycleNode`]). Crash–recover churn and mobile
    /// adversaries are spec-level expansions of this primitive.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range, the window is degenerate
    /// (`to ≤ from`, negative, or non-finite), the node already has a
    /// permanent fault, or the window overlaps/abuts another window on
    /// the same node (abutting windows would schedule a recovery and a
    /// re-infection at the same instant).
    pub fn with_fault_window(
        &mut self,
        node: usize,
        kind: FaultKind,
        from: f64,
        to: f64,
    ) -> &mut Self {
        assert!(
            node < self.cg.physical().node_count(),
            "faulty node id out of range"
        );
        if let Err(e) = check_window(from, to, 0) {
            panic!("{e}");
        }
        assert!(
            self.faults.iter().all(|&(n, _)| n != node),
            "node {node} already has a permanent fault assigned"
        );
        assert!(
            self.fault_windows
                .iter()
                .all(|w| w.0 != node || to < w.2 || from > w.3),
            "node {node} already has a fault window overlapping [{from}, {to})"
        );
        self.fault_windows.push((node, kind, from, to));
        self
    }

    /// Makes slots `0..count` of *every* cluster Byzantine with the given
    /// strategy.
    pub fn with_fault_per_cluster(&mut self, kind: &FaultKind, count: usize) -> &mut Self {
        for node in per_cluster_fault_nodes(&self.cg, count) {
            self.with_fault(node, kind.clone());
        }
        self
    }

    /// Makes `count` random members of each cluster Byzantine.
    pub fn with_random_faults(&mut self, kind: &FaultKind, count: usize, seed: u64) -> &mut Self {
        for node in random_fault_nodes(&self.cg, count, seed) {
            self.with_fault(node, kind.clone());
        }
        self
    }

    /// Ids of the currently assigned faulty nodes: permanent faults plus
    /// every node that is faulty during *some* window. Metrics mask the
    /// union — a recovered node's clock is usable again, but excluding
    /// ever-faulty nodes keeps skew bounds honest about which nodes were
    /// correct for the whole execution.
    #[must_use]
    pub fn faulty_nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .faults
            .iter()
            .map(|&(n, _)| n)
            .chain(self.fault_windows.iter().map(|w| w.0))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Whether any cluster's **simultaneous** fault count ever exceeds
    /// the budget `f` (allowed — some experiments deliberately break the
    /// premise — but worth knowing). Time-windowed faults count only
    /// while their windows overlap: a cluster that hosts `f` faults at
    /// every instant but `2f` over the whole run stays within budget,
    /// which is exactly the mobile-adversary regime of the paper's
    /// model.
    #[must_use]
    pub fn faults_exceed_budget(&self) -> bool {
        (0..self.cg.cluster_count()).any(|c| {
            let permanent = self
                .faults
                .iter()
                .filter(|&&(n, _)| self.cg.cluster_of(n) == c)
                .count();
            // Sweep the window endpoints: +1 at `from`, −1 at `to`, ends
            // sorting before starts at equal times so abutting windows
            // (a handoff) never double-count.
            let mut events: Vec<(f64, i32)> = Vec::new();
            for w in &self.fault_windows {
                if self.cg.cluster_of(w.0) == c {
                    events.push((w.2, 1));
                    events.push((w.3, -1));
                }
            }
            events.sort_by(|a, b| a.partial_cmp(b).expect("finite window"));
            let mut live = 0i32;
            let mut peak = 0i32;
            for (_, delta) in events {
                live += delta;
                peak = peak.max(live);
            }
            permanent + peak as usize > self.params.f
        })
    }

    fn node_config(&self, cluster: usize) -> NodeConfig {
        let members: Vec<NodeId> = self.cg.members(cluster).map(NodeId).collect();
        let neighbors: Vec<(usize, Vec<NodeId>)> = self
            .cg
            .neighbor_clusters(cluster)
            .iter()
            .map(|&b| (b, self.cg.members(b).map(NodeId).collect()))
            .collect();
        let neighbor_offsets = self
            .cg
            .neighbor_clusters(cluster)
            .iter()
            .map(|&b| self.cluster_offsets[b])
            .collect();
        NodeConfig {
            params: Arc::clone(&self.params),
            cluster_id: cluster,
            members,
            neighbors,
            neighbor_offsets,
            mode_policy: self.mode_policy,
            enable_max_estimator: self.enable_max_estimator,
            initial_offset: self.cluster_offsets[cluster],
        }
    }

    /// Builds the simulation (behaviors, edges, clocks) without running it.
    #[must_use]
    pub fn build(&self) -> Simulation<Msg> {
        let p = &self.params;
        let config = SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_secs(p.d),
                SimDuration::from_secs(p.u),
                self.delay_distribution.clone(),
            ),
            rho: p.rho,
            rate_model: self.rate_model.clone(),
            seed: self.seed,
            sample_interval: self.sample_interval,
            scheduler: self.scheduler.clone(),
            telemetry: self.telemetry,
        };
        let offset_rng = SimRng::seed_from(self.seed).derive("init-offset", 0);
        let mut offsets = offset_rng;
        let mut builder = SimBuilder::new(config);
        for c in 0..self.cg.cluster_count() {
            for slot in 0..self.cg.cluster_size() {
                let node = self.cg.node_id(c, slot);
                let mut cfg = self.node_config(c);
                if self.initial_offset_spread > 0.0 {
                    cfg.initial_offset += offsets.uniform(0.0, self.initial_offset_spread);
                }
                let fault = self.faults.iter().find(|&&(n, _)| n == node);
                let behavior: Box<dyn ftgcs_sim::node::Behavior<Msg>> = match fault {
                    Some((_, kind)) => make_fault_behavior(kind, cfg),
                    None => {
                        let mut schedule: Vec<(f64, LifecyclePhase)> = Vec::new();
                        for w in self.fault_windows.iter().filter(|w| w.0 == node) {
                            schedule.push((w.2, LifecyclePhase::Faulty(w.1.clone())));
                            schedule.push((w.3, LifecyclePhase::Correct));
                        }
                        if schedule.is_empty() {
                            Box::new(FtGcsNode::new(cfg))
                        } else {
                            // Windows are pairwise disjoint and
                            // non-abutting (enforced at assembly), so
                            // sorting by time yields a strictly
                            // increasing transition schedule.
                            schedule.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite window"));
                            Box::new(LifecycleNode::new(cfg, schedule))
                        }
                    }
                };
                let id = builder.add_node(behavior);
                debug_assert_eq!(id.index(), node);
            }
        }
        for (a, b) in self.cg.physical().edges() {
            builder.add_edge(NodeId(a), NodeId(b));
        }
        for (node, model) in &self.rate_overrides {
            builder.set_rate_model(NodeId(*node), model.clone());
        }
        builder.build()
    }

    /// Builds and runs for a duration of simulated time, materializing
    /// the full trace.
    ///
    /// Accepts either a typed [`SimDuration`] or plain `f64` **seconds**
    /// (the historical calling convention) — the newtype stops seconds
    /// from being confused with round counts; use
    /// [`DurationSpec::resolve`](crate::spec::DurationSpec::resolve) to
    /// convert rounds.
    #[must_use]
    pub fn run_for(&self, duration: impl Into<SimDuration>) -> ScenarioRun {
        let mut sim = self.build();
        sim.run_until(SimTime::ZERO + duration.into());
        let stats = sim.stats();
        ScenarioRun {
            faulty: self.faulty_nodes(),
            stats,
            trace: sim.into_trace(),
        }
    }

    /// Builds and runs for a duration of simulated time, **streaming**
    /// every sample and row to `obs` instead of materializing a
    /// [`Trace`] — memory stays bounded by the observer (O(nodes) for
    /// the accumulators in `ftgcs_metrics::stream`) regardless of run
    /// length. Calls [`Observer::on_finish`] once at the end.
    ///
    /// The stream is byte-equivalent to the materialized trace of
    /// [`Scenario::run_for`] on every scheduler — pinned by the
    /// observer-equivalence suites.
    pub fn run_streaming(
        &self,
        duration: impl Into<SimDuration>,
        obs: &mut dyn Observer,
    ) -> SimStats {
        self.run_streaming_telemetry(duration, obs).0
    }

    /// Like [`Scenario::run_streaming`], but also returns the run's
    /// [`TelemetryReport`] (all zeros unless [`Scenario::telemetry`]
    /// enabled recording).
    pub fn run_streaming_telemetry(
        &self,
        duration: impl Into<SimDuration>,
        obs: &mut dyn Observer,
    ) -> (SimStats, TelemetryReport) {
        let mut sim = self.build();
        sim.run_until_with(SimTime::ZERO + duration.into(), obs);
        let stats = sim.stats();
        obs.on_finish(&stats);
        let report = sim.telemetry();
        (stats, report)
    }

    /// Runs for the parameter-suggested horizon of this graph's diameter.
    #[must_use]
    pub fn run_suggested(&self) -> ScenarioRun {
        let d = ftgcs_topology::analysis::diameter(self.cg.base());
        self.run_for(self.params.suggested_horizon(d))
    }
}

/// The node ids [`Scenario::with_fault_per_cluster`] assigns: slots
/// `0..count` of every cluster. Shared with [`Scenario::from_spec`],
/// which applies the same expansion through its error-returning path.
fn per_cluster_fault_nodes(cg: &ClusterGraph, count: usize) -> Vec<usize> {
    let mut nodes = Vec::with_capacity(cg.cluster_count() * count);
    for c in 0..cg.cluster_count() {
        for slot in 0..count {
            nodes.push(cg.node_id(c, slot));
        }
    }
    nodes
}

/// The node ids [`Scenario::with_random_faults`] assigns for
/// `(count, seed)`: a seeded Fisher–Yates prefix per cluster. Shared
/// with [`Scenario::from_spec`].
fn random_fault_nodes(cg: &ClusterGraph, count: usize, seed: u64) -> Vec<usize> {
    let mut rng = SimRng::seed_from(seed);
    let mut nodes = Vec::new();
    for c in 0..cg.cluster_count() {
        let mut slots: Vec<usize> = (0..cg.cluster_size()).collect();
        for i in 0..count.min(slots.len()) {
            let j = i + rng.index(slots.len() - i);
            slots.swap(i, j);
            nodes.push(cg.node_id(c, slots[i]));
        }
    }
    nodes
}

/// Expands a spec's lifecycle directives — explicit `fault … from … to`
/// windows, `churn`, and `mobile` — into [`Scenario`] fault windows.
/// Runs after the permanent faults are placed, so collision checks see
/// the complete static assignment. Everything here is a deterministic
/// function of the spec alone (the mobile itineraries draw from
/// dedicated `SimRng` streams seeded by the scenario seed), so the same
/// spec produces the same windows on every scheduler and worker count.
///
/// Placement rules:
///
/// * **Explicit windows** go exactly where the spec says, re-validated
///   so programmatically built specs get the parser's checks too.
/// * **Churn**: churner `j` of `churn count kind period P downtime D`
///   lands in cluster `j mod C` on its lowest-numbered member with no
///   other fault assignment, and is down over `[s + n·P, s + n·P + D)`
///   for every cycle `n` starting inside the horizon, with the stagger
///   `s = P·j/count` spreading downtimes evenly over the period.
///   Requiring `count ≤ f·C` keeps each cluster at `⌈count/C⌉ ≤ f`
///   churners, so churn alone never breaches the per-cluster budget.
/// * **Mobile**: adversary `j` of `mobile count kind hop H` follows a
///   seed-derived itinerary, corrupting a fresh host every `H` seconds.
///   Hosts are drawn uniformly from the nodes with no conflicting
///   assignment whose cluster still has `< f` faults during the hop
///   window; a hop that cannot be placed is a [`SpecError`]. The
///   invariant "never more than `f` simultaneous faults per cluster"
///   therefore holds by construction, permanent faults included —
///   exactly the mobile-Byzantine regime the paper's per-cluster budget
///   permits.
fn expand_lifecycle(scenario: &mut Scenario, spec: &ScenarioSpec) -> Result<(), SpecError> {
    if spec.fault_windows.is_empty() && spec.churn.is_empty() && spec.mobile.is_empty() {
        return Ok(());
    }
    let nodes = scenario.cg.physical().node_count();
    let clusters = scenario.cg.cluster_count();
    let f = scenario.params.f;
    let horizon = spec.duration.resolve(&scenario.params);
    let mut static_faulty = vec![false; nodes];
    for &(n, _) in &scenario.faults {
        static_faulty[n] = true;
    }
    // Windows collected per node with every source mixed, so the overlap
    // and budget checks look at the union.
    let mut windows: Vec<Vec<(FaultKind, f64, f64)>> = vec![Vec::new(); nodes];
    // A window is admissible when the node has no permanent fault and no
    // window overlapping *or abutting* it — abutment would collapse a
    // recovery and a re-infection onto one instant, and the lifecycle
    // schedule needs strictly increasing transition times.
    let add = |windows: &mut Vec<Vec<(FaultKind, f64, f64)>>,
               static_faulty: &[bool],
               node: usize,
               kind: &FaultKind,
               from: f64,
               to: f64|
     -> Result<(), SpecError> {
        if static_faulty[node] {
            return Err(SpecError::new(format!(
                "node {node} has both a permanent fault and a fault window"
            )));
        }
        if windows[node].iter().any(|w| from <= w.2 && to >= w.1) {
            return Err(SpecError::new(format!(
                "node {node} has overlapping or abutting fault windows around [{from}, {to})"
            )));
        }
        windows[node].push((kind.clone(), from, to));
        Ok(())
    };

    for &(node, ref kind, from, to) in &spec.fault_windows {
        if node >= nodes {
            return Err(SpecError::new(format!(
                "fault window node {node} out of range (graph has {nodes} nodes)"
            )));
        }
        check_window(from, to, 0)?;
        add(&mut windows, &static_faulty, node, kind, from, to)?;
    }

    for &(count, ref kind, period, downtime) in &spec.churn {
        check_churn(period, downtime, 0)?;
        if count > f * clusters {
            return Err(SpecError::new(format!(
                "churn count {count} breaches the per-cluster fault budget \
                 (at most f × clusters = {} churners keep every cluster at ≤ f)",
                f * clusters
            )));
        }
        for j in 0..count {
            let cluster = j % clusters;
            let host = scenario
                .cg
                .members(cluster)
                .find(|&n| !static_faulty[n] && windows[n].is_empty())
                .ok_or_else(|| {
                    SpecError::new(format!(
                        "cluster {cluster} has no unassigned node left for churner {j}"
                    ))
                })?;
            let stagger = period * j as f64 / count as f64;
            let mut start = stagger;
            while start < horizon {
                add(
                    &mut windows,
                    &static_faulty,
                    host,
                    kind,
                    start,
                    start + downtime,
                )?;
                start += period;
            }
        }
    }

    for (entry, &(count, ref kind, hop)) in spec.mobile.iter().enumerate() {
        if !hop.is_finite() || hop <= 0.0 {
            return Err(SpecError::new("mobile hop must be positive and finite"));
        }
        if count > f * clusters {
            return Err(SpecError::new(format!(
                "mobile count {count} breaches the per-cluster fault budget \
                 (capacity is f × clusters = {})",
                f * clusters
            )));
        }
        let hops = (horizon / hop).ceil() as usize;
        let mut rngs: Vec<SimRng> = (0..count)
            .map(|j| {
                SimRng::seed_from(spec.seed).derive("mobile", ((entry as u64) << 32) | j as u64)
            })
            .collect();
        let mut prev: Vec<Option<usize>> = vec![None; count];
        for w in 0..hops {
            let t0 = hop * w as f64;
            let t1 = hop * (w + 1) as f64;
            for j in 0..count {
                let candidates: Vec<usize> = (0..nodes)
                    .filter(|&n| {
                        // Must actually move, and the host must be free
                        // over (and immediately around) the hop window…
                        if static_faulty[n] || prev[j] == Some(n) {
                            return false;
                        }
                        if windows[n].iter().any(|x| t0 <= x.2 && t1 >= x.1) {
                            return false;
                        }
                        // …and its cluster must have a spare fault slot
                        // for the whole window.
                        let c = scenario.cg.cluster_of(n);
                        let load = scenario
                            .cg
                            .members(c)
                            .filter(|&m| {
                                static_faulty[m] || windows[m].iter().any(|x| x.1 < t1 && x.2 > t0)
                            })
                            .count();
                        load < f
                    })
                    .collect();
                if candidates.is_empty() {
                    return Err(SpecError::new(format!(
                        "mobile adversary {j} cannot hop anywhere in [{t0}, {t1}) \
                         without breaching some cluster's f-budget"
                    )));
                }
                let host = candidates[rngs[j].index(candidates.len())];
                windows[host].push((kind.clone(), t0, t1));
                prev[j] = Some(host);
            }
        }
    }

    for (node, list) in windows.iter_mut().enumerate() {
        list.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite window"));
        for (kind, from, to) in list.drain(..) {
            scenario.fault_windows.push((node, kind, from, to));
        }
    }
    Ok(())
}

/// The output of a completed scenario.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The recorded trace (clock samples + algorithm rows).
    pub trace: Trace,
    /// Ids of the Byzantine nodes, sorted.
    pub faulty: Vec<usize>,
    /// Engine work counters.
    pub stats: SimStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgcs_topology::generators::line;

    fn scenario() -> Scenario {
        let params = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
        Scenario::new(ClusterGraph::new(line(2), 4, 1), params)
    }

    #[test]
    fn builds_the_right_node_count() {
        let s = scenario();
        let sim = s.build();
        assert_eq!(sim.node_count(), 8);
    }

    #[test]
    fn fault_assignment_and_budget_check() {
        let mut s = scenario();
        assert!(s.faulty_nodes().is_empty());
        s.with_fault_per_cluster(&FaultKind::Silent, 1);
        assert_eq!(s.faulty_nodes(), vec![0, 4]);
        assert!(!s.faults_exceed_budget());
        s.with_fault(1, FaultKind::Silent);
        assert!(s.faults_exceed_budget());
    }

    #[test]
    #[should_panic(expected = "already has a fault")]
    fn duplicate_fault_rejected() {
        let mut s = scenario();
        s.with_fault(0, FaultKind::Silent);
        s.with_fault(0, FaultKind::Silent);
    }

    #[test]
    fn random_faults_stay_within_count() {
        let mut s = scenario();
        s.with_random_faults(&FaultKind::Silent, 1, 3);
        assert_eq!(s.faulty_nodes().len(), 2);
        assert!(!s.faults_exceed_budget());
    }

    #[test]
    #[should_panic(expected = "must match parameters")]
    fn mismatched_fault_budget_rejected() {
        let params = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
        let _ = Scenario::new(ClusterGraph::new(line(2), 7, 2), params);
    }

    #[test]
    fn fault_window_registers_as_ever_faulty() {
        let mut s = scenario();
        let t = s.params().t_round;
        s.with_fault_window(1, FaultKind::Silent, 2.0 * t, 4.0 * t);
        assert_eq!(s.faulty_nodes(), vec![1]);
        assert!(!s.faults_exceed_budget());
        // A second, disjoint window on another node of the same cluster
        // stays in budget (f = 1 *simultaneous* faults)…
        s.with_fault_window(2, FaultKind::Silent, 5.0 * t, 6.0 * t);
        assert_eq!(s.faulty_nodes(), vec![1, 2]);
        assert!(!s.faults_exceed_budget());
        // …until the windows overlap.
        s.with_fault_window(3, FaultKind::Silent, 3.0 * t, 5.5 * t);
        assert!(s.faults_exceed_budget());
    }

    #[test]
    fn abutting_windows_do_not_break_the_budget() {
        // A handoff at the boundary is one fault at every instant.
        let mut s = scenario();
        s.with_fault_window(1, FaultKind::Silent, 0.1, 0.2);
        s.with_fault_window(2, FaultKind::Silent, 0.2, 0.3);
        assert!(!s.faults_exceed_budget());
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_windows_on_one_node_rejected() {
        let mut s = scenario();
        s.with_fault_window(1, FaultKind::Silent, 0.1, 0.3);
        s.with_fault_window(1, FaultKind::Silent, 0.3, 0.5); // abuts
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_rejected() {
        let mut s = scenario();
        s.with_fault_window(1, FaultKind::Silent, 0.5, 0.5);
    }

    #[test]
    fn windowed_fault_runs_and_recovers() {
        let mut s = scenario();
        let t = s.params().t_round;
        s.seed(5);
        s.with_fault_window(1, FaultKind::TwoFaced { amplitude: 1e-3 }, 3.0 * t, 6.0 * t);
        let run = s.run_for(12.0 * t);
        assert!(!run.trace.samples.is_empty());
        assert_eq!(run.faulty, vec![1]);
        // The recovered node pulses again after its window: correct
        // rounds resume past 6 T.
        let late_pulse = run
            .trace
            .rows_of_kind(crate::cluster::ROW_PULSE)
            .any(|row| row.node == NodeId(1) && row.t.as_secs() > 7.0 * t);
        assert!(late_pulse, "node 1 never pulsed after recovering");
    }

    #[test]
    fn churn_expands_deterministically_within_budget() {
        let mut spec = ScenarioSpec::new("churn", TopologySpec::Line(3), 1);
        spec.duration = DurationSpec::Secs(1.0);
        spec.churn.push((3, FaultKind::Silent, 0.3, 0.1));
        let a = Scenario::from_spec(&spec).unwrap();
        let b = Scenario::from_spec(&spec).unwrap();
        assert_eq!(a.fault_windows, b.fault_windows);
        assert!(!a.fault_windows.is_empty());
        // Round-robin placement: one churner per cluster, so the
        // simultaneous budget holds trivially.
        assert_eq!(a.faulty_nodes().len(), 3);
        assert!(!a.faults_exceed_budget());
        // Downtime windows tile `[stagger + n·P, … + D)` within the horizon.
        for &(_, _, from, to) in &a.fault_windows {
            assert!((to - from - 0.1).abs() < 1e-12);
            assert!(from < 1.0);
        }
    }

    #[test]
    fn mobile_expands_to_a_moving_in_budget_itinerary() {
        let mut spec = ScenarioSpec::new("mobile", TopologySpec::Line(3), 1);
        spec.duration = DurationSpec::Secs(1.0);
        spec.seed = 9;
        spec.mobile.push((1, FaultKind::Silent, 0.25));
        let s = Scenario::from_spec(&spec).unwrap();
        let b = Scenario::from_spec(&spec).unwrap();
        assert_eq!(s.fault_windows, b.fault_windows);
        assert_eq!(s.fault_windows.len(), 4, "one window per hop");
        assert!(!s.faults_exceed_budget());
        // Ordered by hop start, the adversary must move every hop.
        let mut hops: Vec<(f64, usize)> = s.fault_windows.iter().map(|w| (w.2, w.0)).collect();
        hops.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pair in hops.windows(2) {
            assert_ne!(pair[0].1, pair[1].1, "mobile adversary failed to move");
        }
    }

    #[test]
    fn mobile_over_capacity_is_a_spec_error() {
        let mut spec = ScenarioSpec::new("mobile", TopologySpec::Line(2), 1);
        spec.mobile.push((3, FaultKind::Silent, 0.25));
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("breaches"), "{err}");
    }

    #[test]
    fn static_fault_plus_window_collision_is_a_spec_error() {
        let mut spec = ScenarioSpec::new("clash", TopologySpec::Line(2), 1);
        spec.faults.push((1, FaultKind::Silent));
        spec.fault_windows.push((1, FaultKind::Silent, 0.1, 0.2));
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("permanent fault"), "{err}");
    }

    #[test]
    fn to_spec_canonicalizes_lifecycle_sugar_to_windows() {
        let mut spec = ScenarioSpec::new("canon", TopologySpec::Line(3), 1);
        spec.duration = DurationSpec::Secs(1.0);
        spec.seed = 4;
        spec.churn.push((2, FaultKind::Silent, 0.4, 0.1));
        spec.mobile
            .push((1, FaultKind::TwoFaced { amplitude: 1e-3 }, 0.5));
        let s = Scenario::from_spec(&spec).unwrap();
        let canonical = s.to_spec().unwrap();
        assert!(canonical.churn.is_empty());
        assert!(canonical.mobile.is_empty());
        assert_eq!(canonical.fault_windows, s.fault_windows);
        // The canonical spec rebuilds the identical scenario.
        let s2 = Scenario::from_spec(&canonical).unwrap();
        assert_eq!(s.fault_windows, s2.fault_windows);
        assert_eq!(s.faulty_nodes(), s2.faulty_nodes());
    }

    #[test]
    fn crash_cancels_outstanding_timers() {
        // Satellite guard for the CrashNode fix: after the shutdown
        // event, the crashed node fires no further timers. Compare the
        // post-cutoff timer *increment* of a crash run against a
        // silent-from-the-start run — identical cadences after the
        // cutoff mean identical increments; the pre-fix behavior leaked
        // the crashed node's still-pending round and level timers into
        // the post-cutoff window and fails this equality.
        let t = scenario().params().t_round;
        let crash_at = 3.0 * t;
        let cutoff = 3.5 * t; // past the shutdown-triggering event
        let horizon = 20.0 * t;
        let timers = |kind: FaultKind, until: f64| {
            let mut s = scenario();
            s.seed(21);
            s.with_fault(1, kind);
            s.run_for(until).stats.timers
        };
        let crash_inc = timers(FaultKind::Crash { at: crash_at }, horizon)
            - timers(FaultKind::Crash { at: crash_at }, cutoff);
        let silent_inc = timers(FaultKind::Silent, horizon) - timers(FaultKind::Silent, cutoff);
        assert_eq!(
            crash_inc, silent_inc,
            "a crashed node must stop firing timers after shutdown"
        );
    }

    #[test]
    fn short_run_produces_samples_and_rows() {
        let mut s = scenario();
        s.seed(1);
        let run = s.run_for(1.0);
        assert!(!run.trace.samples.is_empty());
        assert!(run.trace.rows_of_kind(crate::cluster::ROW_PULSE).count() > 0);
        assert!(run.stats.messages > 0);
    }

    #[test]
    fn parallel_override_reproduces_the_default_run() {
        // The parallel executor must agree with the default global heap
        // event-for-event on any worker count; the full byte-level
        // differential lives in tests/scheduler_equivalence.rs.
        let mut a = scenario();
        a.seed(11);
        let ra = a.run_for(0.5);
        for workers in [1usize, 2, 0] {
            let mut b = scenario();
            b.seed(11).parallel(workers);
            let rb = b.run_for(0.5);
            assert_eq!(ra.stats, rb.stats, "workers = {workers}");
            assert!(
                ra.trace.byte_identical(&rb.trace),
                "parallel scheduler diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn scheduler_override_reproduces_the_default_run() {
        // The default (global heap) and the per-cluster sharded
        // scheduler must agree event-for-event; the full byte-level
        // differential lives in tests/scheduler_equivalence.rs.
        let mut a = scenario();
        a.seed(9);
        let mut b = scenario();
        b.seed(9).sharded_by_cluster();
        let ra = a.run_for(0.5);
        let rb = b.run_for(0.5);
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(
            ra.trace.final_logical(),
            rb.trace.final_logical(),
            "global and sharded schedulers diverged"
        );
    }
}
