//! The ClusterSync round state machine (paper, Section 3, Algorithm 1).
//!
//! One [`ClusterInstance`] tracks one observed cluster. A node runs:
//!
//! * one **active** instance for its own cluster — it drives the node's
//!   main logical clock `L_v` and broadcasts real pulses; and
//! * one **silent** instance per adjacent cluster `B` — the estimator of
//!   Corollary 3.5, identical except that its pulse is a self-loopback
//!   ([`crate::messages::Msg::VirtualPulse`]) and it controls a private
//!   virtual clock track whose value is `L̃_vB`.
//!
//! Each round `r` has three phases of logical durations `τ₁, τ₂, τ₃`:
//! pulse at `(r−1)T + τ₁`; collect pulses until `(r−1)T + τ₁ + τ₂`, then
//! compute the trimmed-midpoint correction `Δ_v(r)`; amortize it over
//! phase 3 by setting (line 13)
//!
//! ```text
//! δ_v = 1 − (1 + 1/ϕ)·Δ_v / (τ₃ + Δ_v),
//! ```
//!
//! which by Lemma 3.1 stretches the round's nominal length to
//! `T + Δ_v(r)` while keeping the clock rate within
//! `[1, ϑ_max]` (Lemma B.4).

use std::sync::Arc;

use ftgcs_sim::engine::Ctx;
use ftgcs_sim::node::{NodeId, TimerTag, TrackId};
use ftgcs_sim::shard::Partition;
use ftgcs_topology::ClusterGraph;

use crate::agreement::trimmed_midpoint;
use crate::messages::Msg;
use crate::params::Params;

/// The engine [`Partition`] that places each cluster in its own
/// scheduler shard.
///
/// Clusters are the natural conservative-synchronization seam of the
/// paper's model: intra-cluster traffic (the clique's pulses) stays
/// inside one shard, while every inter-cluster message is delayed by at
/// least `d − U` ([`crate::params::Params::lookahead`]), giving each
/// shard that much lookahead before it must consult its neighbors.
/// [`crate::runner::Scenario::sharded_by_cluster`] selects this
/// partition.
///
/// # Examples
///
/// ```
/// use ftgcs::cluster::cluster_partition;
/// use ftgcs_topology::{generators, ClusterGraph};
///
/// let cg = ClusterGraph::new(generators::line(3), 4, 1);
/// let p = cluster_partition(&cg);
/// assert_eq!(p.shard_count(), 3);
/// assert_eq!(p.node_count(), 12);
/// ```
#[must_use]
pub fn cluster_partition(cg: &ClusterGraph) -> Partition {
    Partition::by_blocks(cg.physical().node_count(), cg.cluster_size())
}

/// Timer kind: send the round's pulse (end of phase 1).
pub const TIMER_PULSE: u32 = 1;
/// Timer kind: compute the correction (end of phase 2).
pub const TIMER_COMPUTE: u32 = 2;
/// Timer kind: end of round (end of phase 3).
pub const TIMER_ROUND_END: u32 = 3;

/// Trace row kind for real pulses: `values = [cluster, round]`.
pub const ROW_PULSE: &str = "pulse";
/// Trace row kind for round corrections:
/// `values = [cluster, round, delta, delta_v, missing]`.
pub const ROW_ROUND: &str = "round";

/// What an instance reports back to its owning node after a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceEvent {
    /// Nothing the owner needs to act on.
    None,
    /// A round ended and the next one started; for the *own-cluster*
    /// instance this is the moment `t_v(r)` at which InterclusterSync may
    /// switch modes (Algorithm 2).
    RoundEnded {
        /// The round that just started (1-indexed).
        new_round: u64,
    },
}

/// Robustness counters (all zero in proper executions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Corrections that had to be clamped to `|Δ| ≤ ϕ·τ₃`
    /// (Definition B.3, condition 3).
    pub clamped_corrections: u32,
    /// Rounds in which more than `f` member pulses were missing.
    pub overfull_missing: u32,
    /// Duplicate pulses ignored (same sender, same round window).
    pub duplicate_pulses: u32,
    /// Own (loopback/virtual) pulse missing at compute time.
    pub own_pulse_missing: u32,
}

/// Phase of the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Phases 1–2: listening for this round's pulses, `δ_v = 1`.
    Listening,
    /// Phase 3: amortizing the correction; arriving pulses belong to the
    /// next round.
    Amortizing,
}

/// State machine replaying Algorithm 1 for one observed cluster.
#[derive(Debug)]
pub struct ClusterInstance {
    /// Instance index on the owning node (0 = own cluster).
    idx: u32,
    /// The clock track this instance controls.
    track: TrackId,
    /// Base-graph id of the observed cluster (for tracing).
    cluster_id: usize,
    /// Physical members of the observed cluster, in slot order.
    observed: Vec<NodeId>,
    /// True for estimator instances (no real broadcast).
    silent: bool,
    params: Arc<Params>,
    /// Current round, 1-indexed.
    round: u64,
    phase: Phase,
    /// Per-slot receive logical time for the current round (`∞` missing).
    current: Vec<f64>,
    /// Early arrivals for the next round.
    pending: Vec<f64>,
    /// Own pulse receive logical time (the self entry for estimators; for
    /// active instances the self-slot of `current` is used instead).
    own_virtual: f64,
    own_virtual_pending: f64,
    /// Logical time at which this round's pulse was sent (fallback anchor).
    pulse_logical: f64,
    /// `1 + µ·γ_v` — the InterclusterSync rate factor. Always 1 for
    /// silent instances; updated by the owner at round boundaries.
    gamma_factor: f64,
    stats: InstanceStats,
    /// The most recent correction `Δ` (for tracing/tests).
    last_delta: f64,
}

impl ClusterInstance {
    /// Creates an instance observing `observed` (the members of cluster
    /// `cluster_id`, in slot order).
    ///
    /// For an **active** instance, `observed` must contain the owning node
    /// itself; for a **silent** one it must not.
    ///
    /// # Panics
    ///
    /// Panics if `observed` is empty or smaller than `3f+1`.
    #[must_use]
    #[allow(clippy::int_plus_one)] // mirror the paper's k >= 3f+1 form
    pub fn new(
        idx: u32,
        track: TrackId,
        cluster_id: usize,
        observed: Vec<NodeId>,
        silent: bool,
        params: Arc<Params>,
    ) -> Self {
        // Correct nodes always observe full clusters of k >= 3f+1 members;
        // Byzantine self-trackers observe their own cluster minus
        // themselves (k-1 >= 3f members), which still satisfies the
        // 2f+1-observation minimum of the trimmed midpoint (with the
        // virtual self entry added for silent instances).
        assert!(
            observed.len() + usize::from(silent) >= 2 * params.f + 1,
            "observed cluster too small for fault budget f = {}",
            params.f
        );
        let n = observed.len();
        ClusterInstance {
            idx,
            track,
            cluster_id,
            observed,
            silent,
            params,
            round: 1,
            phase: Phase::Listening,
            current: vec![f64::INFINITY; n],
            pending: vec![f64::INFINITY; n],
            own_virtual: f64::INFINITY,
            own_virtual_pending: f64::INFINITY,
            pulse_logical: 0.0,
            gamma_factor: 1.0,
            stats: InstanceStats::default(),
            last_delta: 0.0,
        }
    }

    /// The track this instance controls.
    #[must_use]
    pub fn track(&self) -> TrackId {
        self.track
    }

    /// The observed cluster's base-graph id.
    #[must_use]
    pub fn cluster_id(&self) -> usize {
        self.cluster_id
    }

    /// Whether `node` is a member of the observed cluster.
    #[must_use]
    pub fn observes(&self, node: NodeId) -> bool {
        self.observed.contains(&node)
    }

    /// Current round (1-indexed).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Robustness counters.
    #[must_use]
    pub fn stats(&self) -> InstanceStats {
        self.stats
    }

    /// The most recent correction `Δ_v(r)`.
    #[must_use]
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// Sets the InterclusterSync rate factor `1 + µ·γ_v`. Takes effect at
    /// the next round boundary (Algorithm 2 switches only at `t_v(r)`).
    pub fn set_gamma_factor(&mut self, factor: f64) {
        assert!(factor >= 1.0, "gamma factor is 1 or 1+mu");
        self.gamma_factor = factor;
    }

    /// Current value of this instance's clock.
    #[must_use]
    pub fn clock(&self, ctx: &mut Ctx<'_, Msg>) -> f64 {
        ctx.track_value(self.track)
    }

    /// Starts round 1: sets the phase-1/2 multiplier and schedules the
    /// round's timers. Call once from the owner's `on_start`.
    pub fn start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.start_at(ctx, 1);
    }

    /// Starts at an arbitrary round — the mid-run entry point for nodes
    /// (re)joining an execution in progress, e.g. a lifecycle recovery.
    ///
    /// The instance behaves exactly as if it had reached round `round`
    /// normally but observed no pulses yet: it listens for the round's
    /// pulse window and re-integrates through the same trimmed-midpoint
    /// machinery as every other round. Call instead of
    /// [`ClusterInstance::start`], once, before any message routing.
    ///
    /// # Panics
    ///
    /// Panics if `round` is zero (rounds are 1-indexed).
    pub fn start_at(&mut self, ctx: &mut Ctx<'_, Msg>, round: u64) {
        assert!(round >= 1, "rounds are 1-indexed");
        self.round = round;
        self.apply_listen_multiplier(ctx);
        self.schedule_round_timers(ctx);
    }

    fn apply_listen_multiplier(&self, ctx: &mut Ctx<'_, Msg>) {
        // Phases 1-2: delta_v = 1 (Algorithm 1, line 3).
        let m = (1.0 + self.params.phi) * self.gamma_factor;
        ctx.set_multiplier(self.track, m);
    }

    fn round_start_logical(&self) -> f64 {
        // Lemma B.6: L(t_v(r)) = (r-1)·T under uniform round lengths.
        (self.round - 1) as f64 * self.params.t_round
    }

    fn schedule_round_timers(&self, ctx: &mut Ctx<'_, Msg>) {
        let p = &self.params;
        let start = self.round_start_logical();
        let tag = |kind: u32| TimerTag::new(kind).with_a(self.idx).with_b(self.round);
        ctx.set_timer_at(self.track, start + p.tau1, tag(TIMER_PULSE));
        ctx.set_timer_at(self.track, start + p.tau1 + p.tau2, tag(TIMER_COMPUTE));
        ctx.set_timer_at(self.track, start + p.t_round, tag(TIMER_ROUND_END));
    }

    /// Records a pulse from `from` (a member of the observed cluster).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a member of the observed cluster — the
    /// owner is responsible for routing.
    pub fn on_pulse(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId) {
        let slot = self
            .observed
            .iter()
            .position(|&m| m == from)
            .expect("pulse routed to wrong instance");
        let l = ctx.track_value(self.track);
        let bucket = match self.phase {
            Phase::Listening => &mut self.current[slot],
            Phase::Amortizing => &mut self.pending[slot],
        };
        if bucket.is_finite() {
            self.stats.duplicate_pulses += 1;
        } else {
            *bucket = l;
        }
    }

    /// Records this node's own *virtual* pulse receipt (silent instances).
    pub fn on_virtual_pulse(&mut self, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.silent, "active instances receive real loopback");
        let l = ctx.track_value(self.track);
        let bucket = match self.phase {
            Phase::Listening => &mut self.own_virtual,
            Phase::Amortizing => &mut self.own_virtual_pending,
        };
        if bucket.is_finite() {
            self.stats.duplicate_pulses += 1;
        } else {
            *bucket = l;
        }
    }

    /// Handles one of this instance's timers. The owner must route tags
    /// whose `a` equals this instance's index.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) -> InstanceEvent {
        debug_assert_eq!(tag.a, self.idx, "timer routed to wrong instance");
        match tag.kind {
            TIMER_PULSE => {
                self.pulse_logical = ctx.track_value(self.track);
                if self.silent {
                    ctx.send_self(Msg::VirtualPulse { instance: self.idx });
                } else {
                    ctx.broadcast_with_loopback(Msg::Pulse);
                    ctx.emit(ROW_PULSE, vec![self.cluster_id as f64, self.round as f64]);
                }
                InstanceEvent::None
            }
            TIMER_COMPUTE => {
                self.compute_correction(ctx);
                InstanceEvent::None
            }
            TIMER_ROUND_END => {
                self.advance_round(ctx);
                InstanceEvent::RoundEnded {
                    new_round: self.round,
                }
            }
            other => unreachable!("unknown cluster timer kind {other}"),
        }
    }

    /// End of phase 2 (Algorithm 1, lines 7–13).
    fn compute_correction(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let p = Arc::clone(&self.params);
        // The reference entry t_vv: own loopback (active) or virtual
        // (silent) receipt.
        let own = if self.silent {
            self.own_virtual
        } else {
            let me = ctx.my_id();
            let slot = self
                .observed
                .iter()
                .position(|&m| m == me)
                .expect("active instance observes own cluster");
            self.current[slot]
        };
        let own = if own.is_finite() {
            own
        } else {
            // Improper execution (cannot be caused by Byzantine nodes):
            // fall back to the nominal self-delay.
            self.stats.own_pulse_missing += 1;
            self.pulse_logical + p.theta_g * p.d
        };
        // Multiset S_v of offsets tau_wv = L(t_wv) - L(t_vv); missing
        // pulses become +inf and are trimmed if within the fault budget.
        let mut observations: Vec<f64> = self
            .current
            .iter()
            .map(|&l| {
                if l.is_finite() {
                    l - own
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        if self.silent {
            // The estimator participates as a (k+1)-th virtual member.
            observations.push(0.0);
        }
        let missing = observations.iter().filter(|x| !x.is_finite()).count();
        let delta = match trimmed_midpoint(&observations, p.f) {
            Ok(m) => m.delta,
            Err(_) => {
                // More than f missing: improper execution. Apply no
                // correction this round, but record it.
                self.stats.overfull_missing += 1;
                0.0
            }
        };
        // Defensive clamp to |delta| <= phi*tau3 (Definition B.3(3) holds
        // in proper executions; Corollary B.12).
        let limit = p.phi * p.tau3;
        let clamped = delta.clamp(-limit * (1.0 - 1e-9), limit);
        if clamped != delta {
            self.stats.clamped_corrections += 1;
        }
        self.last_delta = clamped;
        // Line 13: delta_v = 1 - (1 + 1/phi) * Delta / (tau3 + Delta).
        let delta_v = 1.0 - (1.0 + 1.0 / p.phi) * clamped / (p.tau3 + clamped);
        debug_assert!(delta_v >= 0.0 && delta_v <= 2.0 / (1.0 - p.phi) + 1e-12);
        let m = (1.0 + p.phi * delta_v) * self.gamma_factor;
        ctx.set_multiplier(self.track, m);
        self.phase = Phase::Amortizing;
        if !self.silent {
            ctx.emit(
                ROW_ROUND,
                vec![
                    self.cluster_id as f64,
                    self.round as f64,
                    clamped,
                    delta_v,
                    missing as f64,
                ],
            );
        }
    }

    /// End of phase 3 (Algorithm 1, line 14): begin the next round.
    fn advance_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.round += 1;
        self.phase = Phase::Listening;
        // Pulses that arrived during phase 3 belong to the new round.
        std::mem::swap(&mut self.current, &mut self.pending);
        self.pending.iter_mut().for_each(|x| *x = f64::INFINITY);
        self.own_virtual = self.own_virtual_pending;
        self.own_virtual_pending = f64::INFINITY;
        self.apply_listen_multiplier(ctx);
        self.schedule_round_timers(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgcs_sim::clock::RateModel;
    use ftgcs_sim::engine::{SimBuilder, SimConfig};
    use ftgcs_sim::network::{DelayConfig, DelayDistribution};
    use ftgcs_sim::node::Behavior;
    use ftgcs_sim::time::{SimDuration, SimTime};
    use std::sync::Mutex;

    /// Shared observation window for the harness.
    #[derive(Debug, Default)]
    struct Probe {
        rounds: Vec<u64>,
        deltas: Vec<f64>,
        stats: InstanceStats,
    }

    /// Drives one ClusterInstance in a deterministic world (ρ = 0,
    /// exact delay d) so the Algorithm 1 arithmetic can be checked to
    /// float precision. A non-zero `initial_jump` fabricates an
    /// *improper* execution (the clock starts several rounds ahead).
    struct Harness {
        inst: ClusterInstance,
        probe: Arc<Mutex<Probe>>,
        initial_jump: f64,
    }

    impl Behavior<Msg> for Harness {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if self.initial_jump != 0.0 {
                ctx.jump_track(TrackId::MAIN, self.initial_jump);
            }
            self.inst.start(ctx);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
            match msg {
                Msg::Pulse => self.inst.on_pulse(ctx, from),
                Msg::VirtualPulse { .. } => self.inst.on_virtual_pulse(ctx),
                Msg::Level { .. } => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
            if tag.kind == TIMER_COMPUTE {
                self.inst.on_timer(ctx, tag);
                let mut probe = self.probe.lock().unwrap();
                probe.deltas.push(self.inst.last_delta());
                probe.stats = self.inst.stats();
                return;
            }
            if let InstanceEvent::RoundEnded { new_round } = self.inst.on_timer(ctx, tag) {
                self.probe.lock().unwrap().rounds.push(new_round);
            }
        }
    }

    /// Broadcasts one `Msg::Pulse` at each Newtonian time in `at`
    /// (ρ = 0 ⇒ hardware = logical = Newtonian for this node).
    struct ScriptedPulser {
        at: Vec<f64>,
    }

    impl Behavior<Msg> for ScriptedPulser {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            for (i, &t) in self.at.iter().enumerate() {
                ctx.set_timer_at(TrackId::MAIN, t, TimerTag::new(99).with_b(i as u64));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
            ctx.broadcast(Msg::Pulse);
        }
    }

    fn params() -> Arc<Params> {
        Arc::new(Params::practical(1e-4, 1e-3, 1e-4, 0).unwrap())
    }

    /// A drift-free, exact-delay world: every message takes exactly `d`.
    fn config() -> SimConfig {
        config_for(1e-3)
    }

    fn config_for(d: f64) -> SimConfig {
        SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_secs(d),
                SimDuration::ZERO,
                DelayDistribution::Maximal,
            ),
            rho: 0.0,
            rate_model: RateModel::Constant { frac: 0.0 },
            seed: 1,
            sample_interval: None,
            ..SimConfig::default()
        }
    }

    /// Builds a 2-member world: the harness (slot 0) plus a scripted
    /// pulser (slot 1), both observed by the instance under test. With
    /// f = 0 nothing is trimmed, so `Δ = τ_pulser / 2` exactly
    /// (Algorithm 1 line 12 on the two-entry multiset {0, τ}).
    fn run_with_pulses(pulse_times: Vec<f64>, horizon: f64) -> (Arc<Mutex<Probe>>, Arc<Params>) {
        run_with_pulses_in(params(), pulse_times, horizon)
    }

    fn run_with_pulses_in(
        p: Arc<Params>,
        pulse_times: Vec<f64>,
        horizon: f64,
    ) -> (Arc<Mutex<Probe>>, Arc<Params>) {
        let probe = Arc::new(Mutex::new(Probe::default()));
        let mut b = SimBuilder::new(config_for(p.d));
        let inst = ClusterInstance::new(
            0,
            TrackId::MAIN,
            0,
            vec![NodeId(0), NodeId(1)],
            false,
            Arc::clone(&p),
        );
        let h = b.add_node(Box::new(Harness {
            inst,
            probe: Arc::clone(&probe),
            initial_jump: 0.0,
        }));
        let s = b.add_node(Box::new(ScriptedPulser { at: pulse_times }));
        b.add_edge(h, s);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(horizon));
        (probe, p)
    }

    /// Newtonian time at which the harness pulses in round 1: its clock
    /// runs at `1 + ϕ` through phases 1–2 (ρ = 0, γ = 0), so it reaches
    /// `τ₁` at `τ₁ / (1+ϕ)`.
    fn harness_pulse_time(p: &Params) -> f64 {
        p.tau1 / (1.0 + p.phi)
    }

    #[test]
    fn round_progression_is_exact_without_peers() {
        // A singleton cluster (k = 1, f = 0) observing only itself: the
        // loopback self-entry gives Δ = 0 every round, and with ρ = 0
        // every round takes exactly T/(1+ϕ) Newtonian seconds
        // (Lemma B.6 + Lemma 3.1 with Δ = 0).
        let p = params();
        let probe = Arc::new(Mutex::new(Probe::default()));
        let mut b = SimBuilder::new(config());
        let inst =
            ClusterInstance::new(0, TrackId::MAIN, 0, vec![NodeId(0)], false, Arc::clone(&p));
        b.add_node(Box::new(Harness {
            inst,
            probe: Arc::clone(&probe),
            initial_jump: 0.0,
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(3.5 * p.t_round));
        let probe = probe.lock().unwrap();
        assert!(probe.rounds.len() >= 3, "rounds seen: {:?}", probe.rounds);
        assert_eq!(probe.rounds[0], 2);
        assert_eq!(probe.rounds[1], 3);
        for d in &probe.deltas {
            assert!(d.abs() < 1e-12, "unexpected correction {d}");
        }
        assert_eq!(probe.stats.duplicate_pulses, 0);
        assert_eq!(probe.stats.overfull_missing, 0);
    }

    #[test]
    fn midpoint_correction_matches_line_12_exactly() {
        let p = params();
        // Pulser fires x (logical) after the harness's pulse: its pulse
        // arrives in phase 2 with offset τ = (1+ϕ)·(t0 − t_p), so choose
        // t0 = t_p + x/(1+ϕ) to make τ = x exactly.
        let x = 0.5 * p.e;
        let t0 = harness_pulse_time(&p) + x / (1.0 + p.phi);
        let (probe, _) = run_with_pulses(vec![t0], 0.9 * p.t_round);
        let probe = probe.lock().unwrap();
        assert_eq!(probe.deltas.len(), 1);
        // Two-entry multiset {0, x}, f = 0: Δ = (0 + x)/2.
        let expect = x / 2.0;
        assert!(
            (probe.deltas[0] - expect).abs() < 1e-12,
            "delta {} != {expect}",
            probe.deltas[0]
        );
        assert_eq!(probe.stats.clamped_corrections, 0);
    }

    #[test]
    fn duplicate_pulses_are_counted_and_ignored() {
        let p = params();
        let x = 0.25 * p.e;
        let t0 = harness_pulse_time(&p) + x / (1.0 + p.phi);
        // Same round window, two pulses: second is a duplicate and the
        // correction must use the first.
        let (probe, _) = run_with_pulses(vec![t0, t0 + 2e-4], 0.9 * p.t_round);
        let probe = probe.lock().unwrap();
        assert_eq!(probe.stats.duplicate_pulses, 1);
        assert!((probe.deltas[0] - x / 2.0).abs() < 1e-12);
    }

    #[test]
    fn phase_three_pulses_belong_to_the_next_round() {
        let p = params();
        // Fire while the harness is amortizing (after τ₁+τ₂ of its
        // logical time, before T): the pulse must not affect round 1
        // (already computed) and must be round 2's entry — *not* a
        // duplicate when the pulser also fires in round 2's window.
        let amortize_t = (p.tau1 + p.tau2) / (1.0 + p.phi) + 0.1 * p.tau3;
        let (probe, _) = run_with_pulses(vec![amortize_t], 1.9 * p.t_round);
        let probe = probe.lock().unwrap();
        assert_eq!(probe.stats.duplicate_pulses, 0);
        assert_eq!(probe.deltas.len(), 2, "two rounds computed");
        // Round 2's correction uses the early pulse: it arrived well
        // before round 2's own pulse, giving a *negative* offset.
        assert!(probe.deltas[1] < 0.0, "delta2 = {}", probe.deltas[1]);
    }

    #[test]
    fn extreme_offsets_are_clamped_in_improper_executions() {
        // In *proper* executions the clamp can never fire (Cor. B.12):
        // every in-window offset is bounded by the phase lengths. So we
        // fabricate an improper one — the harness's clock starts 2.5
        // rounds ahead, making peer pulses arrive with multi-round
        // negative offsets — and check the defensive clamp caps every
        // correction at ϕ·τ₃ and counts the events.
        let p = params();
        let probe = Arc::new(Mutex::new(Probe::default()));
        let mut b = SimBuilder::new(config());
        let inst = ClusterInstance::new(
            0,
            TrackId::MAIN,
            0,
            vec![NodeId(0), NodeId(1)],
            false,
            Arc::clone(&p),
        );
        let h = b.add_node(Box::new(Harness {
            inst,
            probe: Arc::clone(&probe),
            initial_jump: 2.5 * p.t_round,
        }));
        // The peer pulses on the *honest* schedule, once per round.
        let honest: Vec<f64> = (0..6)
            .map(|r| (r as f64 * p.t_round + p.tau1) / (1.0 + p.phi))
            .collect();
        let s = b.add_node(Box::new(ScriptedPulser { at: honest }));
        b.add_edge(h, s);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(4.0 * p.t_round));
        let probe = probe.lock().unwrap();
        let limit = p.phi * p.tau3;
        assert!(
            probe.stats.clamped_corrections >= 1,
            "no clamping despite a 2.5-round initial offset: {:?}",
            probe.stats
        );
        for d in &probe.deltas {
            assert!(
                d.abs() <= limit * (1.0 + 1e-9),
                "correction {d} escaped the clamp {limit}"
            );
        }
    }

    #[test]
    fn missing_peer_pulse_is_trimmed_within_budget() {
        // With f = 1 and k = 4, a silent member's missing entry becomes
        // +inf and is trimmed: Δ stays 0 when the others are punctual.
        let p = Arc::new(Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap());
        let probe = Arc::new(Mutex::new(Probe::default()));
        let mut b = SimBuilder::new(config());
        let inst = ClusterInstance::new(
            0,
            TrackId::MAIN,
            0,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            false,
            Arc::clone(&p),
        );
        let h = b.add_node(Box::new(Harness {
            inst,
            probe: Arc::clone(&probe),
            initial_jump: 0.0,
        }));
        let t_p = p.tau1 / (1.0 + p.phi);
        // Two punctual peers (offset 0), one forever-silent peer.
        for _ in 0..2 {
            let n = b.add_node(Box::new(ScriptedPulser { at: vec![t_p] }));
            b.add_edge(h, n);
        }
        let silent = b.add_node(Box::new(ScriptedPulser { at: vec![] }));
        b.add_edge(h, silent);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(0.9 * p.t_round));
        let probe = probe.lock().unwrap();
        assert_eq!(probe.deltas.len(), 1);
        assert!(probe.deltas[0].abs() < 1e-12, "delta {}", probe.deltas[0]);
        assert_eq!(probe.stats.overfull_missing, 0);
        assert_eq!(probe.stats.clamped_corrections, 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_observation_set_rejected() {
        let p = Arc::new(Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap());
        let _ = ClusterInstance::new(0, TrackId::MAIN, 0, vec![NodeId(0)], false, p);
    }

    #[test]
    #[should_panic(expected = "gamma factor")]
    fn sub_unit_gamma_rejected() {
        let p = params();
        let mut inst =
            ClusterInstance::new(0, TrackId::MAIN, 0, vec![NodeId(0), NodeId(1)], false, p);
        inst.set_gamma_factor(0.5);
    }
}
