//! The fault-tolerant global-maximum estimator `M_v` (Appendix C.2).
//!
//! Every node maintains a conservative estimate `M_v(t) ≤ L_max(t)` of the
//! maximum correct logical clock:
//!
//! * `M_v` grows continuously at rate `h_v/(1+ρ) ≤ 1` — never faster than
//!   `L_max`, whose rate is at least 1 (Lemma C.1);
//! * `M_v ← max(M_v, L_v)` — a node's own clock is a valid lower bound;
//! * whenever `M_v` crosses a multiple of the *level unit* `X`, the node
//!   broadcasts a level pulse; when `f+1` members of any single adjacent
//!   cluster have reported level `ℓ`, the receiver raises
//!   `M_v ← max(M_v, ℓ·X + (d−U))` — at least one reporter was correct and
//!   its message was in flight for at least `d−U` while `L_max` kept
//!   rising at rate ≥ 1 (Lemma C.2's argument).
//!
//! **Deviation from the paper (documented in DESIGN.md):** the paper uses
//! `X = d−U`, which is safe with the bump `(ℓ+1)(d−U)` but floods
//! `Θ(1/(d−U))` messages per second per node. We use a configurable
//! `X ≥ d−U` (default `δ`) with the weaker-but-safe bump
//! `ℓ·X + (d−U)`; the resulting estimate lag is `O(X + d·D)` ⊆ `O(δ·D)`,
//! preserving Theorem C.3's global skew bound while keeping message rates
//! practical.

use ftgcs_sim::engine::Ctx;
use ftgcs_sim::node::{NodeId, TimerTag, TrackId};

use crate::messages::Msg;

/// Timer kind: `M_v` reached the next level boundary.
pub const TIMER_LEVEL: u32 = 4;

/// Level reports observed from one adjacent cluster.
#[derive(Debug, Clone)]
struct ClusterLevels {
    /// Members of the cluster, in slot order.
    members: Vec<NodeId>,
    /// Highest level reported by each member.
    seen: Vec<u64>,
}

/// The per-node max-estimator component.
#[derive(Debug)]
pub struct MaxEstimator {
    track: TrackId,
    /// Level unit `X` (logical seconds per level pulse).
    unit: f64,
    /// Minimum message delay `d − U`.
    min_delay: f64,
    /// Per-cluster fault budget `f`.
    f: usize,
    /// Highest level this node has announced.
    sent_level: u64,
    /// Level reports per observable cluster (own + adjacent).
    clusters: Vec<ClusterLevels>,
}

impl MaxEstimator {
    /// Creates the estimator.
    ///
    /// `track` must be a dedicated clock track created by the owner with
    /// multiplier `1/(1+ρ)` (so `M_v` self-advances at ≤ 1). `clusters`
    /// lists the member sets of every cluster this node can hear (its own
    /// plus all adjacent ones).
    ///
    /// # Panics
    ///
    /// Panics if `unit < min_delay` (the bump rule would over-claim) or
    /// `min_delay < 0`.
    #[must_use]
    pub fn new(
        track: TrackId,
        unit: f64,
        min_delay: f64,
        f: usize,
        clusters: Vec<Vec<NodeId>>,
    ) -> Self {
        assert!(min_delay >= 0.0, "minimum delay must be non-negative");
        assert!(
            unit >= min_delay,
            "level unit must be at least d-U for the flooding to make progress"
        );
        MaxEstimator {
            track,
            unit,
            min_delay,
            f,
            sent_level: 0,
            clusters: clusters
                .into_iter()
                .map(|members| ClusterLevels {
                    seen: vec![0; members.len()],
                    members,
                })
                .collect(),
        }
    }

    /// Arms the first level-boundary timer. Call from the owner's
    /// `on_start` after creating the track.
    pub fn start(&self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer_at(self.track, self.unit, TimerTag::new(TIMER_LEVEL).with_b(1));
    }

    /// Current estimate `M_v`.
    #[must_use]
    pub fn value(&self, ctx: &mut Ctx<'_, Msg>) -> f64 {
        ctx.track_value(self.track)
    }

    /// Applies `M_v ← max(M_v, own_logical)` (the node's own clock lower-
    /// bounds `L_max`). Call at round boundaries before reading
    /// [`Self::value`] for the catch-up rule.
    pub fn observe_own_clock(&mut self, ctx: &mut Ctx<'_, Msg>, own_logical: f64) {
        if own_logical > self.value(ctx) {
            ctx.jump_track(self.track, own_logical);
        }
    }

    /// Handles a level report from a neighbor.
    ///
    /// Reports from nodes outside the registered clusters are ignored (a
    /// Byzantine node cannot inject reports for clusters it is not in,
    /// because identity is carried by the channel).
    pub fn on_level(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, level: u64) {
        let mut candidate = None;
        for cl in &mut self.clusters {
            if let Some(slot) = cl.members.iter().position(|&m| m == from) {
                if level > cl.seen[slot] {
                    cl.seen[slot] = level;
                }
                // (f+1)-th largest report: at least one correct member of
                // this cluster has genuinely crossed this level.
                let mut sorted = cl.seen.clone();
                sorted.sort_unstable_by(|a, b| b.cmp(a));
                let confirmed = sorted.get(self.f).copied().unwrap_or(0);
                if confirmed > 0 {
                    let bump = confirmed as f64 * self.unit + self.min_delay;
                    candidate = Some(candidate.map_or(bump, |c: f64| c.max(bump)));
                }
                break;
            }
        }
        if let Some(bump) = candidate {
            if bump > self.value(ctx) {
                ctx.jump_track(self.track, bump);
                // The pending boundary timer now targets the past and will
                // fire immediately, announcing the crossed levels.
            }
        }
    }

    /// Handles the level-boundary timer: announce newly crossed levels and
    /// re-arm for the next boundary.
    ///
    /// `tag` must be the fired timer's tag: its `b` field carries the
    /// level the timer was armed for. The track has reached that boundary
    /// (that is why the timer fired), but re-reading the track can yield
    /// a value a few ulps *below* it; trusting only the re-read value
    /// would re-arm at the same boundary and livelock the event loop at a
    /// constant Newtonian time.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        let value = self.value(ctx);
        let level = ((value / self.unit).floor() as u64).max(tag.b);
        if level > self.sent_level {
            self.sent_level = level;
            ctx.broadcast(Msg::Level { level });
        }
        let next_level = self.sent_level + 1;
        ctx.set_timer_at(
            self.track,
            next_level as f64 * self.unit,
            TimerTag::new(TIMER_LEVEL).with_b(next_level),
        );
    }

    /// Highest level announced so far.
    #[must_use]
    pub fn sent_level(&self) -> u64 {
        self.sent_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgcs_sim::clock::RateModel;
    use ftgcs_sim::engine::{SimBuilder, SimConfig};
    use ftgcs_sim::network::{DelayConfig, DelayDistribution};
    use ftgcs_sim::node::Behavior;
    use ftgcs_sim::time::{SimDuration, SimTime};
    use std::sync::Arc;
    use std::sync::Mutex;

    #[test]
    #[should_panic(expected = "at least d-U")]
    fn rejects_sub_delay_unit() {
        let _ = MaxEstimator::new(TrackId(1), 0.5e-3, 1e-3, 1, vec![]);
    }

    #[test]
    fn construction_and_accessors() {
        let est = MaxEstimator::new(
            TrackId(1),
            0.01,
            1e-3,
            1,
            vec![vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]],
        );
        assert_eq!(est.sent_level(), 0);
    }

    const UNIT: f64 = 0.01;
    const MIN_DELAY: f64 = 1e-3;

    /// Feeds a scripted sequence of level reports into one MaxEstimator
    /// at t = 0 (before the track has self-advanced measurably) and
    /// records the value after each report.
    struct LevelHarness {
        script: Vec<(NodeId, u64)>,
        values: Arc<Mutex<Vec<f64>>>,
    }

    impl Behavior<Msg> for LevelHarness {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            let track = ctx.new_track(0.0, 1.0);
            let members: Vec<NodeId> = (1..=4).map(NodeId).collect();
            let mut est = MaxEstimator::new(track, UNIT, MIN_DELAY, 1, vec![members]);
            for &(from, level) in &self.script {
                est.on_level(ctx, from, level);
                self.values.lock().unwrap().push(est.value(ctx));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {}
    }

    fn run_script(script: Vec<(NodeId, u64)>) -> Vec<f64> {
        let values = Arc::new(Mutex::new(Vec::new()));
        let config = SimConfig {
            delay: DelayConfig::new(
                SimDuration::from_millis(1.0),
                SimDuration::ZERO,
                DelayDistribution::Maximal,
            ),
            rho: 0.0,
            rate_model: RateModel::Constant { frac: 0.0 },
            seed: 5,
            sample_interval: None,
            ..SimConfig::default()
        };
        let mut b = SimBuilder::new(config);
        b.add_node(Box::new(LevelHarness {
            script,
            values: Arc::clone(&values),
        }));
        let mut sim = b.build();
        sim.run_until(SimTime::ZERO);
        let out = values.lock().unwrap().clone();
        drop(sim);
        out
    }

    #[test]
    fn single_report_is_not_confirmed() {
        // f = 1: one reporter may be Byzantine; no bump.
        let v = run_script(vec![(NodeId(1), 3)]);
        assert!(v[0].abs() < 1e-12, "bumped on unconfirmed report: {}", v[0]);
    }

    #[test]
    fn f_plus_one_distinct_reporters_confirm_a_level() {
        let v = run_script(vec![(NodeId(1), 3), (NodeId(2), 3)]);
        let expect = 3.0 * UNIT + MIN_DELAY;
        assert!(v[0].abs() < 1e-12);
        assert!((v[1] - expect).abs() < 1e-12, "bump {} != {expect}", v[1]);
    }

    #[test]
    fn repeated_reports_from_one_sender_do_not_confirm() {
        // A flooder escalating alone: the (f+1)-th largest stays at the
        // honest level, so its huge claims never move M_v.
        let v = run_script(vec![
            (NodeId(1), 3),
            (NodeId(2), 3),
            (NodeId(1), 100),
            (NodeId(1), 100_000),
        ]);
        let expect = 3.0 * UNIT + MIN_DELAY;
        assert!((v[2] - expect).abs() < 1e-12, "flooder moved M_v: {}", v[2]);
        assert!((v[3] - expect).abs() < 1e-12, "flooder moved M_v: {}", v[3]);
    }

    #[test]
    fn confirmation_takes_the_f_plus_one_th_largest() {
        // Reports 5, 4, 3 from three distinct members with f = 1: the
        // 2nd largest (4) is confirmed — at least one of {5, 4} is
        // honest, so L_max has genuinely crossed level 4.
        let v = run_script(vec![(NodeId(1), 5), (NodeId(2), 4), (NodeId(3), 3)]);
        let expect = 4.0 * UNIT + MIN_DELAY;
        assert!((v[1] - expect).abs() < 1e-12, "bump {} != {expect}", v[1]);
        // The third (lower) report must not regress the estimate.
        assert!((v[2] - expect).abs() < 1e-12);
    }

    #[test]
    fn reports_from_unknown_senders_are_ignored() {
        let v = run_script(vec![(NodeId(9), 50), (NodeId(8), 50)]);
        assert!(v[1].abs() < 1e-12, "strangers moved M_v: {}", v[1]);
    }

    #[test]
    fn value_never_decreases_on_lower_confirmations() {
        let v = run_script(vec![
            (NodeId(1), 10),
            (NodeId(2), 10),
            (NodeId(3), 2),
            (NodeId(4), 2),
        ]);
        let expect = 10.0 * UNIT + MIN_DELAY;
        assert!((v[3] - expect).abs() < 1e-12, "M_v regressed: {}", v[3]);
    }
}
