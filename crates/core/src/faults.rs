//! Byzantine fault strategies.
//!
//! The model places no restriction on faulty nodes (paper, Section 2,
//! "Faults"): they need not broadcast, may send at arbitrary times, and may
//! send different messages to different neighbors. True worst-case behavior
//! cannot be enumerated, so this module provides concrete adversaries that
//! attack each defended surface:
//!
//! | strategy | attacks |
//! |---|---|
//! | [`SilentNode`] / crash | liveness of pulse collection (missing entries) |
//! | [`RandomPulser`] | round attribution windows |
//! | [`TwoFacedPulser`] | agreement: different timing per receiver |
//! | [`SkewPuller`] | validity: drag the cluster's midpoint |
//! | [`StealthyRusher`] | rate bounds: plausible-but-too-fast pulses |
//! | [`LevelFlooder`] | the `f+1` confirmation rule of the max estimator |
//!
//! Strategies that need to stay *plausible* (land inside the listening
//! window round after round) track their own cluster with a silent
//! [`ClusterInstance`] — the same estimator machinery correct neighbors
//! use — and then time their lies relative to that estimate.

use std::sync::Arc;

use ftgcs_sim::engine::Ctx;
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};

use crate::cluster::{ClusterInstance, InstanceEvent, TIMER_ROUND_END};
use crate::messages::Msg;
use crate::node::{FtGcsNode, NodeConfig};
use crate::params::Params;

/// Timer kind for a Byzantine node's "early face" pulse.
const TIMER_EARLY: u32 = 10;
/// Timer kind for a Byzantine node's "late face" pulse.
const TIMER_LATE: u32 = 11;
/// Timer kind for periodic Byzantine actions.
const TIMER_PERIODIC: u32 = 12;

/// A fault strategy, used by the scenario runner to instantiate behaviors.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Never sends anything (fail-silent from the start).
    Silent,
    /// Runs the correct protocol until the given Newtonian time, then goes
    /// silent (a crash; equivalent to deleting its links, cf. §1).
    Crash {
        /// Crash time (Newtonian seconds).
        at: f64,
    },
    /// Sends pulses to all neighbors at random intervals.
    RandomPulser {
        /// Mean interval between pulse volleys (seconds).
        mean_interval: f64,
    },
    /// Sends each round's pulse *early* to half its neighbors and *late*
    /// to the other half, by ±`amplitude` logical seconds around the
    /// correct pulse time.
    TwoFaced {
        /// Timing asymmetry (logical seconds); keep below `ϕ·τ₃` to stay
        /// plausible.
        amplitude: f64,
    },
    /// Sends every pulse `offset` logical seconds away from the correct
    /// time (negative = early, trying to drag the cluster fast).
    SkewPuller {
        /// Constant timing offset (logical seconds).
        offset: f64,
    },
    /// Free-runs the round schedule at a rate beyond the legal bound,
    /// drifting steadily ahead of the cluster.
    StealthyRusher {
        /// Extra rate beyond `(1+ϕ)(1+µ)` (e.g. `0.01` = 1% fast).
        extra_rate: f64,
    },
    /// Broadcasts absurd max-estimator levels to inflate `M_v`.
    LevelFlooder {
        /// Level increment announced per round.
        level_step: u64,
    },
}

/// Builds the behavior implementing `kind` for the node described by
/// `cfg`.
#[must_use]
pub fn make_fault_behavior(kind: &FaultKind, cfg: NodeConfig) -> Box<dyn Behavior<Msg>> {
    match kind {
        FaultKind::Silent => Box::new(SilentNode),
        FaultKind::Crash { at } => Box::new(CrashNode::new(cfg, *at)),
        FaultKind::RandomPulser { mean_interval } => Box::new(RandomPulser::new(*mean_interval)),
        FaultKind::TwoFaced { amplitude } => Box::new(TwoFacedPulser::new(cfg, *amplitude)),
        FaultKind::SkewPuller { offset } => Box::new(SkewPuller::new(cfg, *offset)),
        FaultKind::StealthyRusher { extra_rate } => {
            Box::new(StealthyRusher::new(Arc::clone(&cfg.params), *extra_rate))
        }
        FaultKind::LevelFlooder { level_step } => {
            Box::new(LevelFlooder::new(Arc::clone(&cfg.params), *level_step))
        }
    }
}

/// A node that never sends anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentNode;

impl Behavior<Msg> for SilentNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Msg>) {}
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {}
}

/// Correct behavior until a crash time, then silence.
#[derive(Debug)]
pub struct CrashNode {
    inner: FtGcsNode,
    crash_at: f64,
}

impl CrashNode {
    /// Creates a node that runs `FtGcsNode` semantics until `crash_at`
    /// (Newtonian seconds).
    #[must_use]
    pub fn new(cfg: NodeConfig, crash_at: f64) -> Self {
        CrashNode {
            inner: FtGcsNode::new(cfg),
            crash_at,
        }
    }

    fn alive(&self, ctx: &Ctx<'_, Msg>) -> bool {
        ctx.newtonian_now().as_secs() < self.crash_at
    }
}

impl Behavior<Msg> for CrashNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.alive(ctx) {
            self.inner.on_start(ctx);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        if self.alive(ctx) {
            self.inner.on_message(ctx, from, msg);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        if self.alive(ctx) {
            self.inner.on_timer(ctx, tag);
        }
    }
}

/// Pulses at random times, ignoring the protocol entirely.
#[derive(Debug)]
pub struct RandomPulser {
    mean_interval: f64,
}

impl RandomPulser {
    /// Creates a pulser with the given mean volley interval (seconds).
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    #[must_use]
    pub fn new(mean_interval: f64) -> Self {
        assert!(mean_interval > 0.0, "interval must be positive");
        RandomPulser { mean_interval }
    }

    fn arm(&self, ctx: &mut Ctx<'_, Msg>) {
        let next =
            ctx.track_value(TrackId::MAIN) + ctx.rng().uniform(0.1, 1.9) * self.mean_interval;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_PERIODIC));
    }
}

impl Behavior<Msg> for RandomPulser {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.arm(ctx);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
        // Send to a random subset of neighbors, one by one (Byzantine
        // nodes are not bound to broadcast).
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        for to in neighbors {
            if ctx.rng().chance(0.7) {
                ctx.send(to, Msg::Pulse);
            }
        }
        self.arm(ctx);
    }
}

/// Shared machinery for Byzantine strategies that stay synchronized to
/// their own cluster via a silent tracker instance.
#[derive(Debug)]
struct ClusterFollower {
    tracker: Option<ClusterInstance>,
    params: Arc<Params>,
    cluster_id: usize,
    /// Own-cluster members excluding this node.
    peers: Vec<NodeId>,
}

impl ClusterFollower {
    fn new(cfg: &NodeConfig, me_excluded_later: bool) -> Self {
        debug_assert!(me_excluded_later);
        ClusterFollower {
            tracker: None,
            params: Arc::clone(&cfg.params),
            cluster_id: cfg.cluster_id,
            peers: cfg.members.clone(),
        }
    }

    fn start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let me = ctx.my_id();
        self.peers.retain(|&m| m != me);
        let track = ctx.new_track(0.0, 1.0);
        let mut tracker = ClusterInstance::new(
            1,
            track,
            self.cluster_id,
            self.peers.clone(),
            true,
            Arc::clone(&self.params),
        );
        tracker.start(ctx);
        self.tracker = Some(tracker);
    }

    /// Routes messages into the tracker; returns `true` if consumed.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) -> bool {
        let Some(tracker) = &mut self.tracker else {
            return false;
        };
        match *msg {
            Msg::Pulse if tracker.observes(from) => {
                tracker.on_pulse(ctx, from);
                true
            }
            Msg::VirtualPulse { instance: 1 } if from == ctx.my_id() => {
                tracker.on_virtual_pulse(ctx);
                true
            }
            _ => false,
        }
    }

    /// Routes tracker timers; returns the instance event if it was a
    /// tracker timer (tag.a == 1).
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) -> Option<InstanceEvent> {
        if tag.a == 1 && tag.kind <= TIMER_ROUND_END {
            let tracker = self.tracker.as_mut().expect("started");
            Some(tracker.on_timer(ctx, tag))
        } else {
            None
        }
    }

    fn track(&self) -> TrackId {
        self.tracker.as_ref().expect("started").track()
    }

    /// Logical time of the next round-`r` pulse on the tracker clock.
    fn pulse_target(&self, round: u64) -> f64 {
        (round - 1) as f64 * self.params.t_round + self.params.tau1
    }
}

/// Sends pulses early to even-indexed neighbors and late to odd-indexed
/// ones — the classic equivocation attack on agreement-based sync.
#[derive(Debug)]
pub struct TwoFacedPulser {
    follower: ClusterFollower,
    amplitude: f64,
}

impl TwoFacedPulser {
    /// Creates the attacker; `amplitude` is the ± timing lie in logical
    /// seconds.
    #[must_use]
    pub fn new(cfg: NodeConfig, amplitude: f64) -> Self {
        TwoFacedPulser {
            follower: ClusterFollower::new(&cfg, true),
            amplitude: amplitude.abs(),
        }
    }

    fn schedule_faces(&self, ctx: &mut Ctx<'_, Msg>, round: u64) {
        let target = self.follower.pulse_target(round);
        let track = self.follower.track();
        let tag = |kind: u32| TimerTag::new(kind).with_b(round);
        ctx.set_timer_at(track, (target - self.amplitude).max(0.0), tag(TIMER_EARLY));
        ctx.set_timer_at(track, target + self.amplitude, tag(TIMER_LATE));
    }

    fn send_face(&self, ctx: &mut Ctx<'_, Msg>, early: bool) {
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        for (i, to) in neighbors.into_iter().enumerate() {
            if (i % 2 == 0) == early {
                ctx.send(to, Msg::Pulse);
            }
        }
    }
}

impl Behavior<Msg> for TwoFacedPulser {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.follower.start(ctx);
        self.schedule_faces(ctx, 1);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        let _ = self.follower.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        match tag.kind {
            TIMER_EARLY => self.send_face(ctx, true),
            TIMER_LATE => self.send_face(ctx, false),
            _ => {
                if let Some(InstanceEvent::RoundEnded { new_round }) =
                    self.follower.on_timer(ctx, tag)
                {
                    self.schedule_faces(ctx, new_round);
                }
            }
        }
    }
}

/// Sends every pulse at a constant offset from the correct time, trying to
/// drag the cluster's trimmed midpoint.
#[derive(Debug)]
pub struct SkewPuller {
    follower: ClusterFollower,
    offset: f64,
}

impl SkewPuller {
    /// Creates the attacker; negative `offset` pulses early (pulls the
    /// cluster fast), positive pulses late.
    #[must_use]
    pub fn new(cfg: NodeConfig, offset: f64) -> Self {
        SkewPuller {
            follower: ClusterFollower::new(&cfg, true),
            offset,
        }
    }

    fn schedule(&self, ctx: &mut Ctx<'_, Msg>, round: u64) {
        let target = (self.follower.pulse_target(round) + self.offset).max(0.0);
        ctx.set_timer_at(
            self.follower.track(),
            target,
            TimerTag::new(TIMER_EARLY).with_b(round),
        );
    }
}

impl Behavior<Msg> for SkewPuller {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.follower.start(ctx);
        self.schedule(ctx, 1);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        let _ = self.follower.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        if tag.kind == TIMER_EARLY {
            ctx.broadcast(Msg::Pulse);
        } else if let Some(InstanceEvent::RoundEnded { new_round }) =
            self.follower.on_timer(ctx, tag)
        {
            self.schedule(ctx, new_round);
        }
    }
}

/// Free-runs the pulse schedule at an illegally fast rate.
#[derive(Debug)]
pub struct StealthyRusher {
    params: Arc<Params>,
    extra_rate: f64,
    round: u64,
}

impl StealthyRusher {
    /// Creates the attacker with the given extra rate beyond
    /// `(1+ϕ)(1+µ)`.
    #[must_use]
    pub fn new(params: Arc<Params>, extra_rate: f64) -> Self {
        StealthyRusher {
            params,
            extra_rate,
            round: 1,
        }
    }

    fn schedule(&self, ctx: &mut Ctx<'_, Msg>) {
        let target = (self.round - 1) as f64 * self.params.t_round + self.params.tau1;
        ctx.set_timer_at(
            TrackId::MAIN,
            target,
            TimerTag::new(TIMER_PERIODIC).with_b(self.round),
        );
    }
}

impl Behavior<Msg> for StealthyRusher {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let p = &self.params;
        let rate = (1.0 + p.phi) * (1.0 + p.mu) * (1.0 + self.extra_rate);
        ctx.set_multiplier(TrackId::MAIN, rate);
        self.schedule(ctx);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
        ctx.broadcast(Msg::Pulse);
        self.round += 1;
        self.schedule(ctx);
    }
}

/// Broadcasts inflated max-estimator levels every round.
#[derive(Debug)]
pub struct LevelFlooder {
    params: Arc<Params>,
    level_step: u64,
    current: u64,
}

impl LevelFlooder {
    /// Creates the attacker announcing `level_step` extra levels per round.
    #[must_use]
    pub fn new(params: Arc<Params>, level_step: u64) -> Self {
        LevelFlooder {
            params,
            level_step,
            current: 0,
        }
    }
}

impl Behavior<Msg> for LevelFlooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer_at(
            TrackId::MAIN,
            self.params.t_round,
            TimerTag::new(TIMER_PERIODIC),
        );
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
        self.current = self.current.saturating_add(self.level_step);
        ctx.broadcast(Msg::Level {
            level: self.current,
        });
        let next = ctx.track_value(TrackId::MAIN) + self.params.t_round;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_PERIODIC));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> NodeConfig {
        NodeConfig {
            params: Arc::new(Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap()),
            cluster_id: 0,
            members: (0..4).map(NodeId).collect(),
            neighbors: vec![],
            neighbor_offsets: vec![],
            mode_policy: crate::triggers::ModePolicy::CatchUp,
            enable_max_estimator: false,
            initial_offset: 0.0,
        }
    }

    #[test]
    fn all_kinds_construct() {
        let kinds = [
            FaultKind::Silent,
            FaultKind::Crash { at: 1.0 },
            FaultKind::RandomPulser { mean_interval: 0.1 },
            FaultKind::TwoFaced { amplitude: 1e-3 },
            FaultKind::SkewPuller { offset: -1e-3 },
            FaultKind::StealthyRusher { extra_rate: 0.01 },
            FaultKind::LevelFlooder { level_step: 100 },
        ];
        for kind in &kinds {
            let _behavior = make_fault_behavior(kind, config());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn random_pulser_rejects_zero_interval() {
        let _ = RandomPulser::new(0.0);
    }
}
