//! Byzantine fault strategies.
//!
//! The model places no restriction on faulty nodes (paper, Section 2,
//! "Faults"): they need not broadcast, may send at arbitrary times, and may
//! send different messages to different neighbors. True worst-case behavior
//! cannot be enumerated, so this module provides concrete adversaries that
//! attack each defended surface:
//!
//! | strategy | attacks |
//! |---|---|
//! | [`SilentNode`] / crash | liveness of pulse collection (missing entries) |
//! | [`RandomPulser`] | round attribution windows |
//! | [`TwoFacedPulser`] | agreement: different timing per receiver |
//! | [`SkewPuller`] | validity: drag the cluster's midpoint |
//! | [`StealthyRusher`] | rate bounds: plausible-but-too-fast pulses |
//! | [`LevelFlooder`] | the `f+1` confirmation rule of the max estimator |
//!
//! Strategies that need to stay *plausible* (land inside the listening
//! window round after round) track their own cluster with a silent
//! [`ClusterInstance`] — the same estimator machinery correct neighbors
//! use — and then time their lies relative to that estimate.

use std::sync::Arc;

use ftgcs_sim::engine::Ctx;
use ftgcs_sim::node::{Behavior, NodeId, TimerTag, TrackId};

use crate::cluster::{ClusterInstance, InstanceEvent, TIMER_ROUND_END};
use crate::messages::Msg;
use crate::node::{FtGcsNode, NodeConfig};
use crate::params::Params;

/// Timer kind for a Byzantine node's "early face" pulse.
const TIMER_EARLY: u32 = 10;
/// Timer kind for a Byzantine node's "late face" pulse.
const TIMER_LATE: u32 = 11;
/// Timer kind for periodic Byzantine actions.
const TIMER_PERIODIC: u32 = 12;
/// Timer kind for [`LifecycleNode`] phase transitions. Outside every
/// namespace the wrapped behaviors use (cluster timers 1–3, the max
/// estimator's 4, fault timers 10–12), so the wrapper can route by kind
/// alone.
pub const TIMER_LIFECYCLE: u32 = 20;

/// Trace row kind emitted when [`TwoFacedPulser`] skips a degenerate
/// early face: `values = [round, target, amplitude]`.
pub const ROW_FACE_SKIPPED: &str = "face_skipped";

/// A fault strategy, used by the scenario runner to instantiate behaviors.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Never sends anything (fail-silent from the start).
    Silent,
    /// Runs the correct protocol until the given Newtonian time, then goes
    /// silent (a crash; equivalent to deleting its links, cf. §1).
    Crash {
        /// Crash time (Newtonian seconds).
        at: f64,
    },
    /// Sends pulses to all neighbors at random intervals.
    RandomPulser {
        /// Mean interval between pulse volleys (seconds).
        mean_interval: f64,
    },
    /// Sends each round's pulse *early* to half its neighbors and *late*
    /// to the other half, by ±`amplitude` logical seconds around the
    /// correct pulse time.
    TwoFaced {
        /// Timing asymmetry (logical seconds); keep below `ϕ·τ₃` to stay
        /// plausible.
        amplitude: f64,
    },
    /// Sends every pulse `offset` logical seconds away from the correct
    /// time (negative = early, trying to drag the cluster fast).
    SkewPuller {
        /// Constant timing offset (logical seconds).
        offset: f64,
    },
    /// Free-runs the round schedule at a rate beyond the legal bound,
    /// drifting steadily ahead of the cluster.
    StealthyRusher {
        /// Extra rate beyond `(1+ϕ)(1+µ)` (e.g. `0.01` = 1% fast).
        extra_rate: f64,
    },
    /// Broadcasts absurd max-estimator levels to inflate `M_v`.
    LevelFlooder {
        /// Level increment announced per round.
        level_step: u64,
    },
}

/// Builds the behavior implementing `kind` for the node described by
/// `cfg`.
#[must_use]
pub fn make_fault_behavior(kind: &FaultKind, cfg: NodeConfig) -> Box<dyn Behavior<Msg>> {
    make_fault_behavior_at(kind, cfg, 0.0, 1)
}

/// Builds the behavior implementing `kind` for a node that takes up the
/// strategy **mid-run**, at Newtonian time `nominal` during round
/// `round` (per [`rejoin_round`]). `make_fault_behavior` is the boot
/// special case `(nominal, round) = (0.0, 1)`.
///
/// Strategies that follow their own cluster (via a silent tracker
/// instance) open their tracker at value `nominal` in round `round`, so
/// their lies stay plausibly inside the listening windows from the
/// first post-transition round on.
#[must_use]
pub fn make_fault_behavior_at(
    kind: &FaultKind,
    cfg: NodeConfig,
    nominal: f64,
    round: u64,
) -> Box<dyn Behavior<Msg>> {
    match kind {
        FaultKind::Silent => Box::new(SilentNode),
        FaultKind::Crash { at } => Box::new(CrashNode::new_at(cfg, *at, round)),
        FaultKind::RandomPulser { mean_interval } => Box::new(RandomPulser::new(*mean_interval)),
        FaultKind::TwoFaced { amplitude } => {
            Box::new(TwoFacedPulser::new_at(cfg, *amplitude, nominal, round))
        }
        FaultKind::SkewPuller { offset } => {
            Box::new(SkewPuller::new_at(cfg, *offset, nominal, round))
        }
        FaultKind::StealthyRusher { extra_rate } => Box::new(StealthyRusher::new_at(
            Arc::clone(&cfg.params),
            *extra_rate,
            round,
        )),
        FaultKind::LevelFlooder { level_step } => {
            Box::new(LevelFlooder::new(Arc::clone(&cfg.params), *level_step))
        }
    }
}

/// The round a node (re)joining at Newtonian time `nominal` should
/// start in: the smallest round whose pulse time `(r−1)·T + τ₁` lies
/// strictly in the future of `nominal`, so the first thing the rejoined
/// node does is *listen* for a full pulse window rather than resume a
/// round already in flight.
#[must_use]
pub fn rejoin_round(params: &Params, nominal: f64) -> u64 {
    if nominal < params.tau1 {
        return 1;
    }
    let completed = ((nominal - params.tau1) / params.t_round).floor();
    debug_assert!(completed >= 0.0 && completed.is_finite());
    completed as u64 + 2
}

/// A node that never sends anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentNode;

impl Behavior<Msg> for SilentNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Msg>) {}
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {}
}

/// Correct behavior until a crash time, then silence.
#[derive(Debug)]
pub struct CrashNode {
    inner: FtGcsNode,
    crash_at: f64,
    start_round: u64,
    /// Whether the post-crash timer sweep already ran.
    shut_down: bool,
}

impl CrashNode {
    /// Creates a node that runs `FtGcsNode` semantics until `crash_at`
    /// (Newtonian seconds).
    #[must_use]
    pub fn new(cfg: NodeConfig, crash_at: f64) -> Self {
        CrashNode::new_at(cfg, crash_at, 1)
    }

    /// Mid-run variant: the correct phase starts in round `start_round`
    /// (see [`rejoin_round`]) instead of round 1.
    #[must_use]
    pub fn new_at(cfg: NodeConfig, crash_at: f64, start_round: u64) -> Self {
        CrashNode {
            inner: FtGcsNode::new(cfg),
            crash_at,
            start_round,
            shut_down: false,
        }
    }

    fn alive(&self, ctx: &Ctx<'_, Msg>) -> bool {
        ctx.newtonian_now().as_secs() < self.crash_at
    }

    /// On the first post-crash event, cancels every outstanding timer so
    /// a long-horizon run does not drag the dead node's round schedule
    /// through the event queue forever (a crash deletes the node, cf.
    /// §1 — including its pending work).
    fn shutdown_once(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.shut_down {
            self.shut_down = true;
            ctx.cancel_all_timers();
        }
    }
}

impl Behavior<Msg> for CrashNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.alive(ctx) {
            self.inner.start_at_round(ctx, self.start_round);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        if self.alive(ctx) {
            self.inner.on_message(ctx, from, msg);
        } else {
            self.shutdown_once(ctx);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        if self.alive(ctx) {
            self.inner.on_timer(ctx, tag);
        } else {
            self.shutdown_once(ctx);
        }
    }
}

/// Pulses at random times, ignoring the protocol entirely.
#[derive(Debug)]
pub struct RandomPulser {
    mean_interval: f64,
}

impl RandomPulser {
    /// Creates a pulser with the given mean volley interval (seconds).
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    #[must_use]
    pub fn new(mean_interval: f64) -> Self {
        assert!(mean_interval > 0.0, "interval must be positive");
        RandomPulser { mean_interval }
    }

    fn arm(&self, ctx: &mut Ctx<'_, Msg>) {
        let next =
            ctx.track_value(TrackId::MAIN) + ctx.rng().uniform(0.1, 1.9) * self.mean_interval;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_PERIODIC));
    }
}

impl Behavior<Msg> for RandomPulser {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.arm(ctx);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
        // Send to a random subset of neighbors, one by one (Byzantine
        // nodes are not bound to broadcast).
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        for to in neighbors {
            if ctx.rng().chance(0.7) {
                ctx.send(to, Msg::Pulse);
            }
        }
        self.arm(ctx);
    }
}

/// Shared machinery for Byzantine strategies that stay synchronized to
/// their own cluster via a silent tracker instance.
#[derive(Debug)]
struct ClusterFollower {
    tracker: Option<ClusterInstance>,
    params: Arc<Params>,
    cluster_id: usize,
    /// Own-cluster members excluding this node.
    peers: Vec<NodeId>,
    /// Tracker clock value at start (0 at boot; ≈ the cluster's logical
    /// clock for strategies adopted mid-run).
    nominal: f64,
    /// Round the tracker opens in (1 at boot; see [`rejoin_round`]).
    start_round: u64,
}

impl ClusterFollower {
    fn new_at(cfg: &NodeConfig, me_excluded_later: bool, nominal: f64, start_round: u64) -> Self {
        debug_assert!(me_excluded_later);
        ClusterFollower {
            tracker: None,
            params: Arc::clone(&cfg.params),
            cluster_id: cfg.cluster_id,
            peers: cfg.members.clone(),
            nominal,
            start_round,
        }
    }

    fn start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let me = ctx.my_id();
        self.peers.retain(|&m| m != me);
        let track = ctx.new_track(self.nominal, 1.0);
        let mut tracker = ClusterInstance::new(
            1,
            track,
            self.cluster_id,
            self.peers.clone(),
            true,
            Arc::clone(&self.params),
        );
        tracker.start_at(ctx, self.start_round);
        self.tracker = Some(tracker);
    }

    /// Routes messages into the tracker; returns `true` if consumed.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) -> bool {
        let Some(tracker) = &mut self.tracker else {
            return false;
        };
        match *msg {
            Msg::Pulse if tracker.observes(from) => {
                tracker.on_pulse(ctx, from);
                true
            }
            Msg::VirtualPulse { instance: 1 } if from == ctx.my_id() => {
                tracker.on_virtual_pulse(ctx);
                true
            }
            _ => false,
        }
    }

    /// Routes tracker timers; returns the instance event if it was a
    /// tracker timer (tag.a == 1).
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) -> Option<InstanceEvent> {
        if tag.a == 1 && tag.kind <= TIMER_ROUND_END {
            let tracker = self.tracker.as_mut().expect("started");
            Some(tracker.on_timer(ctx, tag))
        } else {
            None
        }
    }

    fn track(&self) -> TrackId {
        self.tracker.as_ref().expect("started").track()
    }

    /// Logical time of the next round-`r` pulse on the tracker clock.
    fn pulse_target(&self, round: u64) -> f64 {
        (round - 1) as f64 * self.params.t_round + self.params.tau1
    }
}

/// Sends pulses early to even-indexed neighbors and late to odd-indexed
/// ones — the classic equivocation attack on agreement-based sync.
#[derive(Debug)]
pub struct TwoFacedPulser {
    follower: ClusterFollower,
    amplitude: f64,
}

impl TwoFacedPulser {
    /// Creates the attacker; `amplitude` is the ± timing lie in logical
    /// seconds.
    #[must_use]
    pub fn new(cfg: NodeConfig, amplitude: f64) -> Self {
        TwoFacedPulser::new_at(cfg, amplitude, 0.0, 1)
    }

    /// Mid-run variant: the tracker opens at clock value `nominal` in
    /// round `round` (see [`rejoin_round`]).
    #[must_use]
    pub fn new_at(cfg: NodeConfig, amplitude: f64, nominal: f64, round: u64) -> Self {
        TwoFacedPulser {
            follower: ClusterFollower::new_at(&cfg, true, nominal, round),
            amplitude: amplitude.abs(),
        }
    }

    fn schedule_faces(&self, ctx: &mut Ctx<'_, Msg>, round: u64) {
        let target = self.follower.pulse_target(round);
        let track = self.follower.track();
        let tag = |kind: u32| TimerTag::new(kind).with_b(round);
        let early = target - self.amplitude;
        if early > 0.0 {
            ctx.set_timer_at(track, early, tag(TIMER_EARLY));
        } else {
            // `amplitude ≥ target` (possible in round 1 when the lie
            // exceeds τ₁): clamping onto t = 0 would make the "early"
            // face indistinguishable from start-of-round noise, so the
            // degenerate face is skipped and logged instead.
            ctx.emit(ROW_FACE_SKIPPED, vec![round as f64, target, self.amplitude]);
        }
        ctx.set_timer_at(track, target + self.amplitude, tag(TIMER_LATE));
    }

    fn send_face(&self, ctx: &mut Ctx<'_, Msg>, early: bool) {
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        for (i, to) in neighbors.into_iter().enumerate() {
            if (i % 2 == 0) == early {
                ctx.send(to, Msg::Pulse);
            }
        }
    }
}

impl Behavior<Msg> for TwoFacedPulser {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.follower.start(ctx);
        self.schedule_faces(ctx, self.follower.start_round);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        let _ = self.follower.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        match tag.kind {
            TIMER_EARLY => self.send_face(ctx, true),
            TIMER_LATE => self.send_face(ctx, false),
            _ => {
                if let Some(InstanceEvent::RoundEnded { new_round }) =
                    self.follower.on_timer(ctx, tag)
                {
                    self.schedule_faces(ctx, new_round);
                }
            }
        }
    }
}

/// Sends every pulse at a constant offset from the correct time, trying to
/// drag the cluster's trimmed midpoint.
#[derive(Debug)]
pub struct SkewPuller {
    follower: ClusterFollower,
    offset: f64,
}

impl SkewPuller {
    /// Creates the attacker; negative `offset` pulses early (pulls the
    /// cluster fast), positive pulses late.
    #[must_use]
    pub fn new(cfg: NodeConfig, offset: f64) -> Self {
        SkewPuller::new_at(cfg, offset, 0.0, 1)
    }

    /// Mid-run variant: the tracker opens at clock value `nominal` in
    /// round `round` (see [`rejoin_round`]).
    #[must_use]
    pub fn new_at(cfg: NodeConfig, offset: f64, nominal: f64, round: u64) -> Self {
        SkewPuller {
            follower: ClusterFollower::new_at(&cfg, true, nominal, round),
            offset,
        }
    }

    fn schedule(&self, ctx: &mut Ctx<'_, Msg>, round: u64) {
        let target = (self.follower.pulse_target(round) + self.offset).max(0.0);
        ctx.set_timer_at(
            self.follower.track(),
            target,
            TimerTag::new(TIMER_EARLY).with_b(round),
        );
    }
}

impl Behavior<Msg> for SkewPuller {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.follower.start(ctx);
        self.schedule(ctx, self.follower.start_round);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        let _ = self.follower.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        if tag.kind == TIMER_EARLY {
            ctx.broadcast(Msg::Pulse);
        } else if let Some(InstanceEvent::RoundEnded { new_round }) =
            self.follower.on_timer(ctx, tag)
        {
            self.schedule(ctx, new_round);
        }
    }
}

/// Free-runs the pulse schedule at an illegally fast rate.
#[derive(Debug)]
pub struct StealthyRusher {
    params: Arc<Params>,
    extra_rate: f64,
    round: u64,
}

impl StealthyRusher {
    /// Creates the attacker with the given extra rate beyond
    /// `(1+ϕ)(1+µ)`.
    #[must_use]
    pub fn new(params: Arc<Params>, extra_rate: f64) -> Self {
        StealthyRusher::new_at(params, extra_rate, 1)
    }

    /// Mid-run variant: the rushed round schedule resumes from
    /// `start_round` (see [`rejoin_round`]) instead of round 1.
    #[must_use]
    pub fn new_at(params: Arc<Params>, extra_rate: f64, start_round: u64) -> Self {
        StealthyRusher {
            params,
            extra_rate,
            round: start_round,
        }
    }

    fn schedule(&self, ctx: &mut Ctx<'_, Msg>) {
        let target = (self.round - 1) as f64 * self.params.t_round + self.params.tau1;
        ctx.set_timer_at(
            TrackId::MAIN,
            target,
            TimerTag::new(TIMER_PERIODIC).with_b(self.round),
        );
    }
}

impl Behavior<Msg> for StealthyRusher {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let p = &self.params;
        let rate = (1.0 + p.phi) * (1.0 + p.mu) * (1.0 + self.extra_rate);
        ctx.set_multiplier(TrackId::MAIN, rate);
        self.schedule(ctx);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
        ctx.broadcast(Msg::Pulse);
        self.round += 1;
        self.schedule(ctx);
    }
}

/// Broadcasts inflated max-estimator levels every round.
#[derive(Debug)]
pub struct LevelFlooder {
    params: Arc<Params>,
    level_step: u64,
    current: u64,
}

impl LevelFlooder {
    /// Creates the attacker announcing `level_step` extra levels per round.
    #[must_use]
    pub fn new(params: Arc<Params>, level_step: u64) -> Self {
        LevelFlooder {
            params,
            level_step,
            current: 0,
        }
    }
}

impl Behavior<Msg> for LevelFlooder {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Relative to the current clock value (0 at boot) so a mid-run
        // adoption floods one round later, not instantly.
        let next = ctx.track_value(TrackId::MAIN) + self.params.t_round;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_PERIODIC));
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: TimerTag) {
        self.current = self.current.saturating_add(self.level_step);
        ctx.broadcast(Msg::Level {
            level: self.current,
        });
        let next = ctx.track_value(TrackId::MAIN) + self.params.t_round;
        ctx.set_timer_at(TrackId::MAIN, next, TimerTag::new(TIMER_PERIODIC));
    }
}

/// One phase of a node's fault lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecyclePhase {
    /// The node runs the correct FTGCS protocol.
    Correct,
    /// The node runs the given fault strategy.
    Faulty(FaultKind),
}

/// A node whose behavior changes at scheduled Newtonian times:
/// `Correct → Faulty(kind) → Correct → …` — the engine-side half of the
/// fault lifecycle layer (time-windowed faults, crash–recover churn,
/// mobile Byzantine adversaries).
///
/// Transitions are ordinary timer events: each is armed with
/// [`Ctx::set_timer_at_newtonian`] and dispatched under the standard
/// `(time, source, counter)` key, so lifecycle runs stay byte-identical
/// across the Serial, Sharded, and Parallel schedulers.
///
/// At a transition the wrapper cancels every pending timer, drops all
/// extra clock tracks, and boots a fresh inner behavior. **Recovery** is
/// the interesting direction: the rejoining node does *not* resume
/// stale round state. It re-initializes its [`ClusterInstance`]s at
/// [`rejoin_round`] with its clocks jumped to the current Newtonian
/// time, then re-integrates through the same machinery every node uses
/// each round — trimmed-midpoint corrections over the pulse window for
/// cluster agreement, and the max estimator's `f+1` level confirmations
/// for the global clock. In-flight messages sent to the node's previous
/// incarnation (at most one delay bound `d` worth) are absorbed by that
/// machinery as ordinary Byzantine noise; with the node counted against
/// the cluster's `f`-budget for its faulty window, they are within the
/// adversary the algorithm already tolerates.
pub struct LifecycleNode {
    cfg: NodeConfig,
    /// `(time, phase)` transitions, strictly increasing in time.
    schedule: Vec<(f64, LifecyclePhase)>,
    /// Index of the next transition to arm/apply.
    next: usize,
    inner: Box<dyn Behavior<Msg>>,
}

impl std::fmt::Debug for LifecycleNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LifecycleNode(next={}/{})",
            self.next,
            self.schedule.len()
        )
    }
}

impl LifecycleNode {
    /// Creates a node that boots correct and then applies `schedule` in
    /// order. Transition times are Newtonian seconds.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty, starts at a negative time, or is
    /// not strictly increasing.
    #[must_use]
    pub fn new(cfg: NodeConfig, schedule: Vec<(f64, LifecyclePhase)>) -> Self {
        assert!(!schedule.is_empty(), "empty lifecycle schedule");
        assert!(
            schedule[0].0 >= 0.0 && schedule.windows(2).all(|w| w[0].0 < w[1].0),
            "lifecycle schedule must be strictly increasing"
        );
        let inner = Box::new(FtGcsNode::new(cfg.clone()));
        LifecycleNode {
            cfg,
            schedule,
            next: 0,
            inner,
        }
    }

    /// Arms a Newtonian timer for the next transition, if any. Exactly
    /// one lifecycle timer is pending at any moment, so the transition
    /// handler's blanket `cancel_all_timers` never kills a live one.
    fn arm_next(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some(&(at, _)) = self.schedule.get(self.next) {
            ctx.set_timer_at_newtonian(at, TimerTag::new(TIMER_LIFECYCLE).with_b(self.next as u64));
        }
    }

    /// Applies the transition `self.next`: tears down the current
    /// incarnation (timers, extra tracks) and boots the next one at the
    /// current instant.
    fn transition(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let phase = self.schedule[self.next].1.clone();
        self.next += 1;
        ctx.cancel_all_timers();
        ctx.reset_tracks();
        let nominal = ctx.newtonian_now().as_secs();
        let round = rejoin_round(&self.cfg.params, nominal);
        self.inner = match phase {
            LifecyclePhase::Correct => {
                // Rejoin with clocks at nominal time: close enough for
                // the pulse window (proper initialization within E), and
                // the first correction re-synchronizes exactly.
                let mut cfg = self.cfg.clone();
                cfg.initial_offset = nominal;
                cfg.neighbor_offsets = vec![nominal; cfg.neighbors.len()];
                let mut node = FtGcsNode::new(cfg);
                node.start_at_round(ctx, round);
                Box::new(node)
            }
            LifecyclePhase::Faulty(kind) => {
                let mut behavior = make_fault_behavior_at(&kind, self.cfg.clone(), nominal, round);
                behavior.on_start(ctx);
                behavior
            }
        };
        self.arm_next(ctx);
    }
}

impl Behavior<Msg> for LifecycleNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.inner.on_start(ctx);
        self.arm_next(ctx);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        self.inner.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: TimerTag) {
        if tag.kind == TIMER_LIFECYCLE {
            self.transition(ctx);
        } else {
            self.inner.on_timer(ctx, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> NodeConfig {
        NodeConfig {
            params: Arc::new(Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap()),
            cluster_id: 0,
            members: (0..4).map(NodeId).collect(),
            neighbors: vec![],
            neighbor_offsets: vec![],
            mode_policy: crate::triggers::ModePolicy::CatchUp,
            enable_max_estimator: false,
            initial_offset: 0.0,
        }
    }

    #[test]
    fn all_kinds_construct() {
        let kinds = [
            FaultKind::Silent,
            FaultKind::Crash { at: 1.0 },
            FaultKind::RandomPulser { mean_interval: 0.1 },
            FaultKind::TwoFaced { amplitude: 1e-3 },
            FaultKind::SkewPuller { offset: -1e-3 },
            FaultKind::StealthyRusher { extra_rate: 0.01 },
            FaultKind::LevelFlooder { level_step: 100 },
        ];
        for kind in &kinds {
            let _behavior = make_fault_behavior(kind, config());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn random_pulser_rejects_zero_interval() {
        let _ = RandomPulser::new(0.0);
    }
}
