//! Wire messages of the FTGCS protocol.
//!
//! Correct nodes exchange only *pulses* — content-less beats whose
//! information is their timing (paper, Section 2) — plus the level pulses
//! of the global-skew estimator (Appendix C.2). The only payload is the
//! level counter, which merely compresses "one pulse per level" into a
//! single message, and the instance routing tag on [`Msg::VirtualPulse`],
//! which never leaves its sender (self-loopback only).

/// A protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// A cluster-synchronization pulse. Content-less: receivers attribute
    /// it by sender identity and arrival time.
    Pulse,
    /// A self-loopback pulse of a *silent* estimator instance: node `v`
    /// simulating cluster `B`'s ClusterSync sends this to itself in place
    /// of broadcasting. Correct nodes ignore `VirtualPulse` from anyone
    /// but themselves, so the routing tag is trustworthy.
    VirtualPulse {
        /// Index of the estimator instance on the sending node.
        instance: u32,
    },
    /// A max-estimator level pulse: "my estimate `M_v` has crossed level
    /// `level`" (Lemma C.2). Equivalent to `level` content-less pulses;
    /// receivers keep the per-sender maximum.
    Level {
        /// The crossed level (multiples of the configured level unit).
        level: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_small_and_copyable() {
        // Pulses must stay cheap: they are broadcast every round.
        assert!(std::mem::size_of::<Msg>() <= 16);
        let m = Msg::Level { level: 7 };
        let n = m;
        assert_eq!(m, n);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Msg::Pulse), "Pulse");
        assert!(format!("{:?}", Msg::VirtualPulse { instance: 2 }).contains('2'));
    }
}
