//! Declarative, serializable experiment descriptions.
//!
//! A [`ScenarioSpec`] is a plain-old-data description of everything a
//! [`Scenario`](crate::runner::Scenario) needs: the topology generator,
//! cluster size and fault budget, the environment `(ρ, d, U)`, fault
//! placements, initial offsets, scheduler and worker count, seeds, and
//! run duration. Specs serialize to a **hand-rolled, dependency-free
//! text format** (this workspace builds offline — no serde): one
//! `key value…` pair per line, `#` comments, round-trip stable
//! (`parse(print(s)) == s`, pinned by the proptest suite in
//! `tests/spec_roundtrip.rs`).
//!
//! Spec files are the unit of experiment exchange: the `xp` driver in
//! `ftgcs-bench` executes the files checked in under `experiments/`,
//! and every legacy figure/table binary is a thin wrapper around one of
//! them.
//!
//! # Format
//!
//! ```text
//! # F3-style scenario: 9-cluster line under a fast/slow split.
//! name        demo
//! topology    line 9
//! f           1
//! cluster_size 4
//! env         1e-4 1e-3 1e-4       # rho  d  U
//! seed        7
//! duration    30 rounds            # or plain seconds: `duration 2.5`
//! delay       uniform
//! rate_model  random_walk 1 0.5
//! sample_interval half_round
//! mode_policy catch_up
//! max_estimator on
//! scheduler   parallel 4
//! fault       5 silent             # explicit placement, repeatable
//! fault_per_cluster 1 two_faced 0.001
//! cluster_offset 3 0.002
//! ```
//!
//! # Examples
//!
//! ```
//! use ftgcs::spec::{ScenarioSpec, TopologySpec};
//! use ftgcs::runner::Scenario;
//!
//! let spec = ScenarioSpec::new("demo", TopologySpec::Line(2), 1);
//! let text = spec.print();
//! let reparsed = ScenarioSpec::parse(&text).unwrap();
//! assert_eq!(spec, reparsed);
//!
//! let scenario = Scenario::from_spec(&spec).unwrap();
//! assert_eq!(scenario.cluster_graph().cluster_count(), 2);
//! assert_eq!(scenario.to_spec().unwrap(), spec);
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use ftgcs_sim::clock::RateModel;
use ftgcs_sim::network::DelayDistribution;
use ftgcs_topology::{generators, Graph};

use crate::faults::FaultKind;
use crate::params::Params;
use crate::triggers::ModePolicy;

/// A parse or conversion failure, with the 1-based source line where it
/// occurred (`0` when the error is not tied to a line, e.g. a
/// [`Scenario::to_spec`](crate::runner::Scenario::to_spec) failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number, or 0 for non-textual errors.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl SpecError {
    pub(crate) fn at(line: usize, msg: impl Into<String>) -> Self {
        SpecError {
            line,
            msg: msg.into(),
        }
    }

    pub(crate) fn new(msg: impl Into<String>) -> Self {
        SpecError::at(0, msg)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "spec line {}: {}", self.line, self.msg)
        } else {
            write!(f, "spec: {}", self.msg)
        }
    }
}

impl Error for SpecError {}

/// Which base-graph generator a scenario uses, with its arguments.
///
/// Covers the deterministic generators of [`ftgcs_topology::generators`]
/// (the random Erdős–Rényi generator is excluded: a spec must describe
/// its topology reproducibly by structure, not by a sampling process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// `line n`: a path of `n` clusters.
    Line(usize),
    /// `ring n`: a cycle of `n` clusters.
    Ring(usize),
    /// `star n`: one hub plus `n − 1` leaves.
    Star(usize),
    /// `complete n`: a clique of `n` clusters.
    Complete(usize),
    /// `grid r c`: an `r × c` mesh.
    Grid(usize, usize),
    /// `torus r c`: an `r × c` mesh with wraparound.
    Torus(usize, usize),
    /// `hypercube d`: the `d`-dimensional hypercube.
    Hypercube(u32),
    /// `tree a d`: a balanced tree of arity `a` and depth `d`.
    Tree(usize, usize),
}

impl TopologySpec {
    /// Instantiates the base graph.
    #[must_use]
    pub fn build(&self) -> Graph {
        match *self {
            TopologySpec::Line(n) => generators::line(n),
            TopologySpec::Ring(n) => generators::ring(n),
            TopologySpec::Star(n) => generators::star(n),
            TopologySpec::Complete(n) => generators::complete(n),
            TopologySpec::Grid(r, c) => generators::grid(r, c),
            TopologySpec::Torus(r, c) => generators::torus(r, c),
            TopologySpec::Hypercube(d) => generators::hypercube(d),
            TopologySpec::Tree(a, d) => generators::balanced_tree(a, d),
        }
    }

    fn print(&self) -> String {
        match *self {
            TopologySpec::Line(n) => format!("line {n}"),
            TopologySpec::Ring(n) => format!("ring {n}"),
            TopologySpec::Star(n) => format!("star {n}"),
            TopologySpec::Complete(n) => format!("complete {n}"),
            TopologySpec::Grid(r, c) => format!("grid {r} {c}"),
            TopologySpec::Torus(r, c) => format!("torus {r} {c}"),
            TopologySpec::Hypercube(d) => format!("hypercube {d}"),
            TopologySpec::Tree(a, d) => format!("tree {a} {d}"),
        }
    }

    fn parse(args: &[&str], line: usize) -> Result<Self, SpecError> {
        let kind = *args
            .first()
            .ok_or_else(|| SpecError::at(line, "topology needs a generator name"))?;
        let want = |n: usize| -> Result<(), SpecError> {
            if args.len() == n + 1 {
                Ok(())
            } else {
                Err(SpecError::at(
                    line,
                    format!("topology {kind} takes {n} argument(s)"),
                ))
            }
        };
        let num = |i: usize| parse_num::<usize>(args[i], line);
        Ok(match kind {
            "line" => {
                want(1)?;
                TopologySpec::Line(num(1)?)
            }
            "ring" => {
                want(1)?;
                TopologySpec::Ring(num(1)?)
            }
            "star" => {
                want(1)?;
                TopologySpec::Star(num(1)?)
            }
            "complete" => {
                want(1)?;
                TopologySpec::Complete(num(1)?)
            }
            "grid" => {
                want(2)?;
                TopologySpec::Grid(num(1)?, num(2)?)
            }
            "torus" => {
                want(2)?;
                TopologySpec::Torus(num(1)?, num(2)?)
            }
            "hypercube" => {
                want(1)?;
                TopologySpec::Hypercube(parse_num::<u32>(args[1], line)?)
            }
            "tree" => {
                want(2)?;
                TopologySpec::Tree(num(1)?, num(2)?)
            }
            other => {
                return Err(SpecError::at(line, format!("unknown topology {other:?}")));
            }
        })
    }
}

/// How long to run, either in absolute simulated seconds or in units of
/// the derived round length `T` (which depends on the environment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationSpec {
    /// `duration x`: `x` simulated seconds.
    Secs(f64),
    /// `duration x rounds`: `x · T` simulated seconds.
    Rounds(f64),
}

impl DurationSpec {
    /// The concrete horizon in simulated seconds under `params`.
    #[must_use]
    pub fn resolve(&self, params: &Params) -> f64 {
        match *self {
            DurationSpec::Secs(s) => s,
            DurationSpec::Rounds(r) => r * params.t_round,
        }
    }
}

/// The clock-sampling cadence of a spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleSpec {
    /// `half_round`: the scenario default, one sample every `T/2`.
    HalfRound,
    /// `none`: sampling disabled.
    Off,
    /// An explicit interval in simulated seconds.
    Secs(f64),
}

/// The event scheduler of a spec. Partitions are always per-cluster
/// (the only seam the model guarantees a `d − U` floor across), so the
/// spec never carries an explicit node → shard map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// One global heap (the default).
    Global,
    /// Per-cluster shards, single-threaded.
    ShardedByCluster,
    /// Per-cluster shards on a worker pool; `0` workers means auto.
    Parallel(usize),
}

/// A complete, declarative description of one experiment scenario.
///
/// All fields are public plain data; [`ScenarioSpec::parse`] and
/// [`ScenarioSpec::print`] are exact inverses on canonical specs, and
/// [`Scenario::from_spec`](crate::runner::Scenario::from_spec) /
/// [`Scenario::to_spec`](crate::runner::Scenario::to_spec) convert to
/// and from the runnable builder.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Experiment name (one word; names the output files).
    pub name: String,
    /// Base-graph generator.
    pub topology: TopologySpec,
    /// Cluster size `k ≥ 3f + 1`.
    pub cluster_size: usize,
    /// Fault budget per cluster.
    pub f: usize,
    /// Hardware drift bound ρ.
    pub rho: f64,
    /// Maximum message delay `d` (seconds).
    pub d: f64,
    /// Delay uncertainty `U` (seconds).
    pub u: f64,
    /// Master seed.
    pub seed: u64,
    /// Run horizon.
    pub duration: DurationSpec,
    /// Message-delay distribution within `[d−U, d]`.
    pub delay: DelayDistribution,
    /// Default hardware clock rate model.
    pub rate_model: RateModel,
    /// Clock-sampling cadence.
    pub sample_interval: SampleSpec,
    /// Mode policy when neither trigger fires.
    pub mode_policy: ModePolicy,
    /// Whether the global-max estimator runs.
    pub max_estimator: bool,
    /// Uniform initial logical-clock spread in `[0, x]`.
    pub offset_spread: f64,
    /// Linear inter-cluster offset ramp step (`0` = none).
    pub offset_ramp: f64,
    /// Explicit per-cluster initial offsets.
    pub cluster_offsets: Vec<(usize, f64)>,
    /// Explicit fault placements `(physical node, strategy)`.
    pub faults: Vec<(usize, FaultKind)>,
    /// Time-windowed faults `(node, strategy, from, to)`: the node is
    /// correct, runs `strategy` over `[from, to)` Newtonian seconds,
    /// then recovers and re-integrates (`fault <node> <kind> from <t>
    /// to <t>`).
    pub fault_windows: Vec<(usize, FaultKind, f64, f64)>,
    /// Churn sugar `(count, kind, period, downtime)`: `count` nodes
    /// placed round-robin over the clusters each cycle through
    /// `downtime` seconds of `kind` every `period` seconds, with their
    /// downtime starts staggered across the period (`churn <count>
    /// <kind> period <t> downtime <t>`).
    pub churn: Vec<(usize, FaultKind, f64, f64)>,
    /// Mobile-adversary sugar `(count, kind, hop)`: `count` adversaries
    /// each migrate to a new host node every `hop` seconds on a
    /// deterministic seed-derived itinerary that never exceeds `f`
    /// simultaneous faults per cluster (`mobile <count> <kind> hop
    /// <t>`).
    pub mobile: Vec<(usize, FaultKind, f64)>,
    /// Sugar: the first `count` slots of *every* cluster get `kind`.
    pub faults_per_cluster: Vec<(usize, FaultKind)>,
    /// Sugar: `count` random members of each cluster get `kind`,
    /// selected by `seed`.
    pub random_faults: Vec<(usize, u64, FaultKind)>,
    /// Per-node hardware rate-model overrides.
    pub rate_overrides: Vec<(usize, RateModel)>,
    /// Event scheduler.
    pub scheduler: SchedulerSpec,
}

impl ScenarioSpec {
    /// A spec with the workspace-default environment (`ρ = 1e-4`,
    /// `d = 1 ms`, `U = 0.1 ms`), benign defaults, `k = 3f + 1`, and a
    /// 20-round horizon.
    #[must_use]
    pub fn new(name: &str, topology: TopologySpec, f: usize) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            topology,
            cluster_size: 3 * f + 1,
            f,
            rho: 1e-4,
            d: 1e-3,
            u: 1e-4,
            seed: 0,
            duration: DurationSpec::Rounds(20.0),
            delay: DelayDistribution::Uniform,
            rate_model: RateModel::default(),
            sample_interval: SampleSpec::HalfRound,
            mode_policy: ModePolicy::default(),
            max_estimator: true,
            offset_spread: 0.0,
            offset_ramp: 0.0,
            cluster_offsets: Vec::new(),
            faults: Vec::new(),
            fault_windows: Vec::new(),
            churn: Vec::new(),
            mobile: Vec::new(),
            faults_per_cluster: Vec::new(),
            random_faults: Vec::new(),
            rate_overrides: Vec::new(),
            scheduler: SchedulerSpec::Global,
        }
    }

    /// Derives the parameter set implied by the spec's environment and
    /// cluster shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the environment is infeasible.
    pub fn params(&self) -> Result<Params, SpecError> {
        Params::builder(self.rho, self.d, self.u, self.f)
            .cluster_size(self.cluster_size)
            .build()
            .map_err(|e| SpecError::new(format!("infeasible parameters: {e}")))
    }

    /// Serializes the spec to its canonical text form.
    ///
    /// The printer is the exact inverse of [`ScenarioSpec::parse`]:
    /// `parse(print(s)) == s` for every spec whose `name` is a single
    /// `#`-free word — the only names `parse` itself can produce and
    /// the only ones [`Scenario::from_spec`] accepts (a multi-word or
    /// `#`-containing name set directly on the public field would not
    /// survive the line-oriented format).
    ///
    /// [`Scenario::from_spec`]: crate::runner::Scenario::from_spec
    #[must_use]
    pub fn print(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "name {}", self.name);
        let _ = writeln!(w, "topology {}", self.topology.print());
        let _ = writeln!(w, "cluster_size {}", self.cluster_size);
        let _ = writeln!(w, "f {}", self.f);
        let _ = writeln!(w, "env {} {} {}", self.rho, self.d, self.u);
        let _ = writeln!(w, "seed {}", self.seed);
        match self.duration {
            DurationSpec::Secs(s) => {
                let _ = writeln!(w, "duration {s}");
            }
            DurationSpec::Rounds(r) => {
                let _ = writeln!(w, "duration {r} rounds");
            }
        }
        let _ = writeln!(w, "delay {}", print_delay(&self.delay));
        let _ = writeln!(w, "rate_model {}", print_rate_model(&self.rate_model));
        match self.sample_interval {
            SampleSpec::HalfRound => {
                let _ = writeln!(w, "sample_interval half_round");
            }
            SampleSpec::Off => {
                let _ = writeln!(w, "sample_interval none");
            }
            SampleSpec::Secs(s) => {
                let _ = writeln!(w, "sample_interval {s}");
            }
        }
        let _ = writeln!(w, "mode_policy {}", print_mode_policy(self.mode_policy));
        let _ = writeln!(
            w,
            "max_estimator {}",
            if self.max_estimator { "on" } else { "off" }
        );
        let _ = writeln!(w, "offset_spread {}", self.offset_spread);
        let _ = writeln!(w, "offset_ramp {}", self.offset_ramp);
        for &(c, off) in &self.cluster_offsets {
            let _ = writeln!(w, "cluster_offset {c} {off}");
        }
        for (node, kind) in &self.faults {
            let _ = writeln!(w, "fault {node} {}", print_fault(kind));
        }
        for (node, kind, from, to) in &self.fault_windows {
            let _ = writeln!(w, "fault {node} {} from {from} to {to}", print_fault(kind));
        }
        for (count, kind) in &self.faults_per_cluster {
            let _ = writeln!(w, "fault_per_cluster {count} {}", print_fault(kind));
        }
        for (count, seed, kind) in &self.random_faults {
            let _ = writeln!(w, "random_faults {count} {seed} {}", print_fault(kind));
        }
        for (count, kind, period, downtime) in &self.churn {
            let _ = writeln!(
                w,
                "churn {count} {} period {period} downtime {downtime}",
                print_fault(kind)
            );
        }
        for (count, kind, hop) in &self.mobile {
            let _ = writeln!(w, "mobile {count} {} hop {hop}", print_fault(kind));
        }
        for (node, model) in &self.rate_overrides {
            let _ = writeln!(w, "rate_override {node} {}", print_rate_model(model));
        }
        match self.scheduler {
            SchedulerSpec::Global => {
                let _ = writeln!(w, "scheduler global");
            }
            SchedulerSpec::ShardedByCluster => {
                let _ = writeln!(w, "scheduler sharded");
            }
            SchedulerSpec::Parallel(workers) => {
                let _ = writeln!(w, "scheduler parallel {workers}");
            }
        }
        out
    }

    /// Parses the text form.
    ///
    /// Unknown keys are errors (a typo must not silently change an
    /// experiment); `#` starts a comment; blank lines are ignored;
    /// `name` and `topology` are required, everything else defaults as
    /// in [`ScenarioSpec::new`].
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut name: Option<String> = None;
        let mut topology: Option<TopologySpec> = None;
        let mut cluster_size: Option<usize> = None;
        let mut spec = ScenarioSpec::new("", TopologySpec::Line(1), 0);
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let (key, args) = (tokens[0], &tokens[1..]);
            let one = |what: &str| -> Result<&str, SpecError> {
                if args.len() == 1 {
                    Ok(args[0])
                } else {
                    Err(SpecError::at(lineno, format!("{key} takes one {what}")))
                }
            };
            match key {
                "name" => name = Some(one("word")?.to_string()),
                "topology" => topology = Some(TopologySpec::parse(args, lineno)?),
                "cluster_size" => cluster_size = Some(parse_num(one("integer")?, lineno)?),
                "f" => spec.f = parse_num(one("integer")?, lineno)?,
                "env" => {
                    if args.len() != 3 {
                        return Err(SpecError::at(lineno, "env takes three values: rho d U"));
                    }
                    spec.rho = parse_num(args[0], lineno)?;
                    spec.d = parse_num(args[1], lineno)?;
                    spec.u = parse_num(args[2], lineno)?;
                }
                "seed" => spec.seed = parse_num(one("integer")?, lineno)?,
                "duration" => {
                    spec.duration = match args {
                        [secs] => DurationSpec::Secs(parse_num(secs, lineno)?),
                        [rounds, "rounds"] => DurationSpec::Rounds(parse_num(rounds, lineno)?),
                        _ => {
                            return Err(SpecError::at(
                                lineno,
                                "duration takes `<secs>` or `<n> rounds`",
                            ));
                        }
                    };
                    let raw = match spec.duration {
                        DurationSpec::Secs(x) | DurationSpec::Rounds(x) => x,
                    };
                    if !raw.is_finite() || raw < 0.0 {
                        return Err(SpecError::at(
                            lineno,
                            "duration must be finite and non-negative",
                        ));
                    }
                }
                "delay" => spec.delay = parse_delay(one("distribution")?, lineno)?,
                "rate_model" => spec.rate_model = parse_rate_model(args, lineno)?,
                "sample_interval" => {
                    spec.sample_interval = match one("value")? {
                        "half_round" => SampleSpec::HalfRound,
                        "none" => SampleSpec::Off,
                        secs => {
                            let secs: f64 = parse_num(secs, lineno)?;
                            // A zero interval would re-arm the sample
                            // event at the same instant forever and
                            // livelock the engine.
                            if !secs.is_finite() || secs <= 0.0 {
                                return Err(SpecError::at(
                                    lineno,
                                    "sample_interval must be positive and finite (or `none`)",
                                ));
                            }
                            SampleSpec::Secs(secs)
                        }
                    };
                }
                "mode_policy" => spec.mode_policy = parse_mode_policy(one("policy")?, lineno)?,
                "max_estimator" => {
                    spec.max_estimator = match one("on/off")? {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(SpecError::at(
                                lineno,
                                format!("max_estimator must be on/off, got {other:?}"),
                            ));
                        }
                    };
                }
                "offset_spread" => spec.offset_spread = parse_num(one("value")?, lineno)?,
                "offset_ramp" => spec.offset_ramp = parse_num(one("value")?, lineno)?,
                "cluster_offset" => {
                    if args.len() != 2 {
                        return Err(SpecError::at(
                            lineno,
                            "cluster_offset takes: cluster offset",
                        ));
                    }
                    spec.cluster_offsets
                        .push((parse_num(args[0], lineno)?, parse_num(args[1], lineno)?));
                }
                "fault" => {
                    if args.len() < 2 {
                        return Err(SpecError::at(
                            lineno,
                            "fault takes: node kind [args…] [from <t> to <t>]",
                        ));
                    }
                    let node = parse_num(args[0], lineno)?;
                    // `from` splits the kind tokens from the window:
                    // fault kinds take only numeric arguments, so the
                    // keyword cannot occur inside them.
                    if let Some(split) = args.iter().position(|&a| a == "from") {
                        let kind = parse_fault(&args[1..split], lineno)?;
                        let window = &args[split..];
                        if window.len() != 4 || window[2] != "to" {
                            return Err(SpecError::at(lineno, "fault window is `from <t> to <t>`"));
                        }
                        let from: f64 = parse_num(window[1], lineno)?;
                        let to: f64 = parse_num(window[3], lineno)?;
                        check_window(from, to, lineno)?;
                        spec.fault_windows.push((node, kind, from, to));
                    } else {
                        spec.faults.push((node, parse_fault(&args[1..], lineno)?));
                    }
                }
                "churn" => {
                    let usage = "churn takes: count kind [args…] period <t> downtime <t>";
                    if args.len() < 2 {
                        return Err(SpecError::at(lineno, usage));
                    }
                    let count: usize = parse_num(args[0], lineno)?;
                    if count == 0 {
                        return Err(SpecError::at(lineno, "churn count must be at least 1"));
                    }
                    let split = args
                        .iter()
                        .position(|&a| a == "period")
                        .ok_or_else(|| SpecError::at(lineno, usage))?;
                    let kind = parse_fault(&args[1..split], lineno)?;
                    let tail = &args[split..];
                    if tail.len() != 4 || tail[2] != "downtime" {
                        return Err(SpecError::at(lineno, usage));
                    }
                    let period: f64 = parse_num(tail[1], lineno)?;
                    let downtime: f64 = parse_num(tail[3], lineno)?;
                    check_churn(period, downtime, lineno)?;
                    spec.churn.push((count, kind, period, downtime));
                }
                "mobile" => {
                    let usage = "mobile takes: count kind [args…] hop <t>";
                    if args.len() < 2 {
                        return Err(SpecError::at(lineno, usage));
                    }
                    let count: usize = parse_num(args[0], lineno)?;
                    if count == 0 {
                        return Err(SpecError::at(lineno, "mobile count must be at least 1"));
                    }
                    let split = args
                        .iter()
                        .position(|&a| a == "hop")
                        .ok_or_else(|| SpecError::at(lineno, usage))?;
                    let kind = parse_fault(&args[1..split], lineno)?;
                    let tail = &args[split..];
                    if tail.len() != 2 {
                        return Err(SpecError::at(lineno, usage));
                    }
                    let hop: f64 = parse_num(tail[1], lineno)?;
                    if !hop.is_finite() || hop <= 0.0 {
                        return Err(SpecError::at(
                            lineno,
                            "mobile hop must be positive and finite",
                        ));
                    }
                    spec.mobile.push((count, kind, hop));
                }
                "fault_per_cluster" => {
                    if args.len() < 2 {
                        return Err(SpecError::at(
                            lineno,
                            "fault_per_cluster takes: count kind [args…]",
                        ));
                    }
                    spec.faults_per_cluster.push((
                        parse_num(args[0], lineno)?,
                        parse_fault(&args[1..], lineno)?,
                    ));
                }
                "random_faults" => {
                    if args.len() < 3 {
                        return Err(SpecError::at(
                            lineno,
                            "random_faults takes: count seed kind [args…]",
                        ));
                    }
                    spec.random_faults.push((
                        parse_num(args[0], lineno)?,
                        parse_num(args[1], lineno)?,
                        parse_fault(&args[2..], lineno)?,
                    ));
                }
                "rate_override" => {
                    if args.len() < 2 {
                        return Err(SpecError::at(lineno, "rate_override takes: node model…"));
                    }
                    spec.rate_overrides.push((
                        parse_num(args[0], lineno)?,
                        parse_rate_model(&args[1..], lineno)?,
                    ));
                }
                "scheduler" => {
                    spec.scheduler = match args {
                        ["global"] => SchedulerSpec::Global,
                        ["sharded"] => SchedulerSpec::ShardedByCluster,
                        ["parallel", workers] => {
                            SchedulerSpec::Parallel(parse_num(workers, lineno)?)
                        }
                        _ => {
                            return Err(SpecError::at(
                                lineno,
                                "scheduler is `global`, `sharded`, or `parallel <workers>`",
                            ));
                        }
                    };
                }
                other => {
                    return Err(SpecError::at(lineno, format!("unknown key {other:?}")));
                }
            }
        }
        spec.name = name.ok_or_else(|| SpecError::new("missing required key `name`"))?;
        spec.topology =
            topology.ok_or_else(|| SpecError::new("missing required key `topology`"))?;
        spec.cluster_size = cluster_size.unwrap_or(3 * spec.f + 1);
        if spec.name.is_empty() {
            return Err(SpecError::new("name must not be empty"));
        }
        if spec.cluster_size < 3 * spec.f + 1 {
            return Err(SpecError::new(format!(
                "cluster_size {} is below 3f+1 = {}",
                spec.cluster_size,
                3 * spec.f + 1
            )));
        }
        Ok(spec)
    }
}

/// Is `name` expressible in the text format? One non-empty word: no
/// whitespace (the printer emits `name <word>` on one line) and no `#`
/// (which would start a comment on re-parse). [`ScenarioSpec::parse`]
/// can only produce such names; [`Scenario::from_spec`] rejects others
/// so that `to_spec().print()` always re-parses.
///
/// [`Scenario::from_spec`]: crate::runner::Scenario::from_spec
pub(crate) fn name_is_canonical(name: &str) -> bool {
    !name.is_empty() && !name.contains(char::is_whitespace) && !name.contains('#')
}

/// Validates one fault window: finite bounds, `from ≥ 0`, `to > from`.
/// Shared by the parser (with a line number) and
/// [`Scenario::from_spec`] (line 0) so programmatic specs get the same
/// `SpecError` instead of a panic.
///
/// [`Scenario::from_spec`]: crate::runner::Scenario::from_spec
pub(crate) fn check_window(from: f64, to: f64, line: usize) -> Result<(), SpecError> {
    if !from.is_finite() || !to.is_finite() || from < 0.0 {
        return Err(SpecError::at(
            line,
            "fault window bounds must be finite and non-negative",
        ));
    }
    if to <= from {
        return Err(SpecError::at(
            line,
            format!("fault window is inverted: to {to} must exceed from {from}"),
        ));
    }
    Ok(())
}

/// Validates churn timing: finite `period > 0` and `0 < downtime <
/// period` (a node must be up part of every cycle to re-integrate).
pub(crate) fn check_churn(period: f64, downtime: f64, line: usize) -> Result<(), SpecError> {
    if !period.is_finite() || period <= 0.0 {
        return Err(SpecError::at(
            line,
            "churn period must be positive and finite",
        ));
    }
    if !downtime.is_finite() || downtime <= 0.0 || downtime >= period {
        return Err(SpecError::at(
            line,
            format!("churn downtime must satisfy 0 < downtime < period, got {downtime}"),
        ));
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, SpecError> {
    s.parse::<T>()
        .map_err(|_| SpecError::at(line, format!("invalid number {s:?}")))
}

fn print_delay(d: &DelayDistribution) -> &'static str {
    match d {
        DelayDistribution::Uniform => "uniform",
        DelayDistribution::Maximal => "maximal",
        DelayDistribution::Minimal => "minimal",
        DelayDistribution::AsymmetricById => "asymmetric_by_id",
        DelayDistribution::AlternatingByDst => "alternating_by_dst",
    }
}

fn parse_delay(s: &str, line: usize) -> Result<DelayDistribution, SpecError> {
    Ok(match s {
        "uniform" => DelayDistribution::Uniform,
        "maximal" => DelayDistribution::Maximal,
        "minimal" => DelayDistribution::Minimal,
        "asymmetric_by_id" => DelayDistribution::AsymmetricById,
        "alternating_by_dst" => DelayDistribution::AlternatingByDst,
        other => {
            return Err(SpecError::at(
                line,
                format!("unknown delay distribution {other:?}"),
            ));
        }
    })
}

fn print_mode_policy(p: ModePolicy) -> &'static str {
    match p {
        ModePolicy::Sticky => "sticky",
        ModePolicy::DefaultSlow => "default_slow",
        ModePolicy::CatchUp => "catch_up",
    }
}

fn parse_mode_policy(s: &str, line: usize) -> Result<ModePolicy, SpecError> {
    Ok(match s {
        "sticky" => ModePolicy::Sticky,
        "default_slow" => ModePolicy::DefaultSlow,
        "catch_up" => ModePolicy::CatchUp,
        other => {
            return Err(SpecError::at(
                line,
                format!("unknown mode policy {other:?}"),
            ));
        }
    })
}

fn print_rate_model(m: &RateModel) -> String {
    match m {
        RateModel::Constant { frac } => format!("constant {frac}"),
        RateModel::RandomConstant => "random_constant".to_string(),
        RateModel::RandomWalk { dwell, step } => format!("random_walk {dwell} {step}"),
        RateModel::Sinusoid { period, phase } => format!("sinusoid {period} {phase}"),
        RateModel::Schedule(points) => {
            let mut s = "schedule".to_string();
            for (t, frac) in points {
                let _ = write!(s, " {t}:{frac}");
            }
            s
        }
    }
}

fn parse_rate_model(args: &[&str], line: usize) -> Result<RateModel, SpecError> {
    let kind = *args
        .first()
        .ok_or_else(|| SpecError::at(line, "rate model needs a kind"))?;
    let want = |n: usize| -> Result<(), SpecError> {
        if args.len() == n + 1 {
            Ok(())
        } else {
            Err(SpecError::at(
                line,
                format!("rate model {kind} takes {n} argument(s)"),
            ))
        }
    };
    Ok(match kind {
        "constant" => {
            want(1)?;
            RateModel::Constant {
                frac: parse_num(args[1], line)?,
            }
        }
        "random_constant" => {
            want(0)?;
            RateModel::RandomConstant
        }
        "random_walk" => {
            want(2)?;
            RateModel::RandomWalk {
                dwell: parse_num(args[1], line)?,
                step: parse_num(args[2], line)?,
            }
        }
        "sinusoid" => {
            want(2)?;
            RateModel::Sinusoid {
                period: parse_num(args[1], line)?,
                phase: parse_num(args[2], line)?,
            }
        }
        "schedule" => {
            if args.len() < 2 {
                return Err(SpecError::at(
                    line,
                    "schedule needs at least one t:frac pair",
                ));
            }
            let mut points = Vec::new();
            for pair in &args[1..] {
                let (t, frac) = pair.split_once(':').ok_or_else(|| {
                    SpecError::at(line, format!("schedule entries are t:frac, got {pair:?}"))
                })?;
                points.push((parse_num(t, line)?, parse_num(frac, line)?));
            }
            RateModel::Schedule(points)
        }
        other => {
            return Err(SpecError::at(line, format!("unknown rate model {other:?}")));
        }
    })
}

fn print_fault(kind: &FaultKind) -> String {
    match kind {
        FaultKind::Silent => "silent".to_string(),
        FaultKind::Crash { at } => format!("crash {at}"),
        FaultKind::RandomPulser { mean_interval } => format!("random_pulser {mean_interval}"),
        FaultKind::TwoFaced { amplitude } => format!("two_faced {amplitude}"),
        FaultKind::SkewPuller { offset } => format!("skew_puller {offset}"),
        FaultKind::StealthyRusher { extra_rate } => format!("stealthy_rusher {extra_rate}"),
        FaultKind::LevelFlooder { level_step } => format!("level_flooder {level_step}"),
    }
}

fn parse_fault(args: &[&str], line: usize) -> Result<FaultKind, SpecError> {
    let kind = *args
        .first()
        .ok_or_else(|| SpecError::at(line, "fault needs a kind"))?;
    let want = |n: usize| -> Result<(), SpecError> {
        if args.len() == n + 1 {
            Ok(())
        } else {
            Err(SpecError::at(
                line,
                format!("fault {kind} takes {n} argument(s)"),
            ))
        }
    };
    Ok(match kind {
        "silent" => {
            want(0)?;
            FaultKind::Silent
        }
        "crash" => {
            want(1)?;
            FaultKind::Crash {
                at: parse_num(args[1], line)?,
            }
        }
        "random_pulser" => {
            want(1)?;
            FaultKind::RandomPulser {
                mean_interval: parse_num(args[1], line)?,
            }
        }
        "two_faced" => {
            want(1)?;
            FaultKind::TwoFaced {
                amplitude: parse_num(args[1], line)?,
            }
        }
        "skew_puller" => {
            want(1)?;
            FaultKind::SkewPuller {
                offset: parse_num(args[1], line)?,
            }
        }
        "stealthy_rusher" => {
            want(1)?;
            FaultKind::StealthyRusher {
                extra_rate: parse_num(args[1], line)?,
            }
        }
        "level_flooder" => {
            want(1)?;
            FaultKind::LevelFlooder {
                level_step: parse_num(args[1], line)?,
            }
        }
        other => {
            return Err(SpecError::at(line, format!("unknown fault kind {other:?}")));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips() {
        let spec = ScenarioSpec::new("demo", TopologySpec::Line(4), 1);
        let text = spec.print();
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn loaded_spec_round_trips_with_everything_set() {
        let mut spec = ScenarioSpec::new("kitchen_sink", TopologySpec::Grid(2, 3), 2);
        spec.cluster_size = 8;
        spec.seed = 99;
        spec.duration = DurationSpec::Secs(1.25);
        spec.delay = DelayDistribution::AsymmetricById;
        spec.rate_model = RateModel::Sinusoid {
            period: 3.5,
            phase: 0.25,
        };
        spec.sample_interval = SampleSpec::Secs(0.01);
        spec.mode_policy = ModePolicy::Sticky;
        spec.max_estimator = false;
        spec.offset_spread = 1e-4;
        spec.offset_ramp = 2e-4;
        spec.cluster_offsets = vec![(1, 3e-4), (5, 1e-5)];
        spec.faults = vec![(3, FaultKind::Crash { at: 0.5 })];
        spec.faults_per_cluster = vec![(1, FaultKind::TwoFaced { amplitude: 1e-3 })];
        spec.random_faults = vec![(1, 7, FaultKind::Silent)];
        spec.rate_overrides = vec![(0, RateModel::Constant { frac: 1.0 })];
        spec.scheduler = SchedulerSpec::Parallel(4);
        let text = spec.print();
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn schedule_rate_model_round_trips() {
        let mut spec = ScenarioSpec::new("sched", TopologySpec::Ring(3), 1);
        spec.rate_model = RateModel::Schedule(vec![(0.0, 1.0), (100.0, 0.0)]);
        let text = spec.print();
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
        assert!(text.contains("schedule 0:1 100:0"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\nname x # trailing\n\ntopology line 2\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.topology, TopologySpec::Line(2));
    }

    #[test]
    fn unknown_key_is_an_error_with_line_number() {
        let err = ScenarioSpec::parse("name x\ntopology line 2\nbogus 3\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("bogus"));
    }

    #[test]
    fn missing_required_keys_are_errors() {
        assert!(ScenarioSpec::parse("topology line 2\n").is_err());
        assert!(ScenarioSpec::parse("name x\n").is_err());
    }

    #[test]
    fn undersized_cluster_rejected() {
        let err =
            ScenarioSpec::parse("name x\ntopology line 2\nf 2\ncluster_size 4\n").unwrap_err();
        assert!(err.msg.contains("3f+1"));
    }

    #[test]
    fn lifecycle_directives_round_trip() {
        let mut spec = ScenarioSpec::new("lifecycle", TopologySpec::Line(3), 1);
        spec.fault_windows = vec![
            (2, FaultKind::TwoFaced { amplitude: 1e-3 }, 0.5, 1.5),
            (5, FaultKind::Silent, 1.0, 2.0),
        ];
        spec.churn = vec![(2, FaultKind::Silent, 1.0, 0.25)];
        spec.mobile = vec![(1, FaultKind::SkewPuller { offset: -1e-3 }, 0.5)];
        let text = spec.print();
        assert!(text.contains("fault 2 two_faced 0.001 from 0.5 to 1.5"));
        assert!(text.contains("churn 2 silent period 1 downtime 0.25"));
        assert!(text.contains("mobile 1 skew_puller -0.001 hop 0.5"));
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn inverted_window_is_a_spec_error() {
        let err = ScenarioSpec::parse("name x\ntopology line 2\nfault 0 silent from 2 to 2\n")
            .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("inverted"));
        assert!(
            ScenarioSpec::parse("name x\ntopology line 2\nfault 0 silent from -1 to 2\n").is_err()
        );
    }

    #[test]
    fn bad_churn_timing_is_a_spec_error() {
        let base = "name x\ntopology line 2\n";
        for bad in [
            "churn 1 silent period 1 downtime -0.5\n",
            "churn 1 silent period 1 downtime 1\n",
            "churn 1 silent period 0 downtime 0.5\n",
            "churn 0 silent period 1 downtime 0.5\n",
            "churn 1 silent downtime 0.5\n",
        ] {
            assert!(
                ScenarioSpec::parse(&format!("{base}{bad}")).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn bad_mobile_directive_is_a_spec_error() {
        let base = "name x\ntopology line 2\n";
        for bad in [
            "mobile 1 silent hop 0\n",
            "mobile 1 silent hop -1\n",
            "mobile 0 silent hop 1\n",
            "mobile 1 silent\n",
        ] {
            assert!(
                ScenarioSpec::parse(&format!("{base}{bad}")).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn duration_forms_parse() {
        let secs = ScenarioSpec::parse("name x\ntopology line 2\nduration 2.5\n").unwrap();
        assert_eq!(secs.duration, DurationSpec::Secs(2.5));
        let rounds = ScenarioSpec::parse("name x\ntopology line 2\nduration 15 rounds\n").unwrap();
        assert_eq!(rounds.duration, DurationSpec::Rounds(15.0));
    }
}
