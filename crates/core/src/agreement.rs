//! The approximate-agreement step of the Lynch–Welch algorithm.
//!
//! Each round, a node collects one pulse-offset observation per cluster
//! member and computes the correction (Algorithm 1, line 12)
//!
//! ```text
//! Δ_v(r) = (S^(f+1) + S^(n−f)) / 2
//! ```
//!
//! where `S` is the observation multiset sorted ascending and `S^(i)` its
//! `i`-th element (1-indexed). Discarding the `f` smallest and `f` largest
//! entries ensures both selected order statistics lie within the range of
//! *correct* observations whenever at most `f` entries are Byzantine —
//! the classical trimmed-midpoint rule of Dolev et al. \[6\].

/// Outcome of the trimmed-midpoint computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Midpoint {
    /// The correction `Δ = (S^(f+1) + S^(n−f))/2`.
    pub delta: f64,
    /// The two selected order statistics (lower, upper).
    pub bounds: (f64, f64),
}

/// Computes the trimmed midpoint of `observations` tolerating `f` faults.
///
/// Missing observations (members whose pulse never arrived) must be encoded
/// as `f64::INFINITY`; at most `f` entries may be infinite, which the
/// trimming then removes from the upper side.
///
/// # Errors
///
/// Returns `Err` (with a diagnostic) when the multiset is too small
/// (`n < 2f+1`) or when a selected order statistic is non-finite (more than
/// `f` missing/faulty observations — an improper execution).
///
/// # Examples
///
/// ```
/// use ftgcs::agreement::trimmed_midpoint;
///
/// // 4 observations, f = 1: the outliers ±100 are discarded.
/// let m = trimmed_midpoint(&[-100.0, 0.0, 1.0, 100.0], 1).unwrap();
/// assert_eq!(m.delta, 0.5);
/// assert_eq!(m.bounds, (0.0, 1.0));
/// ```
pub fn trimmed_midpoint(observations: &[f64], f: usize) -> Result<Midpoint, MidpointError> {
    let n = observations.len();
    if n < 2 * f + 1 {
        return Err(MidpointError::TooFewObservations { n, f });
    }
    let mut sorted: Vec<f64> = observations.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("observations must not be NaN"));
    let lo = sorted[f]; // S^(f+1), 1-indexed
    let hi = sorted[n - 1 - f]; // S^(n-f)
    if !lo.is_finite() || !hi.is_finite() {
        return Err(MidpointError::TooManyMissing {
            missing: sorted.iter().filter(|x| !x.is_finite()).count(),
            f,
        });
    }
    Ok(Midpoint {
        delta: (lo + hi) / 2.0,
        bounds: (lo, hi),
    })
}

/// Why a trimmed midpoint could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MidpointError {
    /// Fewer than `2f+1` observations: trimming would remove everything.
    TooFewObservations {
        /// Number of observations supplied.
        n: usize,
        /// Fault budget.
        f: usize,
    },
    /// More than `f` observations were missing (non-finite), so a selected
    /// order statistic is not a real value.
    TooManyMissing {
        /// Number of non-finite observations.
        missing: usize,
        /// Fault budget.
        f: usize,
    },
}

impl std::fmt::Display for MidpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MidpointError::TooFewObservations { n, f: budget } => {
                write!(
                    f,
                    "need at least 2f+1 = {} observations, got {n}",
                    2 * budget + 1
                )
            }
            MidpointError::TooManyMissing { missing, f: budget } => write!(
                f,
                "{missing} observations missing, exceeding the fault budget f = {budget}"
            ),
        }
    }
}

impl std::error::Error for MidpointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_plain_midrange() {
        let m = trimmed_midpoint(&[1.0, 5.0, 3.0], 0).unwrap();
        assert_eq!(m.delta, 3.0);
        assert_eq!(m.bounds, (1.0, 5.0));
    }

    #[test]
    fn byzantine_extremes_cannot_move_result_outside_correct_range() {
        // Correct observations in [0, 1]; one Byzantine tries +inf and -inf.
        for bad in [f64::INFINITY, -1e30, 1e30] {
            let m = trimmed_midpoint(&[0.0, 0.4, 1.0, bad], 1).unwrap();
            assert!(
                (0.0..=1.0).contains(&m.delta),
                "bad={bad} moved delta to {}",
                m.delta
            );
        }
    }

    #[test]
    fn two_faults_with_seven_observations() {
        // k = 3f+1 = 7 with f = 2: four correct values around 10.
        let obs = [-999.0, -999.0, 9.0, 10.0, 11.0, 12.0, 999.0];
        let m = trimmed_midpoint(&obs, 2).unwrap();
        assert!((9.0..=12.0).contains(&m.delta));
        assert_eq!(m.bounds, (9.0, 11.0));
    }

    #[test]
    fn missing_observations_within_budget_are_fine() {
        let m = trimmed_midpoint(&[0.0, 0.2, 0.4, f64::INFINITY], 1).unwrap();
        assert_eq!(m.bounds, (0.2, 0.4));
    }

    #[test]
    fn too_many_missing_is_reported() {
        let err = trimmed_midpoint(&[0.0, 0.1, f64::INFINITY, f64::INFINITY], 1).unwrap_err();
        assert_eq!(err, MidpointError::TooManyMissing { missing: 2, f: 1 });
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn too_few_observations_is_reported() {
        let err = trimmed_midpoint(&[0.0, 1.0], 1).unwrap_err();
        assert!(matches!(
            err,
            MidpointError::TooFewObservations { n: 2, f: 1 }
        ));
        assert!(err.to_string().contains("2f+1"));
    }

    #[test]
    fn result_is_permutation_invariant() {
        let a = trimmed_midpoint(&[3.0, 1.0, 2.0, 9.0, -4.0], 1).unwrap();
        let b = trimmed_midpoint(&[9.0, -4.0, 2.0, 1.0, 3.0], 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exact_cluster_sizes() {
        // k = 3f+1 observations for f = 0..3 always succeed when complete.
        for f in 0..4usize {
            let k = 3 * f + 1;
            let obs: Vec<f64> = (0..k).map(|i| i as f64).collect();
            let m = trimmed_midpoint(&obs, f).unwrap();
            assert!((0.0..k as f64).contains(&m.delta));
        }
    }
}
