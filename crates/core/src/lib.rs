//! # ftgcs — Fault Tolerant Gradient Clock Synchronization
//!
//! A from-scratch reproduction of Bund, Lenzen & Rosenbaum, *Fault
//! Tolerant Gradient Clock Synchronization* (PODC 2019,
//! arXiv:1902.08042): the first gradient clock synchronization (GCS)
//! algorithm resilient to Byzantine faults.
//!
//! ## The construction
//!
//! Replace every node of a network `G` by a clique of `k ≥ 3f+1` nodes
//! (a *cluster*) and every edge by a complete bipartite graph
//! ([`ftgcs_topology::ClusterGraph`]). Then:
//!
//! 1. **Within clusters** ([`cluster`]) run a variant of the Lynch–Welch
//!    algorithm with *amortized* corrections: each round, pulse; collect
//!    pulses; trim `f` extremes; and spread the midpoint correction
//!    `Δ_v(r)` over phase 3 via the rate parameter `δ_v` (Lemma 3.1),
//!    keeping clocks continuous with rates in `[1, ϑ_max]`.
//! 2. **Between clusters** ([`triggers`], [`node`]) simulate the GCS
//!    algorithm of Lenzen–Locher–Wattenhofer on *cluster clocks*
//!    `L_C = (L⁺_C+L⁻_C)/2`: nodes estimate adjacent cluster clocks by
//!    passively running the cluster algorithm on overheard pulses
//!    ([`cluster::ClusterInstance`] in silent mode), and set their rate
//!    flag `γ_v` by the fast/slow triggers with slack `δ` and step
//!    `κ = 3δ`.
//! 3. **Globally** ([`global_max`]) bound the global skew by `O(δD)` with
//!    a fault-tolerant maximum-estimate flood and a catch-up rule
//!    (Theorem C.3).
//!
//! Result (Theorem 1.1): local skew `O((ρd + U)·log D)` between adjacent
//! correct nodes, despite up to `f` Byzantine nodes per cluster.
//!
//! ## Quickstart
//!
//! ```
//! use ftgcs::params::Params;
//! use ftgcs::runner::Scenario;
//! use ftgcs_metrics::skew::{intra_cluster_skew_series, FaultMask};
//! use ftgcs_topology::{generators, ClusterGraph};
//!
//! // Derive parameters for rho = 1e-4, d = 1 ms, U = 100 us, f = 1.
//! let params = Params::practical(1e-4, 1e-3, 1e-4, 1)?;
//! let cg = ClusterGraph::new(generators::line(2), 4, 1);
//! let mut scenario = Scenario::new(cg.clone(), params.clone());
//! scenario.seed(42);
//! let run = scenario.run_for(3.0);
//!
//! let mask = FaultMask::none(cg.physical().node_count());
//! let skew = intra_cluster_skew_series(&run.trace, &cg, &mask);
//! assert!(skew.max().unwrap() <= params.intra_cluster_skew_bound());
//! # Ok::<(), ftgcs::params::ParamError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Unsafety discipline (enforced by `ftgcs-lint`): this crate must
// compile with no `unsafe` at all; the one sanctioned unsafe region in
// the workspace is `ftgcs-sim`'s parallel executor (sim/src/par.rs).
#![deny(unsafe_code)]
// Library output goes through return values and the `Observer` sink,
// never the process streams (enforced by `ftgcs-lint` and clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod agreement;
pub mod cluster;
pub mod faults;
pub mod global_max;
pub mod messages;
pub mod node;
pub mod params;
pub mod runner;
pub mod spec;
pub mod triggers;

pub use faults::{FaultKind, LifecycleNode, LifecyclePhase};
pub use messages::Msg;
pub use node::{FtGcsNode, NodeConfig};
pub use params::{ParamError, Params, ParamsBuilder};
pub use runner::{Scenario, ScenarioRun};
pub use triggers::{Mode, ModePolicy};
