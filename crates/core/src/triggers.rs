//! Fast/slow triggers of the inter-cluster GCS layer (Definitions 4.3/4.4).
//!
//! A node `v ∈ C` with clock estimate `L_v` and neighbor-cluster estimates
//! `L̃_vB` satisfies the **fast trigger** at time `t` iff for some integer
//! `s ≥ 1`
//!
//! * FT-1: `∃A ∈ N_C : L̃_vA − L_v ≥ 2sκ − δ`, and
//! * FT-2: `∀B ∈ N_C : L_v − L̃_vB ≤ 2sκ + δ`;
//!
//! and the **slow trigger** iff for some `s ≥ 1`
//!
//! * ST-1: `∃A ∈ N_C : L_v − L̃_vA ≥ (2s−1)κ − δ`, and
//! * ST-2: `∀B ∈ N_C : L̃_vB − L_v ≤ (2s−1)κ + δ`.
//!
//! With `κ = 3δ` the triggers are mutually exclusive (Lemma 4.5), which
//! [`evaluate`] debug-asserts and experiment T6 audits at runtime.

/// The rate mode chosen by InterclusterSync for a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// `γ_v = 1`: logical clock gains the `(1+µ)` factor.
    Fast,
    /// `γ_v = 0`.
    #[default]
    Slow,
}

/// How to choose a mode when *neither* trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModePolicy {
    /// Keep the previous mode (Algorithm 2 verbatim).
    Sticky,
    /// Fall back to slow (the premise of Lemmas C.1/C.2).
    DefaultSlow,
    /// Theorem C.3: fall back to fast when trailing the global-maximum
    /// estimate by `c·δ`, else slow. Requires the max estimator.
    #[default]
    CatchUp,
}

/// Outcome of a trigger evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerOutcome {
    /// Whether the fast trigger FT fired.
    pub fast: bool,
    /// Whether the slow trigger ST fired.
    pub slow: bool,
}

/// Evaluates both triggers for own clock `own` against neighbor-cluster
/// estimates, with step `κ = kappa` and slack `δ = slack`.
///
/// Returns both flags; under `κ ≥ 2δ + (any positive gap)` at most one can
/// be set (Lemma 4.5 — with the paper's `κ = 3δ` this holds strictly).
///
/// # Panics
///
/// Panics (debug) if both triggers fire simultaneously, which would
/// falsify Lemma 4.5.
///
/// # Examples
///
/// ```
/// use ftgcs::triggers::evaluate;
///
/// let kappa = 3.0;
/// let slack = 1.0;
/// // A neighbor 6.5 ahead (>= 2κ − δ = 5): fast trigger fires.
/// let o = evaluate(0.0, &[6.5], kappa, slack);
/// assert!(o.fast && !o.slow);
/// // A neighbor 2.5 behind (>= κ − δ = 2): slow trigger fires.
/// let o = evaluate(0.0, &[-2.5], kappa, slack);
/// assert!(o.slow && !o.fast);
/// ```
#[must_use]
pub fn evaluate(own: f64, estimates: &[f64], kappa: f64, slack: f64) -> TriggerOutcome {
    assert!(kappa > 0.0 && slack >= 0.0, "need kappa > 0 and slack >= 0");
    if estimates.is_empty() {
        return TriggerOutcome {
            fast: false,
            slow: false,
        };
    }
    // max_up = how far the most-ahead neighbor leads us;
    // max_down = how far the most-behind neighbor trails us.
    let max_up = estimates
        .iter()
        .map(|&e| e - own)
        .fold(f64::NEG_INFINITY, f64::max);
    let max_down = estimates
        .iter()
        .map(|&e| own - e)
        .fold(f64::NEG_INFINITY, f64::max);

    // FT: exists integer s >= 1 with
    //   2sκ <= max_up + δ  (FT-1)   and   2sκ >= max_down − δ  (FT-2).
    let ft_hi = ((max_up + slack) / (2.0 * kappa)).floor();
    let ft_lo = ((max_down - slack) / (2.0 * kappa)).ceil().max(1.0);
    let fast = ft_lo <= ft_hi;

    // ST: exists integer s >= 1 with
    //   (2s−1)κ <= max_down + δ  (ST-1)   and   (2s−1)κ >= max_up − δ  (ST-2).
    let st_hi = (((max_down + slack) / kappa + 1.0) / 2.0).floor();
    let st_lo = (((max_up - slack) / kappa + 1.0) / 2.0).ceil().max(1.0);
    let slow = st_lo <= st_hi;

    debug_assert!(
        !(fast && slow) || slack * 2.0 >= kappa,
        "Lemma 4.5 violated: FT and ST both fired \
         (own={own}, up={max_up}, down={max_down}, kappa={kappa}, slack={slack})"
    );
    TriggerOutcome { fast, slow }
}

/// The *conditions* FC/SC (Definitions 4.1/4.2): the triggers with zero
/// slack, evaluated on true cluster clocks. Used by audits (experiment T6)
/// to check faithfulness (Definition 4.6).
#[must_use]
pub fn conditions(own: f64, neighbors: &[f64], kappa: f64) -> TriggerOutcome {
    evaluate(own, neighbors, kappa, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: f64 = 3.0;
    const D: f64 = 1.0; // slack = kappa/3 as in Lemma 4.8

    #[test]
    fn no_neighbors_never_triggers() {
        let o = evaluate(5.0, &[], K, D);
        assert!(!o.fast && !o.slow);
    }

    #[test]
    fn balanced_clocks_trigger_nothing() {
        let o = evaluate(0.0, &[0.1, -0.1], K, D);
        assert!(!o.fast && !o.slow);
    }

    #[test]
    fn far_ahead_neighbor_triggers_fast() {
        // 2κ − δ = 5.
        assert!(evaluate(0.0, &[5.0], K, D).fast);
        assert!(!evaluate(0.0, &[4.9], K, D).fast);
    }

    #[test]
    fn far_behind_neighbor_triggers_slow() {
        // κ − δ = 2.
        assert!(evaluate(0.0, &[-2.0], K, D).slow);
        assert!(!evaluate(0.0, &[-1.9], K, D).slow);
    }

    #[test]
    fn fast_blocked_by_lagging_neighbor() {
        // One neighbor 5 ahead (s=1 eligible), but another 2κ+δ+0.1 = 7.1
        // behind blocks s=1; s=2 needs a neighbor 2·2κ−δ = 11 ahead.
        let o = evaluate(0.0, &[5.0, -7.1], K, D);
        assert!(!o.fast);
        // With a neighbor 11 ahead, s=2 works despite the laggard.
        let o = evaluate(0.0, &[11.0, -7.1], K, D);
        assert!(o.fast);
    }

    #[test]
    fn slow_blocked_by_leading_neighbor() {
        // One neighbor 2 behind, but another κ+δ+0.1 = 4.1 ahead blocks
        // s=1; s=2 needs a neighbor 3κ−δ = 8 behind.
        let o = evaluate(0.0, &[-2.0, 4.1], K, D);
        assert!(!o.slow);
        let o = evaluate(0.0, &[-8.0, 4.1], K, D);
        assert!(o.slow);
    }

    #[test]
    fn higher_levels_engage() {
        // s=3 fast: neighbor at 6κ − δ = 17 ahead, another 17.5 behind...
        // blocked: need max_down <= 6κ + δ = 19 — 17.5 qualifies.
        let o = evaluate(0.0, &[17.0, -17.5], K, D);
        assert!(o.fast);
        // s=3 slow: neighbor at 5κ − δ = 14 behind, leader at 14 ahead
        // (≤ 5κ + δ = 16).
        let o = evaluate(0.0, &[-14.0, 14.0], K, D);
        assert!(o.slow);
    }

    #[test]
    fn mutual_exclusion_on_grid_of_inputs() {
        // Lemma 4.5 for κ = 3δ: sweep a grid of (up, down) pairs.
        let vals: Vec<f64> = (-40..=40).map(|i| i as f64 * 0.25).collect();
        for &up in &vals {
            for &down in &vals {
                let o = evaluate(0.0, &[up, -down], K, D);
                assert!(!(o.fast && o.slow), "both triggers at up={up}, down={down}");
            }
        }
    }

    #[test]
    fn conditions_are_zero_slack_triggers() {
        // FC needs a neighbor at 2κ = 6 exactly.
        assert!(conditions(0.0, &[6.0], K).fast);
        assert!(!conditions(0.0, &[5.9], K).fast);
        // SC needs a neighbor at κ = 3 behind.
        assert!(conditions(0.0, &[-3.0], K).slow);
        assert!(!conditions(0.0, &[-2.9], K).slow);
    }

    #[test]
    fn condition_implies_trigger() {
        // Whenever FC holds, FT holds (slack only widens); Definition 4.6's
        // faithfulness relies on this plus estimate accuracy.
        let vals: Vec<f64> = (-30..=30).map(|i| i as f64 * 0.5).collect();
        for &a in &vals {
            for &b in &vals {
                let c = conditions(0.0, &[a, b], K);
                let t = evaluate(0.0, &[a, b], K, D);
                if c.fast {
                    assert!(t.fast, "FC without FT at ({a},{b})");
                }
                if c.slow {
                    assert!(t.slow, "SC without ST at ({a},{b})");
                }
            }
        }
    }
}
