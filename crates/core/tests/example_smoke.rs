//! Smoke test: `examples/quickstart.rs` must build, run, and exit 0, so
//! the first thing the README tells people to run can't silently rot.
//!
//! The example is driven through `cargo run --example` (cargo rebuilds
//! it if stale); `cargo test` itself already type-checks all examples,
//! so this adds the *runtime* guarantee on top.

use std::process::Command;

#[test]
fn quickstart_example_runs_and_exits_zero() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "-q", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("all paper bounds hold"),
        "quickstart no longer reports its success line:\n{stdout}"
    );
}
