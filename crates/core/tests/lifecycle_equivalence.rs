//! Scheduler differential for the fault-lifecycle engine: scenarios
//! with time-windowed faults, crash–recover churn, and mobile Byzantine
//! adversaries produce **byte-identical** traces on the global heap,
//! the per-cluster sharded queue, and the parallel executor on every
//! worker count.
//!
//! Lifecycle transitions are ordinary Newtonian timer events with the
//! standard `(time, source, counter)` dispatch key, so nothing here
//! should depend on scheduling — this suite pins that. It runs in CI
//! both free-threaded and with `FTGCS_WORKERS` pinned to 2 and 4.

use ftgcs::runner::{Scenario, ScenarioRun};
use ftgcs::spec::{DurationSpec, ScenarioSpec, TopologySpec};
use ftgcs::FaultKind;
use ftgcs_sim::shard::SchedulerKind;

/// The three lifecycle regimes, as specs so the test also covers the
/// spec-expansion path (churn placement, mobile itineraries).
fn lifecycle_specs() -> Vec<ScenarioSpec> {
    let mut windowed = ScenarioSpec::new("windowed", TopologySpec::Line(3), 1);
    windowed.seed = 7;
    windowed.duration = DurationSpec::Rounds(20.0);
    windowed
        .fault_windows
        .push((1, FaultKind::TwoFaced { amplitude: 1e-3 }, 0.05, 0.12));
    windowed
        .fault_windows
        .push((5, FaultKind::Crash { at: 0.08 }, 0.02, 0.15));

    let mut churn = ScenarioSpec::new("churn", TopologySpec::Line(3), 1);
    churn.seed = 23;
    churn.duration = DurationSpec::Rounds(20.0);
    churn.churn.push((3, FaultKind::Silent, 0.08, 0.03));

    let mut mobile = ScenarioSpec::new("mobile", TopologySpec::Line(3), 1);
    mobile.seed = 41;
    mobile.duration = DurationSpec::Rounds(20.0);
    mobile
        .mobile
        .push((2, FaultKind::SkewPuller { offset: -1e-3 }, 0.06));

    vec![windowed, churn, mobile]
}

fn run(spec: &ScenarioSpec, configure: impl FnOnce(&mut Scenario)) -> ScenarioRun {
    let mut s = Scenario::from_spec(spec).expect("spec must assemble");
    configure(&mut s);
    let horizon = spec.duration.resolve(s.params());
    s.run_for(horizon)
}

#[test]
fn lifecycle_runs_match_across_all_schedulers() {
    for spec in lifecycle_specs() {
        let global = run(&spec, |s| {
            s.scheduler(SchedulerKind::Global);
        });
        assert!(
            !global.trace.samples.is_empty() && !global.trace.rows.is_empty(),
            "{}: trace must be non-trivial",
            spec.name
        );
        assert!(
            !global.faulty.is_empty(),
            "{}: lifecycle faults must register as ever-faulty",
            spec.name
        );

        let sharded = run(&spec, |s| {
            s.sharded_by_cluster();
        });
        assert_eq!(sharded.stats, global.stats, "{}: sharded stats", spec.name);
        assert_eq!(
            sharded.trace.to_bytes(),
            global.trace.to_bytes(),
            "{}: sharded scheduler changed a lifecycle run",
            spec.name
        );

        for workers in [1usize, 2, 4, 0] {
            let parallel = run(&spec, |s| {
                s.parallel(workers);
            });
            assert_eq!(
                parallel.stats, global.stats,
                "{}: workers {workers}: work counters diverged",
                spec.name
            );
            assert!(
                parallel.trace.byte_identical(&global.trace),
                "{}: parallel lifecycle run diverged at {workers} workers",
                spec.name
            );
        }
    }
}

#[test]
fn random_fault_placement_is_scheduler_independent() {
    // Satellite: `random_faults (count, seed)` must pick the identical
    // node set however the run is scheduled (the placement draws from a
    // dedicated RNG stream seeded by the directive alone), and must
    // never exceed the per-cluster budget `f`.
    let mut spec = ScenarioSpec::new("randfaults", TopologySpec::Line(3), 1);
    spec.seed = 13;
    spec.duration = DurationSpec::Rounds(5.0);
    spec.random_faults.push((1, 99, FaultKind::Silent));

    let reference = Scenario::from_spec(&spec).expect("spec must assemble");
    let placement = reference.faulty_nodes();
    assert_eq!(placement.len(), 3, "one random fault per cluster");
    assert!(!reference.faults_exceed_budget());

    type Configure = Box<dyn Fn(&mut Scenario)>;
    let schedulers: Vec<Configure> = vec![
        Box::new(|s| {
            s.scheduler(SchedulerKind::Global);
        }),
        Box::new(|s| {
            s.sharded_by_cluster();
        }),
        Box::new(|s| {
            s.parallel(2);
        }),
        Box::new(|s| {
            s.parallel(4);
        }),
    ];
    for (i, configure) in schedulers.into_iter().enumerate() {
        let r = run(&spec, configure);
        assert_eq!(
            r.faulty, placement,
            "scheduler variant {i} moved the faults"
        );
    }

    // A different directive seed draws a different (but still
    // deterministic) placement.
    let mut reseeded = spec.clone();
    reseeded.random_faults[0].1 = 100;
    let other = Scenario::from_spec(&reseeded).expect("spec must assemble");
    assert_eq!(other.faulty_nodes().len(), 3);
    assert!(!other.faults_exceed_budget());
}
