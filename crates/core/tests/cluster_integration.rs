//! Integration tests of the ClusterSync layer (paper Section 3):
//! intra-cluster skew bounds (Corollary 3.2), pulse-diameter convergence
//! (Proposition B.14), estimate accuracy (Corollary 3.5), and logical
//! clock rate bounds (Lemma B.4).

use ftgcs::cluster::{ROW_PULSE, ROW_ROUND};
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{intra_cluster_skew_series, pulse_diameters, FaultMask};
use ftgcs_sim::clock::RateModel;
use ftgcs_sim::node::{NodeId, TrackId};
use ftgcs_sim::time::SimTime;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

fn single_cluster(seed: u64) -> Scenario {
    let p = params();
    let cg = ClusterGraph::new(line(1), 4, 1);
    let mut s = Scenario::new(cg, p);
    s.seed(seed).rate_model(RateModel::RandomConstant);
    s
}

#[test]
fn fault_free_cluster_stays_within_skew_bound() {
    let s = single_cluster(1);
    let bound = s.params().intra_cluster_skew_bound();
    let run = s.run_for(30.0);
    let mask = FaultMask::none(4);
    let skew = intra_cluster_skew_series(&run.trace, s.cluster_graph(), &mask);
    assert!(!skew.is_empty());
    let max = skew.max().unwrap();
    assert!(max <= bound, "intra-cluster skew {max} > bound {bound}");
}

#[test]
fn cluster_converges_from_initial_spread() {
    let mut s = single_cluster(2);
    let e = s.params().e;
    s.initial_offset_spread(e * 0.9);
    let bound = s.params().intra_cluster_skew_bound();
    let run = s.run_for(40.0);
    let mask = FaultMask::none(4);
    let skew = intra_cluster_skew_series(&run.trace, s.cluster_graph(), &mask);
    // The spread starts near 0.9E and must contract, ending within the
    // steady-state bound.
    let early = skew.value_at_or_before(0.01).unwrap();
    let late = skew.after(20.0).max().unwrap();
    assert!(early > 0.2 * e, "expected initial spread, got {early}");
    assert!(late <= bound, "late skew {late} > bound {bound}");
    assert!(late < early, "no contraction: early={early}, late={late}");
}

#[test]
fn pulse_diameters_contract_below_e() {
    let mut s = single_cluster(3);
    let e = s.params().e;
    s.initial_offset_spread(e * 0.9);
    let run = s.run_for(40.0);
    let mask = FaultMask::none(4);
    let diam = pulse_diameters(&run.trace, s.cluster_graph(), &mask, ROW_PULSE);
    let rounds = &diam[0];
    assert!(
        rounds.len() > 50,
        "expected many rounds, got {}",
        rounds.len()
    );
    // Proposition B.14: ||p(r)|| <= E for all rounds (offsets were kept
    // below e(1) = E).
    for (r, d) in rounds.iter().enumerate() {
        let d = d.expect("every round should have pulses");
        assert!(d <= e * 1.05, "round {} diameter {d} > E {e}", r + 1);
    }
    // Steady state is far below E for benign delays.
    let tail = rounds[rounds.len() - 10..]
        .iter()
        .map(|d| d.unwrap())
        .fold(0.0_f64, f64::max);
    assert!(tail < e, "steady-state diameter {tail} not below E {e}");
}

#[test]
fn silent_fault_is_tolerated() {
    let mut s = single_cluster(4);
    s.with_fault(0, ftgcs::FaultKind::Silent);
    let bound = s.params().intra_cluster_skew_bound();
    let run = s.run_for(30.0);
    let mask = FaultMask::from_nodes(4, &run.faulty);
    let skew = intra_cluster_skew_series(&run.trace, s.cluster_graph(), &mask);
    let max = skew.max().unwrap();
    assert!(max <= bound, "skew with silent fault {max} > bound {bound}");
    // Round rows must report exactly one missing pulse per round.
    for row in run.trace.rows_of_kind(ROW_ROUND) {
        assert_eq!(row.values[4], 1.0, "missing count should be 1");
    }
}

#[test]
fn proper_execution_has_no_missing_or_oversized_corrections() {
    let s = single_cluster(5);
    let p = params();
    let run = s.run_for(30.0);
    let limit = p.phi * p.tau3;
    for row in run.trace.rows_of_kind(ROW_ROUND) {
        let (delta, missing) = (row.values[2], row.values[4]);
        assert_eq!(missing, 0.0, "missing pulse in fault-free run");
        assert!(
            delta.abs() <= limit,
            "correction {delta} exceeds phi*tau3 = {limit}"
        );
    }
}

#[test]
fn logical_rates_stay_within_lemma_b4_bounds() {
    let s = single_cluster(6);
    let p = params();
    let run = s.run_for(20.0);
    let samples = &run.trace.samples;
    assert!(samples.len() > 20);
    for pair in samples.windows(2) {
        let dt = (pair[1].t - pair[0].t).as_secs();
        if dt <= 0.0 {
            continue;
        }
        for v in 0..4 {
            let rate = (pair[1].logical[v] - pair[0].logical[v]) / dt;
            // Lemma B.4: 1 <= rate <= theta_max. Sampling averages over
            // phase boundaries, so allow a hair of numerical slack.
            assert!(rate >= 1.0 - 1e-9, "node {v} rate {rate} < 1");
            assert!(
                rate <= p.theta_max + 1e-9,
                "node {v} rate {rate} > theta_max {}",
                p.theta_max
            );
        }
    }
}

#[test]
fn estimators_track_neighbor_cluster_clocks() {
    let p = params();
    let cg = ClusterGraph::new(line(2), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(7).rate_model(RateModel::RandomConstant);
    let mut sim = s.build();
    sim.run_until(SimTime::from_secs(30.0));
    // Cluster 1's clock = midpoint of its members' extremes.
    let clocks: Vec<f64> = (4..8).map(|v| sim.logical_value(NodeId(v))).collect();
    let lmax = clocks.iter().cloned().fold(f64::MIN, f64::max);
    let lmin = clocks.iter().cloned().fold(f64::MAX, f64::min);
    let cluster_clock = (lmax + lmin) / 2.0;
    // Every node of cluster 0 runs its estimator of cluster 1 on track 1.
    for v in 0..4 {
        let est = sim.track_value_of(NodeId(v), TrackId(1));
        let err = (est - cluster_clock).abs();
        assert!(
            err <= p.estimate_error_bound(),
            "node {v} estimate error {err} > E {}",
            p.estimate_error_bound()
        );
    }
}

#[test]
fn two_fault_clusters_work_with_k7() {
    let p = Params::builder(1e-4, 1e-3, 1e-4, 2).build().unwrap();
    let cg = ClusterGraph::new(line(1), 7, 2);
    let mut s = Scenario::new(cg, p.clone());
    s.seed(8)
        .rate_model(RateModel::RandomConstant)
        .with_fault(0, ftgcs::FaultKind::Silent)
        .with_fault(
            1,
            ftgcs::FaultKind::RandomPulser {
                mean_interval: 0.05,
            },
        );
    let run = s.run_for(30.0);
    let mask = FaultMask::from_nodes(7, &run.faulty);
    let skew = intra_cluster_skew_series(&run.trace, s.cluster_graph(), &mask);
    let max = skew.max().unwrap();
    let bound = p.intra_cluster_skew_bound();
    assert!(max <= bound, "k=7/f=2 skew {max} > bound {bound}");
}
