//! Baseline comparisons from the paper's introduction:
//!
//! * master/slave tree sync "compresses the full global skew onto a
//!   single edge" — its local skew is no better than its global skew;
//! * plain (non-fault-tolerant) GCS collapses under a single Byzantine
//!   node, while FTGCS with a Byzantine node *per cluster* stays bounded.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_baselines::{build_gcs_sim, build_tree_sim, Correction, GcsConfig};
use ftgcs_metrics::skew::{
    cluster_local_skew_series, global_skew_series, local_skew_series, FaultMask,
};
use ftgcs_sim::clock::RateModel;
use ftgcs_sim::engine::SimConfig;
use ftgcs_sim::network::{DelayConfig, DelayDistribution};
use ftgcs_sim::time::{SimDuration, SimTime};
use ftgcs_topology::generators::{line, ring};

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        delay: DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(100.0),
            DelayDistribution::Uniform,
        ),
        rho: 1e-4,
        rate_model: RateModel::RandomConstant,
        seed,
        sample_interval: Some(SimDuration::from_millis(20.0)),
        ..SimConfig::default()
    }
}

#[test]
fn tree_sync_compresses_global_skew_onto_one_edge() {
    // Long beacon interval => large per-wave correction; jump mode makes
    // the wavefront visible as local skew.
    let g = line(8);
    let mut sim = build_tree_sim(&g, 0, sim_config(1), 5.0, Correction::Jump);
    sim.run_until(SimTime::from_secs(60.0));
    let mask = FaultMask::none(8);
    let local = local_skew_series(sim.trace(), &g, &mask);
    let global = global_skew_series(sim.trace(), &mask);
    let max_local = local.after(10.0).max().unwrap();
    let max_global = global.after(10.0).max().unwrap();
    // The compression phenomenon: worst local skew within a constant
    // factor of worst global skew (here at least 60%).
    assert!(
        max_local >= 0.6 * max_global,
        "expected compression: local {max_local} vs global {max_global}"
    );
    assert!(max_global > 0.0);
}

#[test]
fn plain_gcs_diverges_under_one_byzantine_node() {
    let g = ring(8);
    let gcs_cfg = GcsConfig::for_network(1e-4, 1e-3, 1e-4);
    let kappa = gcs_cfg.kappa;
    let mut sim = build_gcs_sim(&g, gcs_cfg, sim_config(2), &[0]);
    sim.run_until(SimTime::from_secs(150.0));
    let faulty = FaultMask::from_nodes(8, &[0]);
    let local = local_skew_series(sim.trace(), &g, &faulty);
    // Divergence between *correct* neighbors: the late skew dwarfs both
    // kappa and the early skew.
    let early = local.value_at_or_before(20.0).unwrap();
    let late = local.last().unwrap();
    assert!(
        late > 2.0 * early.max(kappa),
        "no divergence: early={early}, late={late}, kappa={kappa}"
    );
}

#[test]
fn ftgcs_stays_bounded_where_plain_gcs_diverges() {
    // Same abstract topology (ring of 8), but augmented: every cluster
    // even contains its own two-faced Byzantine node.
    let p = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
    let cg = ftgcs_topology::ClusterGraph::new(ring(8), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    let amp = p.phi * p.tau3 * 0.9;
    s.seed(3)
        .rate_model(RateModel::RandomConstant)
        .with_fault_per_cluster(&FaultKind::TwoFaced { amplitude: amp }, 1);
    let run = s.run_for(150.0);
    let mask = FaultMask::from_nodes(32, &run.faulty);
    let local = cluster_local_skew_series(&run.trace, &cg, &mask);
    let bound = p.local_skew_bound(4);
    let max = local.max().unwrap();
    assert!(
        max <= bound,
        "FTGCS local skew {max} > bound {bound} under per-cluster attack"
    );
    // No divergence over time: the second half is no worse than the
    // bound, and comparable to the first half.
    let early = local.after(10.0).value_at_or_before(75.0).unwrap();
    let late = local.last().unwrap();
    assert!(late <= bound && early <= bound);
}

#[test]
fn free_running_clocks_drift_apart_linearly() {
    let g = line(2);
    let mut config = sim_config(4);
    config.rho = 1e-3;
    let mut sim = ftgcs_baselines::build_free_run_sim(&g, config);
    // Pin extreme rates on the two nodes.
    sim.run_until(SimTime::from_secs(0.0));
    drop(sim);
    // Build again with explicit per-node overrides via the raw builder.
    let mut builder = ftgcs_sim::engine::SimBuilder::<ftgcs_baselines::BaseMsg>::new(SimConfig {
        rho: 1e-3,
        sample_interval: Some(SimDuration::from_millis(100.0)),
        ..sim_config(4)
    });
    let a = builder.add_node(Box::new(ftgcs_baselines::FreeRunNode));
    let b = builder.add_node(Box::new(ftgcs_baselines::FreeRunNode));
    builder.add_edge(a, b);
    builder.set_rate_model(a, RateModel::Constant { frac: 1.0 });
    builder.set_rate_model(b, RateModel::Constant { frac: 0.0 });
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(100.0));
    let skew = (sim.logical_value(a) - sim.logical_value(b)).abs();
    assert!((skew - 100.0 * 1e-3).abs() < 1e-9, "skew {skew}");
}
