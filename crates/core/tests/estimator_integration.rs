//! Integration tests of the cluster-clock estimators (Corollary 3.5): a
//! node adjacent to cluster `C` runs ClusterSync silently on `C`'s
//! pulses and obtains `|L̃_wC − L_C| ≤ E`.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_sim::node::{NodeId, TrackId};
use ftgcs_sim::time::SimTime;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

/// Cluster clock `(L⁺+L⁻)/2` of `cluster`, read directly from the live
/// simulation's main tracks, excluding `faulty` node ids.
fn cluster_clock(
    sim: &mut ftgcs_sim::engine::Simulation<ftgcs::Msg>,
    cg: &ClusterGraph,
    cluster: usize,
    faulty: &[usize],
) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in cg.members(cluster) {
        if faulty.contains(&v) {
            continue;
        }
        let l = sim.logical_value(NodeId(v));
        lo = lo.min(l);
        hi = hi.max(l);
    }
    (lo + hi) / 2.0
}

#[test]
fn estimates_track_neighbor_cluster_clocks() {
    let p = params();
    let cg = ClusterGraph::new(line(2), 4, 1);
    let mut scenario = Scenario::new(cg.clone(), p.clone());
    scenario.seed(71);
    let mut sim = scenario.build();
    sim.run_until(SimTime::from_secs(20.0 * p.t_round));

    // Track layout: track 1+i estimates neighbor_clusters()[i]. On a
    // 2-cluster line each node has exactly one neighbor cluster.
    for v in 0..cg.physical().node_count() {
        let own_cluster = cg.cluster_of(v);
        let neighbor = cg.neighbor_clusters(own_cluster)[0];
        let estimate = sim.track_value_of(NodeId(v), TrackId(1));
        let truth = cluster_clock(&mut sim, &cg, neighbor, &[]);
        let err = (estimate - truth).abs();
        assert!(
            err <= p.estimate_error_bound(),
            "node {v}: estimate of cluster {neighbor} off by {err:.3e} > E = {:.3e}",
            p.estimate_error_bound()
        );
    }
}

#[test]
fn estimates_stay_locked_under_byzantine_members() {
    // The observed cluster contains a two-faced Byzantine member; the
    // estimator's trimmed midpoint must reject its influence just like a
    // real member would.
    let p = params();
    let cg = ClusterGraph::new(line(2), 4, 1);
    let mut scenario = Scenario::new(cg.clone(), p.clone());
    scenario.seed(72).with_fault(
        cg.node_id(1, 0),
        FaultKind::TwoFaced {
            amplitude: 0.9 * p.phi * p.tau3,
        },
    );
    let faulty = scenario.faulty_nodes();
    let mut sim = scenario.build();
    sim.run_until(SimTime::from_secs(20.0 * p.t_round));

    for v in cg.members(0) {
        let estimate = sim.track_value_of(NodeId(v), TrackId(1));
        let truth = cluster_clock(&mut sim, &cg, 1, &faulty);
        let err = (estimate - truth).abs();
        assert!(
            err <= p.estimate_error_bound(),
            "node {v}: estimate off by {err:.3e} despite f-budget attack"
        );
    }
}

#[test]
fn estimate_error_grows_gracefully_with_initial_offset() {
    // Estimator tracks are initialized at the neighbor's offset (the
    // perfect-initialization generalization): the estimate must lock and
    // stay locked when the observed cluster starts ahead.
    let p = params();
    let cg = ClusterGraph::new(line(2), 4, 1);
    let mut scenario = Scenario::new(cg.clone(), p.clone());
    scenario.seed(73).cluster_offset(1, 0.5 * p.kappa);
    let mut sim = scenario.build();
    sim.run_until(SimTime::from_secs(30.0 * p.t_round));

    for v in cg.members(0) {
        let estimate = sim.track_value_of(NodeId(v), TrackId(1));
        let truth = cluster_clock(&mut sim, &cg, 1, &[]);
        // The offset also stretches the first round; allow 2E after the
        // transient instead of E.
        let err = (estimate - truth).abs();
        assert!(
            err <= 2.0 * p.estimate_error_bound(),
            "node {v}: estimate off by {err:.3e} after offset start"
        );
    }
}

#[test]
fn every_node_creates_the_documented_track_layout() {
    // 1 main + (#neighbor clusters) estimators + 1 max track.
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut scenario = Scenario::new(cg.clone(), p.clone());
    scenario.seed(74);
    let mut sim = scenario.build();
    sim.run_until(SimTime::from_secs(p.t_round));
    // Middle-cluster nodes estimate two clusters: tracks 0..=3 exist.
    for v in cg.members(1) {
        // Estimator tracks progress like clocks (≥ 1 rate): nonzero after
        // a round.
        let est_a = sim.track_value_of(NodeId(v), TrackId(1));
        let est_b = sim.track_value_of(NodeId(v), TrackId(2));
        let max_track = sim.track_value_of(NodeId(v), TrackId(3));
        assert!(est_a > 0.0 && est_b > 0.0);
        assert!(max_track >= 0.0);
    }
}
