//! Integration tests of the inter-cluster GCS layer (paper Section 4):
//! local skew bounds (Theorems 1.1/4.10), trigger exclusivity (Lemma 4.5),
//! gradient smoothing of an initial skew ramp, and the GCS axioms
//! (Proposition 4.11 / Definition 4.9).

use ftgcs::node::ROW_MODE;
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs_metrics::skew::{
    cluster_local_skew_series, global_skew_series, intra_cluster_skew_series, local_skew_series,
    FaultMask,
};
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

/// A line of `n` clusters with a front-fast/back-slow adversarial rate
/// split, which continuously generates skew pressure along the line.
fn rate_split_line(n: usize, seed: u64) -> Scenario {
    let p = params();
    let cg = ClusterGraph::new(line(n), 4, 1);
    let mut s = Scenario::new(cg.clone(), p);
    s.seed(seed);
    for c in 0..n {
        let frac = if c < n / 2 { 1.0 } else { 0.0 };
        for v in cg.members(c) {
            s.rate_override(v, RateModel::Constant { frac });
        }
    }
    s
}

#[test]
fn local_skew_stays_within_bound_under_rate_split() {
    let s = rate_split_line(4, 1);
    let p = s.params().clone();
    let cg = s.cluster_graph().clone();
    let run = s.run_for(60.0);
    let mask = FaultMask::none(cg.physical().node_count());
    let cluster_skew = cluster_local_skew_series(&run.trace, &cg, &mask);
    let node_skew = local_skew_series(&run.trace, cg.physical(), &mask);
    let cb = p.local_skew_bound(3);
    let nb = p.node_local_skew_bound(3);
    assert!(
        cluster_skew.max().unwrap() <= cb,
        "cluster local skew {} > bound {cb}",
        cluster_skew.max().unwrap()
    );
    assert!(
        node_skew.max().unwrap() <= nb,
        "node local skew {} > bound {nb}",
        node_skew.max().unwrap()
    );
}

#[test]
fn gradient_smooths_an_initial_ramp() {
    let p = params();
    let n = 4;
    let cg = ClusterGraph::new(line(n), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    // Clusters start on a ramp of 1.5 kappa per hop: global skew 4.5 kappa.
    s.seed(2)
        .rate_model(RateModel::RandomConstant)
        .cluster_offset_ramp(1.5 * p.kappa);
    let run = s.run_for(200.0);
    let mask = FaultMask::none(cg.physical().node_count());
    let global = global_skew_series(&run.trace, &mask);
    let early = global.value_at_or_before(1.0).unwrap();
    let late = global.after(150.0).max().unwrap();
    // The catch-up rule + gradient layer must shrink the ramp — but only
    // down to the catch-up engagement floor: nodes switch fast while
    // L_v ≤ M_v − c·δ (Theorem C.3), so the residual global skew settles
    // at ≈ c·δ plus estimator lag. (Per-hop gaps of 1.5κ = 4.5δ sit just
    // below the FT threshold 2κ−δ = 5δ, so only catch-up compresses.)
    assert!(early > 3.0 * p.kappa, "ramp not injected: {early}");
    let floor = (p.catch_up_c + 1.5) * p.delta;
    assert!(
        late < early * 0.75 && late <= floor,
        "ramp not smoothed to the catch-up floor: early={early}, late={late}, floor={floor}"
    );
    // Local skew respects the bound throughout the smoothing, after the
    // two-round re-lock transient from offset initialization.
    let cluster_skew = cluster_local_skew_series(&run.trace, &cg, &mask);
    let warmup = 3.0 * p.t_round;
    let max_local = cluster_skew.after(warmup).max().unwrap();
    let bound = p.local_skew_bound(n - 1);
    assert!(max_local <= bound, "local skew {max_local} > bound {bound}");
}

#[test]
fn triggers_are_mutually_exclusive_at_runtime() {
    let s = rate_split_line(4, 3);
    let run = s.run_for(60.0);
    let mut rows = 0;
    for row in run.trace.rows_of_kind(ROW_MODE) {
        let (ft, st) = (row.values[3], row.values[4]);
        assert!(
            !(ft == 1.0 && st == 1.0),
            "Lemma 4.5 violated at t={}",
            row.t
        );
        rows += 1;
    }
    assert!(rows > 100, "expected many mode rows, saw {rows}");
}

#[test]
fn gcs_axiom_a1_rates_bounded() {
    let s = rate_split_line(3, 4);
    let p = s.params().clone();
    let cg = s.cluster_graph().clone();
    let run = s.run_for(40.0);
    let mask = FaultMask::none(cg.physical().node_count());
    // Cluster clocks must advance at rates within [1, theta_max] (axiom
    // A1 after the Prop. 4.11 reparameterization; theta_max is the
    // absolute ceiling).
    let clocks = ftgcs_metrics::skew::cluster_clock_samples(&run.trace, &cg, &mask);
    for pair in clocks.windows(2) {
        let dt = pair[1].0 - pair[0].0;
        if dt <= 0.0 {
            continue;
        }
        for c in 0..cg.cluster_count() {
            let rate = (pair[1].1[c] - pair[0].1[c]) / dt;
            assert!(rate >= 1.0 - 1e-9, "cluster {c} rate {rate} < 1");
            assert!(
                rate <= p.theta_max + 1e-9,
                "cluster {c} rate {rate} > {}",
                p.theta_max
            );
        }
    }
}

#[test]
fn intra_cluster_bound_holds_alongside_gradient_activity() {
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(5)
        .rate_model(RateModel::RandomConstant)
        .cluster_offset_ramp(p.kappa);
    let run = s.run_for(100.0);
    let mask = FaultMask::none(cg.physical().node_count());
    let skew = intra_cluster_skew_series(&run.trace, &cg, &mask);
    // Skip the offset-injection transient (instances re-lock within two
    // rounds), then require Corollary 3.2.
    let bound = p.intra_cluster_skew_bound();
    let steady = skew.after(3.0 * p.t_round).max().unwrap();
    assert!(steady <= bound, "intra skew {steady} > bound {bound}");
}

#[test]
fn fast_mode_engages_when_behind() {
    let p = params();
    let cg = ClusterGraph::new(line(2), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    // Cluster 1 starts 2.5 kappa ahead: cluster 0 must see FT fire.
    s.seed(6)
        .rate_model(RateModel::RandomConstant)
        .cluster_offset(1, 2.5 * p.kappa);
    let run = s.run_for(60.0);
    let fast_rows = run
        .trace
        .rows_of_kind(ROW_MODE)
        .filter(|r| r.values[0] == 0.0 && r.values[2] == 1.0)
        .count();
    assert!(
        fast_rows > 5,
        "cluster 0 never went fast ({fast_rows} rows)"
    );
    // And the gap must shrink.
    let mask = FaultMask::none(8);
    let global = global_skew_series(&run.trace, &mask);
    let early = global.value_at_or_before(1.0).unwrap();
    let late = global.last().unwrap();
    assert!(late < early, "gap did not shrink: {early} -> {late}");
}
