//! Failure-injection tests: adversarial delay distributions, crash
//! timing, combined attacks, and deliberate premise violations. The
//! bounds of Theorem 1.1 must survive everything the model admits; what
//! the model excludes (over-budget clusters) may break, and we check the
//! implementation *degrades* rather than panics.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_metrics::skew::{
    cluster_local_skew_series, global_skew_series, intra_cluster_skew_series, FaultMask,
};
use ftgcs_sim::network::DelayDistribution;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

fn skews_under(
    dist: DelayDistribution,
    fault: Option<(FaultKind, usize)>,
    seed: u64,
) -> (Params, f64, f64) {
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(seed).delay_distribution(dist);
    if let Some((kind, count)) = fault {
        s.with_fault_per_cluster(&kind, count);
    }
    let run = s.run_for(40.0);
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask)
        .after(3.0 * p.t_round)
        .max()
        .unwrap();
    let local = cluster_local_skew_series(&run.trace, &cg, &mask)
        .after(3.0 * p.t_round)
        .max()
        .unwrap();
    (p, intra, local)
}

#[test]
fn bounds_hold_under_maximal_delays() {
    let (p, intra, local) = skews_under(DelayDistribution::Maximal, None, 21);
    assert!(intra <= p.intra_cluster_skew_bound(), "intra {intra}");
    assert!(local <= p.local_skew_bound(2), "local {local}");
}

#[test]
fn bounds_hold_under_minimal_delays() {
    let (p, intra, local) = skews_under(DelayDistribution::Minimal, None, 22);
    assert!(intra <= p.intra_cluster_skew_bound(), "intra {intra}");
    assert!(local <= p.local_skew_bound(2), "local {local}");
}

#[test]
fn bounds_hold_under_asymmetric_delays() {
    // The classic worst case: one direction always d, the other d-U.
    let (p, intra, local) = skews_under(DelayDistribution::AsymmetricById, None, 23);
    assert!(intra <= p.intra_cluster_skew_bound(), "intra {intra}");
    assert!(local <= p.local_skew_bound(2), "local {local}");
}

#[test]
fn bounds_hold_under_alternating_delays_with_faults() {
    // Systematic intra-cluster disagreement + a Byzantine member each.
    let (p, intra, local) = skews_under(
        DelayDistribution::AlternatingByDst,
        Some((FaultKind::SkewPuller { offset: -1e-3 }, 1)),
        24,
    );
    assert!(intra <= p.intra_cluster_skew_bound(), "intra {intra}");
    assert!(local <= p.local_skew_bound(2), "local {local}");
}

#[test]
fn crash_at_various_times_never_breaks_bounds() {
    let p = params();
    for (i, frac) in [0.1, 0.5, 0.9].iter().enumerate() {
        let cg = ClusterGraph::new(line(3), 4, 1);
        let horizon = 40.0;
        let mut s = Scenario::new(cg.clone(), p.clone());
        s.seed(30 + i as u64)
            .with_fault_per_cluster(&FaultKind::Crash { at: frac * horizon }, 1);
        let run = s.run_for(horizon);
        let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
        let intra = intra_cluster_skew_series(&run.trace, &cg, &mask)
            .after(3.0 * p.t_round)
            .max()
            .unwrap();
        assert!(
            intra <= p.intra_cluster_skew_bound(),
            "crash at {frac}: intra {intra}"
        );
    }
}

#[test]
fn mixed_attack_cocktail_within_budget() {
    // Different strategy in every cluster simultaneously.
    let p = params();
    let cg = ClusterGraph::new(line(4), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(40)
        .with_fault(cg.node_id(0, 0), FaultKind::Silent)
        .with_fault(
            cg.node_id(1, 1),
            FaultKind::TwoFaced {
                amplitude: 0.9 * p.phi * p.tau3,
            },
        )
        .with_fault(
            cg.node_id(2, 2),
            FaultKind::StealthyRusher { extra_rate: 0.02 },
        )
        .with_fault(
            cg.node_id(3, 3),
            FaultKind::LevelFlooder { level_step: 10_000 },
        );
    let run = s.run_for(60.0);
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask)
        .after(3.0 * p.t_round)
        .max()
        .unwrap();
    let local = cluster_local_skew_series(&run.trace, &cg, &mask)
        .after(3.0 * p.t_round)
        .max()
        .unwrap();
    assert!(intra <= p.intra_cluster_skew_bound(), "intra {intra}");
    assert!(local <= p.local_skew_bound(3), "local {local}");
}

#[test]
fn level_flooders_cannot_poison_the_max_estimate() {
    // f level flooders per cluster announce absurd levels; the f+1
    // confirmation rule must hold M_v <= L_max regardless.
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(41).with_fault_per_cluster(
        &FaultKind::LevelFlooder {
            level_step: 1_000_000,
        },
        1,
    );
    let run = s.run_for(30.0);
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    for row in run.trace.rows_of_kind(ftgcs::node::ROW_MODE) {
        let m = row.values[6];
        if m < 0.0 || mask.is_faulty(row.node.index()) {
            continue;
        }
        let sample = run
            .trace
            .samples
            .iter()
            .find(|s| s.t >= row.t)
            .expect("sample after row");
        let lmax = sample
            .logical
            .iter()
            .enumerate()
            .filter(|(v, _)| !mask.is_faulty(*v))
            .map(|(_, &l)| l)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            m <= lmax + 1e-9,
            "flooders poisoned M_v: {m} > L_max {lmax} at t={}",
            row.t
        );
    }
}

#[test]
fn over_budget_cluster_degrades_without_panicking() {
    // 2 > f = 1 coordinated skew-pullers: bounds may break (that is the
    // point of k >= 3f+1), but the run must complete and the *other*
    // clusters' intra-cluster synchronization must survive.
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(42)
        .with_fault(
            cg.node_id(1, 0),
            FaultKind::SkewPuller { offset: -3.0 * p.e },
        )
        .with_fault(
            cg.node_id(1, 1),
            FaultKind::SkewPuller { offset: -3.0 * p.e },
        );
    assert!(s.faults_exceed_budget());
    let run = s.run_for(30.0);
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    // Healthy clusters 0 and 2 still satisfy Corollary 3.2 individually.
    for healthy in [0usize, 2] {
        let mut worst: f64 = 0.0;
        for sample in &run.trace.samples {
            if sample.t.as_secs() < 3.0 * p.t_round {
                continue;
            }
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for v in cg.members(healthy) {
                if !mask.is_faulty(v) {
                    lo = lo.min(sample.logical[v]);
                    hi = hi.max(sample.logical[v]);
                }
            }
            worst = worst.max(hi - lo);
        }
        assert!(
            worst <= p.intra_cluster_skew_bound(),
            "healthy cluster {healthy} skew {worst}"
        );
    }
}

#[test]
fn global_skew_survives_the_cocktail() {
    let p = params();
    let cg = ClusterGraph::new(line(4), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(43)
        .delay_distribution(DelayDistribution::AsymmetricById)
        .with_fault_per_cluster(
            &FaultKind::RandomPulser {
                mean_interval: 0.02,
            },
            1,
        );
    let run = s.run_for(60.0);
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let global = global_skew_series(&run.trace, &mask)
        .after(3.0 * p.t_round)
        .max()
        .unwrap();
    assert!(
        global <= p.global_skew_bound(3),
        "global {global} > bound {}",
        p.global_skew_bound(3)
    );
}

#[test]
fn delay_regime_switch_mid_run_keeps_bounds() {
    // The adversary re-picks the delay schedule mid-run (stretch with
    // maximal delays, then compress with minimal ones) — the schedule
    // that breaks master/slave sync in experiment F2. FTGCS's trigger
    // slack must absorb it.
    use ftgcs_sim::time::SimTime;
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(44).delay_distribution(DelayDistribution::Maximal);
    let mut sim = s.build();
    sim.run_until(SimTime::from_secs(20.0));
    sim.set_delay_distribution(DelayDistribution::Minimal);
    sim.run_until(SimTime::from_secs(40.0));
    let trace = sim.into_trace();
    let mask = FaultMask::none(cg.physical().node_count());
    let mut worst_local: f64 = 0.0;
    let mut worst_intra: f64 = 0.0;
    for sample in &trace.samples {
        if sample.t.as_secs() < 3.0 * p.t_round {
            continue;
        }
        let mut clocks = Vec::with_capacity(cg.cluster_count());
        for c in 0..cg.cluster_count() {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for v in cg.members(c) {
                lo = lo.min(sample.logical[v]);
                hi = hi.max(sample.logical[v]);
            }
            worst_intra = worst_intra.max(hi - lo);
            clocks.push((lo + hi) / 2.0);
        }
        for (a, b) in cg.base().edges() {
            worst_local = worst_local.max((clocks[a] - clocks[b]).abs());
        }
    }
    let _ = mask;
    assert!(
        worst_intra <= p.intra_cluster_skew_bound(),
        "intra {worst_intra} after regime switch"
    );
    assert!(
        worst_local <= p.local_skew_bound(2),
        "local {worst_local} after regime switch"
    );
}
